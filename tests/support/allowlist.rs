//! Shared allowlist machinery for the two static-analysis corpus contracts
//! (`tests/analysis_soundness.rs` and `tests/analysis_precision.rs`).
//!
//! Both harnesses keep a reviewed exception list with the same shape and the
//! same lifecycle rules: entries must be sorted and unique, every entry needs
//! a one-line `--` justification *and* a preceding `# reason:` comment (the
//! longer-form review rationale, so a future reader can judge whether the
//! exception should still stand), stale entries fail the run, and each list
//! is capped so exceptions cannot silently accumulate.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cerberus_ast::ub::UbKind;
use cerberus_litmus::fixtures::FixtureEntry;
use cerberus_wire::json::Json;

/// One reviewed exception: the pair `(fixture, ub)` is excused from the
/// harness's contract.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowEntry {
    /// `group/name` of the fixture.
    pub fixture: String,
    /// The UB kind the exception covers.
    pub ub: UbKind,
    /// One-line justification from the entry line itself (mandatory).
    pub justification: String,
    /// The `# reason:` comment preceding the entry (mandatory): the
    /// longer-form rationale recorded at review time.
    pub reason: String,
}

/// Absolute path of an allowlist file at the workspace root's `tests/`.
pub fn allowlist_path(file_name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(file_name)
}

/// Parse an allowlist: one entry per line,
/// `<group>/<name> <Ub_core_name> -- <justification>`, where the closest
/// preceding comment line must be a `# reason: ...` comment carrying the
/// review rationale. Plain `#` comments elsewhere are ignored.
pub fn load_allowlist(path: &Path) -> Vec<AllowEntry> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut entries = Vec::new();
    let mut pending_reason: Option<String> = None;
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(reason) = comment.trim().strip_prefix("reason:") {
                let reason = reason.trim();
                assert!(
                    !reason.is_empty(),
                    "{} line {}: empty `# reason:` comment",
                    path.display(),
                    number + 1
                );
                pending_reason = Some(reason.to_owned());
            }
            continue;
        }
        let reason = pending_reason.take().unwrap_or_else(|| {
            panic!(
                "{} line {}: entry without a preceding `# reason:` comment \
                 (record the review rationale above the line)",
                path.display(),
                number + 1
            )
        });
        let (head, justification) = line.split_once("--").unwrap_or_else(|| {
            panic!(
                "{} line {}: missing `--` justification",
                path.display(),
                number + 1
            )
        });
        let mut fields = head.split_whitespace();
        let fixture = fields
            .next()
            .unwrap_or_else(|| panic!("{} line {}: missing fixture", path.display(), number + 1))
            .to_owned();
        let ub_name = fields
            .next()
            .unwrap_or_else(|| panic!("{} line {}: missing UB kind", path.display(), number + 1));
        assert!(
            fields.next().is_none(),
            "{} line {}: trailing fields before `--`",
            path.display(),
            number + 1
        );
        let ub = UbKind::from_core_name(ub_name).unwrap_or_else(|| {
            panic!(
                "{} line {}: unknown UB kind {ub_name:?}",
                path.display(),
                number + 1
            )
        });
        let justification = justification.trim().to_owned();
        assert!(
            !justification.is_empty(),
            "{} line {}: empty justification",
            path.display(),
            number + 1
        );
        entries.push(AllowEntry {
            fixture,
            ub,
            justification,
            reason,
        });
    }
    entries
}

/// Shared lifecycle checks: the list respects its cap, names only known
/// fixtures, and is sorted by fixture then UB kind without duplicates.
pub fn check_allowlist_hygiene(
    path: &Path,
    allowlist: &[AllowEntry],
    cap: usize,
    known_fixtures: &BTreeSet<String>,
) {
    assert!(
        allowlist.len() <= cap,
        "{} has {} entries (cap {cap}): fix analyzer holes instead of growing it",
        path.display(),
        allowlist.len()
    );
    for allowed in allowlist {
        assert!(
            known_fixtures.contains(&allowed.fixture),
            "{} names unknown fixture {:?}",
            path.display(),
            allowed.fixture
        );
    }
    let mut sorted = allowlist.to_vec();
    sorted.sort();
    sorted.dedup_by(|a, b| a.fixture == b.fixture && a.ub == b.ub);
    assert_eq!(
        allowlist,
        sorted.as_slice(),
        "keep {} sorted by fixture then UB kind, without duplicates",
        path.display()
    );
}

/// The UB kinds any model dynamically reports for a fixture, read from its
/// committed `.expect` matrix (the same document the golden harness checks).
pub fn dynamic_ub_kinds(entry: &FixtureEntry) -> BTreeSet<UbKind> {
    let text = std::fs::read_to_string(&entry.expect_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.expect_path.display()));
    let document = Json::parse(&text)
        .unwrap_or_else(|e| panic!("{} is not JSON: {e}", entry.expect_path.display()));
    let Some(Json::Obj(matrix)) = document.get("matrix") else {
        panic!("{} has no matrix object", entry.expect_path.display());
    };
    let mut kinds = BTreeSet::new();
    for cell in matrix.values() {
        if cell.get("kind").and_then(Json::as_str) != Some("undef") {
            continue;
        }
        let name = cell
            .get("ub")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("undef cell without ub in {}", entry.expect_path.display()));
        let kind = UbKind::from_core_name(name).unwrap_or_else(|| {
            panic!(
                "unknown UB name {name:?} in {}",
                entry.expect_path.display()
            )
        });
        kinds.insert(kind);
    }
    kinds
}
