//! Contract tests for the committed `BENCH_*.json` benchmark checkpoints.
//!
//! The criterion shim writes these files when a bench runs under
//! `BENCH_JSON=...`; the committed copies are the run-over-run baselines CI
//! compares fresh runs against. These tests keep the committed artifacts
//! honest: they must parse as the documented schema (an array of
//! `{"group", "bench", "mean_ns", "samples"}` rows), and the analysis
//! checkpoint must actually demonstrate the property it was committed to
//! witness — the solver memo table earns its keep (`solver_memo_hits > 0`)
//! and path exploration happened at all.

use std::path::{Path, PathBuf};

use cerberus_wire::json::Json;

fn checkpoint_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(name)
}

/// Parse a checkpoint and validate the row schema, returning the rows.
fn load_checkpoint(name: &str) -> Vec<Json> {
    let path = checkpoint_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed checkpoint {} is missing: {e}", path.display()));
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
    let rows = json
        .as_array()
        .unwrap_or_else(|| panic!("{name}: top-level value must be an array"))
        .to_vec();
    assert!(!rows.is_empty(), "{name}: checkpoint must not be empty");
    for row in &rows {
        let bench = row
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: row without a string \"bench\" member: {row:?}"));
        assert!(
            row.get("group").is_some(),
            "{name}: row {bench} lacks a \"group\" member"
        );
        let mean = row
            .get("mean_ns")
            .and_then(Json::as_int)
            .unwrap_or_else(|| panic!("{name}: row {bench} lacks an integer \"mean_ns\""));
        assert!(mean >= 0, "{name}: row {bench} has negative mean_ns {mean}");
        let samples = row
            .get("samples")
            .and_then(Json::as_int)
            .unwrap_or_else(|| panic!("{name}: row {bench} lacks an integer \"samples\""));
        assert!(
            samples >= 0,
            "{name}: row {bench} has negative samples {samples}"
        );
    }
    rows
}

/// Look up a counter row (samples == 0) by bench name.
fn counter(rows: &[Json], bench: &str) -> i128 {
    let row = rows
        .iter()
        .find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
        .unwrap_or_else(|| panic!("checkpoint lacks a {bench} row"));
    assert_eq!(
        row.get("samples").and_then(Json::as_int),
        Some(0),
        "{bench} must be a counter row (samples == 0)"
    );
    row.get("mean_ns").and_then(Json::as_int).unwrap()
}

#[test]
fn analysis_checkpoint_is_committed_and_well_formed() {
    let rows = load_checkpoint("BENCH_analysis.json");

    // The three timing rows the bench always emits.
    for bench in [
        "corpus_path_sensitive",
        "corpus_flow_baseline",
        "corpus_memoized",
    ] {
        let row = rows
            .iter()
            .find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
            .unwrap_or_else(|| panic!("BENCH_analysis.json lacks the {bench} timing row"));
        let samples = row.get("samples").and_then(Json::as_int).unwrap();
        assert!(samples > 0, "{bench} must be a timed row, got samples 0");
        let mean = row.get("mean_ns").and_then(Json::as_int).unwrap();
        assert!(mean > 0, "{bench} recorded a zero mean — bench did not run");
    }
}

#[test]
fn analysis_checkpoint_shows_the_solver_memo_working() {
    let rows = load_checkpoint("BENCH_analysis.json");

    let fixtures = counter(&rows, "fixtures_analyzed");
    assert!(fixtures > 0, "no fixtures analyzed in the recorded pass");

    let explored = counter(&rows, "paths_explored");
    assert!(
        explored >= fixtures,
        "every analyzed fixture explores at least one path \
         (explored {explored} < fixtures {fixtures})"
    );

    // paths_pruned is free to be zero over the golden corpus (the committed
    // fixtures have no infeasible branches — unit tests in cerberus-analysis
    // prove the pruning machinery); it only has to be present and recorded.
    let _ = counter(&rows, "paths_pruned");

    // The acceptance criterion from the path-sensitivity work: constraint
    // subgoals recur across the corpus, so the Johnson-style memo table must
    // show hits on a cold whole-corpus pass.
    let queries = counter(&rows, "solver_queries");
    let hits = counter(&rows, "solver_memo_hits");
    assert!(queries > 0, "the path-sensitive pass never hit the solver");
    assert!(
        hits > 0,
        "solver memo recorded zero hits over the corpus — memoization is not \
         observably working (queries: {queries})"
    );
    assert!(
        hits <= queries,
        "memo hits ({hits}) cannot exceed solver queries ({queries})"
    );
}

#[test]
fn differential_checkpoint_is_committed_and_well_formed() {
    load_checkpoint("BENCH_differential.json");
}
