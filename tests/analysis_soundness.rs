//! Soundness cross-validation of the static UB analyzer against the dynamic
//! oracle's golden verdict matrices.
//!
//! The contract is one-directional: for every fixture on which **any** named
//! memory model dynamically reports undefined behaviour of kind K, the static
//! analyzer (`cerberus_analysis` via [`cerberus::Session::analyze`]) must
//! report a Must or May finding of kind K — or the `(fixture, kind)` pair must
//! be on the reviewed incompleteness allowlist
//! (`tests/analysis_allowlist.txt`). False positives carry no penalty here:
//! the analyzer is deliberately May-liberal, and over-approximation is what
//! keeps the allowlist short. The dual direction — `Must` findings may not
//! over-claim — is `tests/analysis_precision.rs`.
//!
//! The allowlist itself is checked both ways: an entry whose hole has been
//! fixed is *stale* and fails the run (so the list can only shrink without
//! review), every entry needs a one-line justification plus a `# reason:`
//! review comment, and the list is capped so incompleteness cannot silently
//! accumulate.

#[path = "support/allowlist.rs"]
mod support;

use std::collections::BTreeSet;

use cerberus::Session;
use cerberus_ast::ub::UbKind;
use cerberus_litmus::fixtures::{discover, fixtures_root};

use support::{allowlist_path, check_allowlist_hygiene, dynamic_ub_kinds, load_allowlist};

const ALLOWLIST_CAP: usize = 15;
const ALLOWLIST_FILE: &str = "analysis_allowlist.txt";

#[test]
fn every_dynamic_ub_kind_is_statically_reported_or_allowlisted() {
    let entries = discover(&fixtures_root());
    assert!(
        entries.len() >= 60,
        "fixture corpus shrank to {} entries",
        entries.len()
    );
    let path = allowlist_path(ALLOWLIST_FILE);
    let allowlist = load_allowlist(&path);
    let known: BTreeSet<String> = entries
        .iter()
        .map(|e| format!("{}/{}", e.group, e.name))
        .collect();
    check_allowlist_hygiene(&path, &allowlist, ALLOWLIST_CAP, &known);

    let session = Session::default();
    let mut holes = Vec::new();
    let mut used: BTreeSet<(String, UbKind)> = BTreeSet::new();
    for entry in &entries {
        let dynamic = dynamic_ub_kinds(entry);
        if dynamic.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&entry.source_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.source_path.display()));
        let report = session.analyze(&source).unwrap_or_else(|e| {
            panic!("{}/{} rejected by front end: {e}", entry.group, entry.name)
        });
        assert!(
            report.aborted.is_none(),
            "{}/{}: analyzer aborted: {:?}",
            entry.group,
            entry.name,
            report.aborted
        );
        let static_kinds = report.ub_kinds();
        let fixture = format!("{}/{}", entry.group, entry.name);
        for kind in dynamic {
            if static_kinds.contains(&kind) {
                continue;
            }
            if allowlist
                .iter()
                .any(|a| a.fixture == fixture && a.ub == kind)
            {
                used.insert((fixture.clone(), kind));
                continue;
            }
            holes.push(format!(
                "{fixture}: dynamic {} not reported statically (static kinds: {:?})",
                kind.core_name(),
                static_kinds
                    .iter()
                    .map(|k| k.core_name())
                    .collect::<Vec<_>>()
            ));
        }
    }
    assert!(
        holes.is_empty(),
        "soundness holes not on the allowlist:\n  {}",
        holes.join("\n  ")
    );

    let stale: Vec<String> = allowlist
        .iter()
        .filter(|a| !used.contains(&(a.fixture.clone(), a.ub)))
        .map(|a| format!("{} {}", a.fixture, a.ub.core_name()))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries (the analyzer now reports these — remove the lines):\n  {}",
        stale.join("\n  ")
    );
}

#[test]
fn allowlist_entries_are_sorted_and_unique() {
    let path = allowlist_path(ALLOWLIST_FILE);
    let allowlist = load_allowlist(&path);
    let mut sorted = allowlist.clone();
    sorted.sort();
    sorted.dedup_by(|a, b| a.fixture == b.fixture && a.ub == b.ub);
    assert_eq!(
        allowlist, sorted,
        "keep tests/analysis_allowlist.txt sorted by fixture then UB kind, without duplicates"
    );
}
