//! Soundness cross-validation of the static UB analyzer against the dynamic
//! oracle's golden verdict matrices.
//!
//! The contract is one-directional: for every fixture on which **any** named
//! memory model dynamically reports undefined behaviour of kind K, the static
//! analyzer (`cerberus_analysis` via [`cerberus::Session::analyze`]) must
//! report a Must or May finding of kind K — or the `(fixture, kind)` pair must
//! be on the reviewed incompleteness allowlist
//! (`tests/analysis_allowlist.txt`). False positives carry no penalty here:
//! the analyzer is deliberately May-liberal, and over-approximation is what
//! keeps the allowlist short.
//!
//! The allowlist itself is checked both ways: an entry whose hole has been
//! fixed is *stale* and fails the run (so the list can only shrink without
//! review), every entry needs a one-line justification, and the list is
//! capped so incompleteness cannot silently accumulate.

use std::collections::BTreeSet;
use std::path::PathBuf;

use cerberus::Session;
use cerberus_ast::ub::UbKind;
use cerberus_litmus::fixtures::{discover, fixtures_root, FixtureEntry};
use cerberus_wire::json::Json;

const ALLOWLIST_CAP: usize = 15;

fn allowlist_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("analysis_allowlist.txt")
}

/// One reviewed incompleteness: the analyzer misses `ub` on `fixture`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct AllowEntry {
    /// `group/name` of the fixture.
    fixture: String,
    /// The dynamically-reported UB kind the analyzer misses.
    ub: UbKind,
    /// Why this hole is accepted (mandatory).
    justification: String,
}

/// Parse `tests/analysis_allowlist.txt`: one entry per line,
/// `<group>/<name> <Ub_core_name> -- <justification>`; `#` starts a comment.
fn load_allowlist() -> Vec<AllowEntry> {
    let path = allowlist_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut entries = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = line
            .split_once("--")
            .unwrap_or_else(|| panic!("allowlist line {}: missing `--` justification", number + 1));
        let mut fields = head.split_whitespace();
        let fixture = fields
            .next()
            .unwrap_or_else(|| panic!("allowlist line {}: missing fixture", number + 1))
            .to_owned();
        let ub_name = fields
            .next()
            .unwrap_or_else(|| panic!("allowlist line {}: missing UB kind", number + 1));
        assert!(
            fields.next().is_none(),
            "allowlist line {}: trailing fields before `--`",
            number + 1
        );
        let ub = UbKind::from_core_name(ub_name).unwrap_or_else(|| {
            panic!("allowlist line {}: unknown UB kind {ub_name:?}", number + 1)
        });
        let justification = justification.trim().to_owned();
        assert!(
            !justification.is_empty(),
            "allowlist line {}: empty justification",
            number + 1
        );
        entries.push(AllowEntry {
            fixture,
            ub,
            justification,
        });
    }
    entries
}

/// The UB kinds any model dynamically reports for a fixture, read from its
/// committed `.expect` matrix (the same document the golden harness checks).
fn dynamic_ub_kinds(entry: &FixtureEntry) -> BTreeSet<UbKind> {
    let text = std::fs::read_to_string(&entry.expect_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.expect_path.display()));
    let document = Json::parse(&text)
        .unwrap_or_else(|e| panic!("{} is not JSON: {e}", entry.expect_path.display()));
    let Some(Json::Obj(matrix)) = document.get("matrix") else {
        panic!("{} has no matrix object", entry.expect_path.display());
    };
    let mut kinds = BTreeSet::new();
    for cell in matrix.values() {
        if cell.get("kind").and_then(Json::as_str) != Some("undef") {
            continue;
        }
        let name = cell
            .get("ub")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("undef cell without ub in {}", entry.expect_path.display()));
        let kind = UbKind::from_core_name(name).unwrap_or_else(|| {
            panic!(
                "unknown UB name {name:?} in {}",
                entry.expect_path.display()
            )
        });
        kinds.insert(kind);
    }
    kinds
}

#[test]
fn every_dynamic_ub_kind_is_statically_reported_or_allowlisted() {
    let entries = discover(&fixtures_root());
    assert!(
        entries.len() >= 60,
        "fixture corpus shrank to {} entries",
        entries.len()
    );
    let allowlist = load_allowlist();
    assert!(
        allowlist.len() <= ALLOWLIST_CAP,
        "allowlist has {} entries (cap {ALLOWLIST_CAP}): fix analyzer holes instead of growing it",
        allowlist.len()
    );

    let known: BTreeSet<String> = entries
        .iter()
        .map(|e| format!("{}/{}", e.group, e.name))
        .collect();
    for allowed in &allowlist {
        assert!(
            known.contains(&allowed.fixture),
            "allowlist names unknown fixture {:?}",
            allowed.fixture
        );
    }

    let session = Session::default();
    let mut holes = Vec::new();
    let mut used: BTreeSet<(String, UbKind)> = BTreeSet::new();
    for entry in &entries {
        let dynamic = dynamic_ub_kinds(entry);
        if dynamic.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&entry.source_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.source_path.display()));
        let report = session.analyze(&source).unwrap_or_else(|e| {
            panic!("{}/{} rejected by front end: {e}", entry.group, entry.name)
        });
        assert!(
            report.aborted.is_none(),
            "{}/{}: analyzer aborted: {:?}",
            entry.group,
            entry.name,
            report.aborted
        );
        let static_kinds = report.ub_kinds();
        let fixture = format!("{}/{}", entry.group, entry.name);
        for kind in dynamic {
            if static_kinds.contains(&kind) {
                continue;
            }
            if allowlist
                .iter()
                .any(|a| a.fixture == fixture && a.ub == kind)
            {
                used.insert((fixture.clone(), kind));
                continue;
            }
            holes.push(format!(
                "{fixture}: dynamic {} not reported statically (static kinds: {:?})",
                kind.core_name(),
                static_kinds
                    .iter()
                    .map(|k| k.core_name())
                    .collect::<Vec<_>>()
            ));
        }
    }
    assert!(
        holes.is_empty(),
        "soundness holes not on the allowlist:\n  {}",
        holes.join("\n  ")
    );

    let stale: Vec<String> = allowlist
        .iter()
        .filter(|a| !used.contains(&(a.fixture.clone(), a.ub)))
        .map(|a| format!("{} {}", a.fixture, a.ub.core_name()))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries (the analyzer now reports these — remove the lines):\n  {}",
        stale.join("\n  ")
    );
}

#[test]
fn allowlist_entries_are_sorted_and_unique() {
    let allowlist = load_allowlist();
    let mut sorted = allowlist.clone();
    sorted.sort();
    sorted.dedup_by(|a, b| a.fixture == b.fixture && a.ub == b.ub);
    assert_eq!(
        allowlist, sorted,
        "keep tests/analysis_allowlist.txt sorted by fixture then UB kind, without duplicates"
    );
}
