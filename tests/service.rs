//! End-to-end drill of the UB-oracle service: boot a real server on an
//! ephemeral loopback port, then drive it purely through the wire protocol —
//! submit, poll to completion, verify the memoisation cache, and confirm that
//! faulting and over-budget submissions come back as structured rows rather
//! than taking the service down.

use std::time::Duration;

use cerberus_rs::cerberus_server::client::{http_request, poll_job};
use cerberus_rs::cerberus_server::json::Json;
use cerberus_rs::cerberus_server::{serve, Server, ServerConfig};

/// Binding loopback can be forbidden in sandboxed environments; skip (rather
/// than fail) when the listener cannot come up at all.
fn try_serve() -> Option<Server> {
    match serve("127.0.0.1:0", ServerConfig::default()) {
        Ok(server) => Some(server),
        Err(error) => {
            eprintln!("skipping service test: cannot bind loopback: {error}");
            None
        }
    }
}

const DEADLINE: Duration = Duration::from_secs(60);

fn submit_status(addr: &str, body: &str) -> u16 {
    let (status, _) = http_request(addr, "POST", "/api/v0/submit", Some(body)).expect("submit");
    status
}

/// Submit `body`, expect 202, poll the returned job to completion and return
/// its final document.
fn submit_and_wait(addr: &str, body: &str) -> Json {
    let (status, response) =
        http_request(addr, "POST", "/api/v0/submit", Some(body)).expect("submit");
    assert_eq!(
        status,
        202,
        "submit should be accepted: {}",
        response.encode()
    );
    let id = response
        .get("job")
        .and_then(Json::as_int)
        .expect("submit response carries a job id");
    poll_job(addr, id, DEADLINE).expect("job completes before the deadline")
}

fn result_rows(document: &Json) -> &[Json] {
    document
        .get("result")
        .and_then(|result| result.get("rows"))
        .and_then(Json::as_array)
        .expect("completed job carries result rows")
}

fn row_kinds(document: &Json) -> Vec<&str> {
    result_rows(document)
        .iter()
        .filter_map(|row| row.get("outcomes").and_then(Json::as_array))
        .flatten()
        .filter_map(|outcome| outcome.get("kind").and_then(Json::as_str))
        .collect()
}

#[test]
fn the_service_answers_submissions_memoises_and_contains_faults() {
    let Some(server) = try_serve() else { return };
    let addr = server.local_addr().to_string();

    // 1. A well-defined program agrees across models and completes.
    let body = r#"{"source": "int main(void) { int x = 40; return x + 2; }", "models": ["concrete", "symbolic"]}"#;
    let document = submit_and_wait(&addr, body);
    assert_eq!(
        document.get("status").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        document
            .get("result")
            .and_then(|r| r.get("all_agree"))
            .and_then(Json::as_bool),
        Some(true),
        "well-defined program should agree across models: {}",
        document.encode()
    );
    assert!(row_kinds(&document).iter().all(|kind| *kind == "return"));

    // 2. An identical resubmission is served from the result cache.
    let _ = submit_and_wait(&addr, body);
    let (status, stats) = http_request(&addr, "GET", "/api/v0/stats", None).expect("stats");
    assert_eq!(status, 200);
    let hits = stats
        .get("result_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_int)
        .expect("stats carry result-cache hits");
    assert!(
        hits >= 1,
        "identical resubmission should hit the cache: {}",
        stats.encode()
    );

    // 3. A panicking engine is contained as a structured engine-fault row.
    let fault = submit_and_wait(
        &addr,
        r#"{"source": "int main(void) { return 0; }", "models": ["concrete", "panicking"]}"#,
    );
    assert_eq!(
        fault.get("status").and_then(Json::as_str),
        Some("completed")
    );
    let kinds = row_kinds(&fault);
    assert!(
        kinds.contains(&"engine-fault"),
        "panicking model should surface as an engine-fault row: {}",
        fault.encode()
    );
    assert!(
        kinds.contains(&"return"),
        "healthy model should still complete"
    );

    // 4. An over-budget submission comes back as a resource-exhausted row.
    let starved = r#"{"source": "int main(void) { int i; int total = 0; for (i = 0; i < 100000; i = i + 1) { total = total + i; } return 0; }", "models": ["concrete"], "steps": 16}"#;
    let exhausted = submit_and_wait(&addr, starved);
    let kinds = row_kinds(&exhausted);
    assert!(
        !kinds.is_empty()
            && kinds
                .iter()
                .all(|k| *k == "resource-exhausted" || *k == "timeout"),
        "a 16-step budget should exhaust, got: {}",
        exhausted.encode()
    );

    // 5. A program the front end rejects yields a structured failure, not a 500.
    let rejected = submit_and_wait(
        &addr,
        r#"{"source": "int main(void) { return y; }", "models": ["concrete"]}"#,
    );
    assert_eq!(
        rejected.get("status").and_then(Json::as_str),
        Some("failed")
    );
    assert_eq!(
        rejected.get("reason").and_then(Json::as_str),
        Some("rejected")
    );
    assert!(
        rejected.get("error").is_some(),
        "rejection carries the pipeline error"
    );

    // 6. Protocol errors are 4xx, and the server survives all of the above.
    assert_eq!(submit_status(&addr, "{}"), 400, "missing source");
    assert_eq!(
        submit_status(
            &addr,
            r#"{"source": "int main(void) { return 0; }", "models": ["no-such-model"]}"#
        ),
        400,
        "unknown model"
    );
    assert_eq!(
        submit_status(&addr, "not json at all"),
        400,
        "malformed body"
    );
    let (status, _) = http_request(&addr, "GET", "/api/v0/jobs/999999", None).expect("unknown job");
    assert_eq!(status, 404);
    let (status, models) = http_request(&addr, "GET", "/api/v0/models", None).expect("models");
    assert_eq!(status, 200);
    assert!(models
        .get("models")
        .and_then(Json::as_array)
        .is_some_and(|m| !m.is_empty()));

    server.shutdown();
}

#[test]
fn submissions_carry_a_static_analysis_over_the_wire() {
    let Some(server) = try_serve() else { return };
    let addr = server.local_addr().to_string();

    // The acknowledgement itself carries the static analyzer's report: a
    // null-pointer store is a Must finding before any model has executed the
    // program, and the dynamic matrix later agrees.
    let body =
        r#"{"source": "int main(void) { int *p = 0; *p = 1; return 0; }", "models": ["concrete"]}"#;
    let (status, response) =
        http_request(&addr, "POST", "/api/v0/submit", Some(body)).expect("submit");
    assert_eq!(status, 202, "{}", response.encode());
    let analysis = response
        .get("analysis")
        .expect("submit acknowledgement carries the static analysis");
    assert_eq!(analysis.get("aborted"), Some(&Json::Null));
    assert_eq!(
        analysis
            .get("violations")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0),
        "elaborated Core passes the well-formedness validator: {}",
        analysis.encode()
    );
    let findings = analysis
        .get("findings")
        .and_then(Json::as_array)
        .expect("analysis carries findings");
    let null_deref = findings
        .iter()
        .find(|f| f.get("ub").and_then(Json::as_str) == Some("Null_pointer_dereference"))
        .unwrap_or_else(|| panic!("no null-deref finding in {}", analysis.encode()));
    assert_eq!(
        null_deref.get("severity").and_then(Json::as_str),
        Some("must")
    );
    assert_eq!(
        null_deref.get("clause").and_then(Json::as_str),
        Some("6.5.3.2p4")
    );

    // The dynamic oracle confirms the static verdict end-to-end.
    let id = response
        .get("job")
        .and_then(Json::as_int)
        .expect("job id in the acknowledgement");
    let document = poll_job(&addr, id, DEADLINE).expect("job completes");
    assert!(
        row_kinds(&document).contains(&"undef"),
        "dynamic run agrees the program is undefined: {}",
        document.encode()
    );

    // A clean program analyzes clean.
    let (status, response) = http_request(
        &addr,
        "POST",
        "/api/v0/submit",
        Some(r#"{"source": "int main(void) { return 0; }", "models": ["concrete"]}"#),
    )
    .expect("submit");
    assert_eq!(status, 202);
    let analysis = response.get("analysis").expect("analysis member");
    assert_eq!(
        analysis
            .get("findings")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0),
        "{}",
        analysis.encode()
    );

    server.shutdown();
}
