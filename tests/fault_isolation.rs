//! Fault isolation and resource budgets, end to end.
//!
//! The acceptance bar for the robustness work: a differential run over the
//! *full* litmus catalogue with one deliberately panicking engine injected
//! must complete, report exactly that engine's rows as contained faults, and
//! leave every other row bit-identical to a run without the faulty engine.
//! Separately, the watchdog budgets (wall clock, call depth, live
//! allocations) must stop runaway programs with structured verdicts instead
//! of hanging or aborting the process.

use std::time::{Duration, Instant};

use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_exec::driver::{ExecMode, ExecResult};
use cerberus_memory::config::ModelConfig;
use cerberus_memory::fault::FAULT_MESSAGE;
use cerberus_memory::limits::{ResourceKind, ResourceLimits, TimeoutKind};

/// The full catalogue under every named model plus an injected
/// always-panicking engine: the run completes, exactly the injected model's
/// rows fault (with its payload), and every healthy row is identical to a
/// run that never saw the faulty engine.
#[test]
fn an_injected_fault_is_invisible_to_every_healthy_row_of_the_catalogue() {
    let mut poisoned_models = ModelConfig::all_named();
    poisoned_models.push(ModelConfig::panicking());
    let poisoned = DifferentialRunner::new(poisoned_models);
    let healthy = DifferentialRunner::all_named();

    let session = Session::default();
    for test in cerberus_litmus::catalogue() {
        let program = session
            .elaborate(&test.source)
            .unwrap_or_else(|e| panic!("litmus test {} failed in the front end: {e}", test.name));

        let with_fault = poisoned.run(&program);
        assert_eq!(
            with_fault.faulted_models(),
            vec!["panicking"],
            "{}: exactly the injected model must fault",
            test.name
        );
        match &with_fault.outcome_for("panicking").unwrap().outcomes[0].result {
            ExecResult::EngineFault { model, payload } => {
                assert_eq!(model, "panicking", "{}", test.name);
                assert_eq!(payload, FAULT_MESSAGE, "{}", test.name);
            }
            other => panic!("{}: expected an engine fault, got {other}", test.name),
        }

        let without_fault = healthy.run(&program);
        assert!(!without_fault.any_fault(), "{}", test.name);
        for row in without_fault.rows() {
            assert_eq!(
                with_fault.outcome_for(row.model),
                Some(&row.outcome),
                "{}: row {} changed when a faulty engine joined the matrix",
                test.name,
                row.model
            );
        }
    }
}

/// An unbounded loop is stopped by the wall-clock watchdog — with a step
/// budget far too large to fire first — well within the configured budget.
#[test]
fn the_wall_clock_watchdog_stops_an_unbounded_loop() {
    let program = Session::default()
        .elaborate("int main(void) { while (1); return 0; }")
        .unwrap();
    let limits = ResourceLimits::with_steps(u64::MAX).with_wall_clock_ms(200);
    let started = Instant::now();
    let outcome = program.execute_bounded(
        &ModelConfig::de_facto(),
        ExecMode::Random { seed: 0 },
        &limits,
    );
    let elapsed = started.elapsed();
    assert!(
        matches!(
            outcome.outcomes[0].result,
            ExecResult::Timeout(TimeoutKind::WallClock)
        ),
        "expected a wall-clock timeout, got {:?}",
        outcome.outcomes[0].result
    );
    // Generous slack over the 200ms budget: the deadline is polled every
    // 4096 steps, so the overshoot is bounded by one polling interval.
    assert!(
        elapsed < Duration::from_secs(10),
        "watchdog took {elapsed:?} to fire on a 200ms budget"
    );
    assert!(outcome.any_budget_exhaustion());
}

/// Unbounded recursion exhausts the call-depth budget instead of blowing the
/// host stack.
#[test]
fn runaway_recursion_exhausts_the_call_depth_budget() {
    let program = Session::default()
        .elaborate("int f(int n) { return f(n + 1); } int main(void) { return f(0); }")
        .unwrap();
    let limits = ResourceLimits::with_steps(10_000_000).with_call_depth(64);
    let outcome = program.execute_bounded(
        &ModelConfig::de_facto(),
        ExecMode::Random { seed: 0 },
        &limits,
    );
    assert!(
        matches!(
            outcome.outcomes[0].result,
            ExecResult::ResourceExhausted(ResourceKind::CallDepth)
        ),
        "expected call-depth exhaustion, got {:?}",
        outcome.outcomes[0].result
    );
}

/// A leak loop trips the live-allocation ceiling with a structured verdict.
#[test]
fn a_leak_loop_exhausts_the_live_allocation_budget() {
    let program = Session::default()
        .elaborate(
            "#include <stdlib.h>\n\
             int main(void) { while (1) { void *p = malloc(1); if (!p) return 1; } return 0; }",
        )
        .unwrap();
    let limits = ResourceLimits::with_steps(10_000_000).with_max_live_allocations(16);
    let outcome = program.execute_bounded(
        &ModelConfig::de_facto(),
        ExecMode::Random { seed: 0 },
        &limits,
    );
    assert!(
        matches!(
            outcome.outcomes[0].result,
            ExecResult::ResourceExhausted(ResourceKind::LiveAllocations)
        ),
        "expected live-allocation exhaustion, got {:?}",
        outcome.outcomes[0].result
    );
}
