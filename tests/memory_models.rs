//! Integration tests: the de facto litmus suite and cross-model divergence
//! (the §2–§4 experiments as assertions).

use cerberus_ast::ub::UbKind;
use cerberus_litmus::{catalogue, check, run_suite, run_under, Verdict};
use cerberus_memory::config::{ModelConfig, ToolProfile};

#[test]
fn every_litmus_expectation_holds() {
    // Every (test, model) expectation recorded in the catalogue is satisfied
    // by the implementation — this is the repository's version of the paper's
    // claim that the candidate model gives the intended behaviour on its
    // de facto tests (E17), extended to all the models we implement.
    for model in ModelConfig::all_named() {
        for test in catalogue() {
            let verdict = check(&test, &model);
            assert!(
                matches!(verdict, Verdict::AsExpected | Verdict::NoExpectation),
                "model {}: {:?}",
                model.name,
                verdict
            );
        }
    }
}

#[test]
fn model_strictness_ordering_matches_the_paper() {
    // §3: the sanitisers are liberal, tis-interpreter and KCC are strict, and
    // the candidate de facto model sits in between (stricter than the
    // concrete semantics, laxer than strict ISO).
    let concrete = run_suite(&ModelConfig::concrete());
    let de_facto = run_suite(&ModelConfig::de_facto());
    let strict = run_suite(&ModelConfig::strict_iso());
    let sanitizer = run_suite(&ModelConfig::tool(ToolProfile::Sanitizer));
    let tis = run_suite(&ModelConfig::tool(ToolProfile::TisInterpreter));
    let kcc = run_suite(&ModelConfig::tool(ToolProfile::Kcc));

    assert!(concrete.flagged <= de_facto.flagged);
    assert!(de_facto.flagged < strict.flagged);
    assert!(sanitizer.flagged < tis.flagged);
    assert!(sanitizer.flagged <= kcc.flagged);
}

#[test]
fn dr260_outcomes_reproduce_the_paper_shape() {
    let suite = catalogue();
    let dr260 = suite
        .iter()
        .find(|t| t.name == "provenance_basic_global_xy")
        .unwrap();

    let concrete = run_under(dr260, &ModelConfig::concrete());
    assert_eq!(concrete.outcomes[0].stdout, "x=1 y=11 *p=11 *q=11\n");

    let gcc_like = run_under(dr260, &ModelConfig::gcc_like());
    assert_eq!(gcc_like.outcomes[0].stdout, "x=1 y=2 *p=11 *q=2\n");

    let de_facto = run_under(dr260, &ModelConfig::de_facto());
    assert_eq!(
        de_facto.outcomes[0].result.ub_kind(),
        Some(UbKind::OutOfBoundsAccess)
    );
}

#[test]
fn effective_types_only_bite_under_strict_models() {
    let suite = catalogue();
    let q75 = suite
        .iter()
        .find(|t| t.name == "effective_type_char_array_reuse")
        .unwrap();
    assert!(!run_under(q75, &ModelConfig::de_facto()).any_undef());
    assert!(run_under(q75, &ModelConfig::strict_iso()).any_undef());
}

#[test]
fn q31_transient_oob_pointers_split_the_models() {
    let suite = catalogue();
    let q31 = suite
        .iter()
        .find(|t| t.name == "oob_transient_pointer")
        .unwrap();
    assert!(!run_under(q31, &ModelConfig::de_facto()).any_undef());
    assert!(run_under(q31, &ModelConfig::strict_iso()).any_undef());
}

#[test]
fn suite_covers_a_substantial_part_of_the_question_taxonomy() {
    use cerberus_ast::questions::QuestionCategory;
    let suite = catalogue();
    let categories: std::collections::HashSet<QuestionCategory> =
        suite.iter().map(|t| t.category).collect();
    assert!(
        categories.len() >= 12,
        "only {} categories covered",
        categories.len()
    );
    let with_questions = suite.iter().filter(|t| t.question.is_some()).count();
    assert!(with_questions >= 14);
}
