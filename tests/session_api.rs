//! Integration tests for the staged Session API: reusable elaborated
//! artifacts, differential runs across memory models, and structured
//! front-end diagnostics.

use cerberus::pipeline::{PipelineErrorKind, Session};
use cerberus::DifferentialRunner;
use cerberus_litmus::{catalogue, check_outcome, Verdict};
use cerberus_memory::config::ModelConfig;

/// The three-model panel of the §2/§3 comparisons.
fn panel() -> Vec<ModelConfig> {
    vec![
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::strict_iso(),
    ]
}

#[test]
fn provenance_litmus_programs_split_the_model_panel_as_recorded() {
    let provenance_tests: Vec<_> = catalogue()
        .into_iter()
        .filter(|t| t.name.starts_with("provenance") || t.name.starts_with("intptr"))
        .collect();
    assert!(
        provenance_tests.len() >= 3,
        "expected several provenance tests"
    );

    for test in &provenance_tests {
        // Elaborate once; execute under all three models off the shared
        // artifact.
        let program = cerberus_litmus::elaborate(test);
        let shared = program.share();
        let matrix = DifferentialRunner::new(panel()).run(&program);
        assert_eq!(matrix.rows().len(), 3);
        assert!(
            std::sync::Arc::ptr_eq(&shared, &program.share()),
            "the artifact must be shared, not rebuilt"
        );
        // Every recorded expectation in the panel holds.
        for row in matrix.rows() {
            assert_eq!(
                check_outcome(test, row.model, &row.outcome),
                match test.expectation_for(row.model) {
                    Some(_) => Verdict::AsExpected,
                    None => Verdict::NoExpectation,
                },
                "test {} under model {}",
                test.name,
                row.model
            );
        }
    }
}

#[test]
fn the_dr260_matrix_has_the_paper_shape() {
    let suite = catalogue();
    let dr260 = suite
        .iter()
        .find(|t| t.name == "provenance_basic_global_xy")
        .unwrap();
    let matrix = DifferentialRunner::new(panel()).run(&cerberus_litmus::elaborate(dr260));
    // Concrete executes the store into y; the candidate de facto model flags
    // it; strict ISO flags it too — so concrete disagrees with both.
    assert!(!matrix.all_agree());
    assert!(matrix.disagreeing_models().contains(&"de-facto"));
    let concrete = matrix.outcome_for("concrete").unwrap();
    assert_eq!(concrete.stdout(), Some("x=1 y=11 *p=11 *q=11\n"));
    assert!(matrix.outcome_for("de-facto").unwrap().any_undef());
}

#[test]
fn defined_programs_agree_across_the_panel() {
    let program = Session::default()
        .elaborate("int main(void) { int x = 3; int *p = &x; return *p + 39; }")
        .unwrap();
    let matrix = DifferentialRunner::new(panel()).run(&program);
    assert!(matrix.all_agree(), "{matrix}");
    assert_eq!(matrix.agreement_classes().len(), 1);
    assert_eq!(
        matrix.outcome_for("de-facto").unwrap().exit_value(),
        Some(42)
    );
}

#[test]
fn syntax_errors_carry_their_source_line() {
    // The missing semicolon is diagnosed at the `}` on line 2 (1-based).
    let err = Session::default()
        .parse("int main(void) {\n  return 0 }\n")
        .unwrap_err();
    assert_eq!(err.kind(), PipelineErrorKind::Syntax);
    assert_eq!(err.line(), Some(2), "error was: {err}");
    let diagnostic = err.diagnostic();
    assert_eq!(diagnostic.span.start.line, 2);
    assert!(!err.message().is_empty());
}

#[test]
fn preprocessor_errors_carry_their_source_line() {
    // An unknown header is rejected by the preprocessor, which knows the
    // directive's line; the structured error must not lose it.
    let err = Session::default()
        .parse("int x;\n#include <no_such_header.h>\nint main(void) { return x; }\n")
        .unwrap_err();
    assert_eq!(err.kind(), PipelineErrorKind::Syntax);
    assert_eq!(err.line(), Some(2), "error was: {err}");
}

#[test]
fn constraint_violations_carry_their_source_line_and_clause() {
    let source = "int main(void) {\n  int x = 1;\n  return zz;\n}\n";
    let err = Session::default().elaborate(source).unwrap_err();
    assert_eq!(err.kind(), PipelineErrorKind::Constraint);
    assert_eq!(err.line(), Some(3), "error was: {err}");
    let diagnostic = err.diagnostic();
    assert_eq!(diagnostic.span.start.line, 3);
    // Constraint diagnostics cite the violated ISO clause (6.5.1p2 for an
    // undeclared identifier).
    assert_eq!(diagnostic.iso_clause, "6.5.1p2");
    assert!(err.message().contains("zz"));
}

#[test]
fn parse_errors_surface_before_desugaring_and_constraints_after() {
    let session = Session::default();
    // A program that is syntactically fine but ill-typed: parse succeeds,
    // desugar fails.
    let parsed = session.parse("int main(void) { return zz; }").unwrap();
    let err = parsed.desugar().unwrap_err();
    assert_eq!(err.kind(), PipelineErrorKind::Constraint);
}
