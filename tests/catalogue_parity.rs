//! Fixture-migration parity: the golden-file corpus must reproduce the
//! pre-migration Rust-embedded catalogue exactly.
//!
//! `tests/fixtures/_snapshots/pre_migration.json` is a one-time dump of the 23
//! tests that used to live as Rust constructors inside `cerberus-litmus`,
//! including their recorded expectations in the legacy shapes
//! (`returns`/`prints`/`undef`/`some-undef`). This test rebuilds that suite
//! from the snapshot and checks that running it yields **bit-identical**
//! [`SuiteSummary`] tallies to running the fixture-loaded catalogue restricted
//! to the same tests and the same expectation cells — under every named
//! model. The snapshot is frozen history: it never changes as the corpus
//! grows.

use cerberus::memory::config::ModelConfig;
use cerberus_ast::questions::QuestionCategory;
use cerberus_ast::ub::UbKind;
use cerberus_litmus::{catalogue, run_suite_on, Expected, LitmusTest};
use cerberus_wire::json::Json;

fn snapshot_path() -> std::path::PathBuf {
    cerberus_litmus::fixtures::fixtures_root().join("_snapshots/pre_migration.json")
}

fn category_from_label(label: &str) -> QuestionCategory {
    QuestionCategory::all()
        .iter()
        .copied()
        .find(|c| c.label() == label)
        .unwrap_or_else(|| panic!("snapshot names unknown category label {label:?}"))
}

fn expected_from_snapshot(cell: &Json) -> (&'static str, Expected) {
    let model = cell
        .get("model")
        .and_then(Json::as_str)
        .expect("model name");
    let model = ModelConfig::by_name(model)
        .unwrap_or_else(|| panic!("snapshot names unknown model {model:?}"))
        .name;
    let expected = match cell
        .get("expect")
        .and_then(Json::as_str)
        .expect("expect tag")
    {
        "returns" => Expected::Returns(cell.get("value").and_then(Json::as_int).expect("value")),
        "prints" => Expected::Prints(
            cell.get("stdout")
                .and_then(Json::as_str)
                .expect("stdout")
                .to_owned(),
        ),
        "undef" => {
            let ub = cell.get("ub").and_then(Json::as_str).expect("ub");
            Expected::Undef(
                UbKind::from_core_name(ub)
                    .unwrap_or_else(|| panic!("snapshot names unknown UB {ub:?}")),
            )
        }
        "some-undef" => Expected::SomeUndef,
        other => panic!("snapshot uses unknown expectation shape {other:?}"),
    };
    (model, expected)
}

/// The pre-migration catalogue, reconstructed from the snapshot.
fn snapshot_suite() -> Vec<LitmusTest> {
    let text = std::fs::read_to_string(snapshot_path())
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", snapshot_path().display()));
    let document = Json::parse(&text).expect("well-formed snapshot");
    let Some(Json::Arr(tests)) = document.get("tests") else {
        panic!("snapshot has no tests array");
    };
    tests
        .iter()
        .map(|t| LitmusTest {
            name: t
                .get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_owned(),
            question: t.get("question").and_then(Json::as_int).map(|q| q as u32),
            category: category_from_label(
                t.get("category").and_then(Json::as_str).expect("category"),
            ),
            source: t
                .get("source")
                .and_then(Json::as_str)
                .expect("source")
                .to_owned(),
            expectations: match t.get("expectations") {
                Some(Json::Arr(cells)) => cells.iter().map(expected_from_snapshot).collect(),
                _ => Vec::new(),
            },
        })
        .collect()
}

#[test]
fn fixture_suite_tallies_are_bit_identical_to_the_pre_migration_catalogue() {
    let snapshot = snapshot_suite();
    assert_eq!(snapshot.len(), 23, "the snapshot is frozen history");

    // The fixture catalogue restricted to the snapshot's tests, with each
    // test's expectations restricted to the models the snapshot recorded
    // (the corpus has since backfilled the remaining models; parity is about
    // the migrated cells, sliced out of the richer golden matrix).
    let fixture_suite: Vec<LitmusTest> = snapshot
        .iter()
        .map(|old| {
            let mut test = catalogue()
                .into_iter()
                .find(|t| t.name == old.name)
                .unwrap_or_else(|| panic!("migrated fixture {} is gone", old.name));
            let models: Vec<&str> = old.expectations.iter().map(|(m, _)| *m).collect();
            test.expectations.retain(|(m, _)| models.contains(m));
            test
        })
        .collect();

    for (old, new) in snapshot.iter().zip(&fixture_suite) {
        assert_eq!(old.question, new.question, "{}", old.name);
        assert_eq!(old.category, new.category, "{}", old.name);
        assert_eq!(
            old.expectations.len(),
            new.expectations.len(),
            "{} lost expectation cells in migration",
            old.name
        );
    }

    for model in ModelConfig::all_named() {
        let old = run_suite_on(&snapshot, &model);
        let new = run_suite_on(&fixture_suite, &model);
        assert_eq!(old, new, "summary drift under {}", model.name);
    }
}
