//! Integration tests: realistic C programs run end-to-end through the whole
//! pipeline (parser → Ail → Core → evaluator → memory model).

use cerberus::pipeline::{run, run_with_model, Config, Session};
use cerberus_exec::driver::ExecResult;
use cerberus_memory::config::ModelConfig;

fn exit_of(src: &str) -> i128 {
    let out = run(src).expect("program is well-formed");
    match &out.outcomes[0].result {
        ExecResult::Return(v) | ExecResult::Exit(v) => *v,
        other => panic!(
            "expected normal termination, got {other} ({:?})",
            out.outcomes[0]
        ),
    }
}

fn stdout_of(src: &str) -> String {
    run(src).expect("program is well-formed").outcomes[0]
        .stdout
        .clone()
}

#[test]
fn insertion_sort_over_an_array() {
    let src = r#"
        int main(void) {
            int a[8] = {7, 3, 5, 1, 8, 2, 6, 4};
            for (int i = 1; i < 8; i++) {
                int key = a[i];
                int j = i - 1;
                while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
                a[j + 1] = key;
            }
            int sorted = 1;
            for (int i = 1; i < 8; i++) if (a[i - 1] > a[i]) sorted = 0;
            return sorted * 100 + a[0] * 10 + a[7];
        }
    "#;
    assert_eq!(exit_of(src), 118);
}

#[test]
fn linked_list_with_malloc() {
    let src = r#"
        #include <stdlib.h>
        struct node { int value; struct node *next; };
        int main(void) {
            struct node *head = 0;
            for (int i = 1; i <= 5; i++) {
                struct node *n = malloc(sizeof(struct node));
                n->value = i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            struct node *cur = head;
            while (cur) { sum += cur->value; cur = cur->next; }
            while (head) { struct node *next = head->next; free(head); head = next; }
            return sum;
        }
    "#;
    assert_eq!(exit_of(src), 15);
}

#[test]
fn string_manipulation_with_the_builtin_library() {
    let src = r#"
        #include <string.h>
        #include <stdio.h>
        int main(void) {
            char buf[16];
            strcpy(buf, "hello");
            buf[0] = 'H';
            printf("%s %d\n", buf, (int)strlen(buf));
            return strcmp(buf, "Hello") == 0;
        }
    "#;
    let out = run(src).unwrap();
    assert_eq!(out.outcomes[0].stdout, "Hello 5\n");
    assert!(matches!(out.outcomes[0].result, ExecResult::Return(1)));
}

#[test]
fn matrix_multiplication_with_nested_loops() {
    // 3×3 matrices kept in flattened arrays; a[i][k] = 3i+k, b[k][j] = k%3…
    // giving column j of b equal to [j, j, j], so c[i][j] = j·(9i+3) and the
    // total is (3+12+21)·(0+1+2) = 108.
    let flat = r#"
        int main(void) {
            int a[9], b[9], c[9];
            for (int i = 0; i < 9; i++) { a[i] = i; b[i] = i % 3; c[i] = 0; }
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 3; j++)
                    for (int k = 0; k < 3; k++)
                        c[i * 3 + j] += a[i * 3 + k] * b[k * 3 + j];
            int sum = 0;
            for (int i = 0; i < 9; i++) sum += c[i];
            return sum;
        }
    "#;
    assert_eq!(exit_of(flat), 108);
}

#[test]
fn function_pointer_dispatch_table() {
    let src = r#"
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
        int main(void) {
            int (*table[3])(int, int);
            table[0] = add; table[1] = sub; table[2] = mul;
            int acc = 0;
            for (int i = 0; i < 3; i++) acc += apply(table[i], 10, 3);
            return acc;
        }
    "#;
    assert_eq!(exit_of(src), 13 + 7 + 30);
}

#[test]
fn recursive_struct_algorithms() {
    let src = r#"
        struct pair { int lo; int hi; };
        struct pair minmax(int *a, int n) {
            struct pair p;
            p.lo = a[0]; p.hi = a[0];
            for (int i = 1; i < n; i++) {
                if (a[i] < p.lo) p.lo = a[i];
                if (a[i] > p.hi) p.hi = a[i];
            }
            return p;
        }
        int main(void) {
            int xs[6] = {4, -2, 9, 0, 7, 3};
            struct pair p = minmax(xs, 6);
            return p.hi * 10 + (p.lo + 2);
        }
    "#;
    assert_eq!(exit_of(src), 90);
}

#[test]
fn printf_formats_and_loops() {
    let src = r#"
        #include <stdio.h>
        int main(void) {
            unsigned long total = 0ul;
            for (int i = 1; i <= 5; i++) { total += (unsigned long)i * i; }
            printf("sum of squares = %lu, hex %x, char %c\n", total, 255, 'A');
            return 0;
        }
    "#;
    assert_eq!(stdout_of(src), "sum of squares = 55, hex ff, char A\n");
}

#[test]
fn the_same_program_can_be_checked_under_every_model() {
    let src = "int main(void) { int x = 3; int *p = &x; return *p + 39; }";
    for model in ModelConfig::all_named() {
        let out = run_with_model(src, model.clone()).unwrap();
        assert!(
            matches!(out.outcomes[0].result, ExecResult::Return(42)),
            "model {}: {:?}",
            model.name,
            out.outcomes[0]
        );
    }
}

#[test]
fn exhaustive_and_random_drivers_agree_on_deterministic_programs() {
    let src = "int sq(int x) { return x * x; } int main(void) { int acc = 0; for (int i = 0; i < 5; i++) acc += sq(i); return acc; }";
    let random = Session::new(Config::default()).run_source(src).unwrap();
    let exhaustive = Session::new(Config::default().exhaustive(32))
        .run_source(src)
        .unwrap();
    assert_eq!(
        exhaustive.outcomes.len(),
        1,
        "a deterministic program has a single behaviour"
    );
    assert_eq!(random.outcomes[0].result, exhaustive.outcomes[0].result);
}

#[test]
fn ilp32_environment_changes_long_width() {
    let src = "int main(void) { return (int)sizeof(long); }";
    let config = Config {
        impl_env: cerberus_ast::env::ImplEnv::ilp32(),
        ..Config::default()
    };
    let out = Session::new(config).run_source(src).unwrap();
    assert!(matches!(out.outcomes[0].result, ExecResult::Return(4)));
    assert_eq!(exit_of(src), 8, "LP64 default");
}
