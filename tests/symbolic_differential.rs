//! Integration tests: the symbolic provenance engine as a genuinely
//! different second `MemoryModel`, exercised through the full pipeline and
//! the parallel differential runner.
//!
//! These assert the known concrete-vs-symbolic disagreement classes (cross-
//! object pointer comparison, intptr round trips resolved through provenance
//! rather than through the concrete address space) and the determinism of
//! the parallel runner against the sequential path.

use cerberus::memory::config::ModelConfig;
use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_ast::ub::UbKind;
use cerberus_litmus::{catalogue, differential, elaborate};

#[test]
fn cross_object_pointer_comparison_splits_concrete_and_symbolic() {
    // Equality of one-past-x and &y: concrete layouts make the addresses
    // coincide; the symbolic engine keeps every allocation in its own
    // address region, so the pointers are never equal.
    let program = Session::default()
        .elaborate(
            "int x = 1, y = 2;\nint main(void) { int *p = &x + 1; int *q = &y; return p == q; }",
        )
        .unwrap();
    let matrix = DifferentialRunner::new(vec![ModelConfig::concrete(), ModelConfig::symbolic()])
        .run(&program);
    assert_eq!(
        matrix.outcome_for("concrete").unwrap().exit_value(),
        Some(1)
    );
    assert_eq!(
        matrix.outcome_for("symbolic").unwrap().exit_value(),
        Some(0)
    );
    assert_eq!(matrix.disagreeing_models(), vec!["symbolic"]);

    // Relational comparison across objects: defined by address concretely, a
    // constraint violation symbolically (there is no inter-region order).
    let program = Session::default()
        .elaborate("int a, b;\nint main(void) { return (&a < &b) || (&a > &b); }")
        .unwrap();
    let matrix = DifferentialRunner::new(vec![ModelConfig::concrete(), ModelConfig::symbolic()])
        .run(&program);
    assert_eq!(
        matrix.outcome_for("concrete").unwrap().exit_value(),
        Some(1)
    );
    let symbolic = matrix.outcome_for("symbolic").unwrap();
    assert_eq!(
        symbolic.outcomes[0].result.ub_kind(),
        Some(UbKind::RelationalCompareDifferentObjects)
    );
}

#[test]
fn intptr_round_trips_split_concrete_and_symbolic() {
    // A plain round trip works under both engines (the symbolic engine
    // resolves it lazily through the integer's provenance) …
    let round_trip = "int main(void) { int x = 7; unsigned long a = (unsigned long)&x; int *p = (int*)a; return *p; }";
    let program = Session::default().elaborate(round_trip).unwrap();
    for model in [ModelConfig::concrete(), ModelConfig::symbolic()] {
        assert_eq!(
            program.run_under(&model).exit_value(),
            Some(7),
            "model {}",
            model.name
        );
    }

    // … but computing one object's address from another's by integer
    // arithmetic only works when the address space is concrete: the symbolic
    // result keeps x's provenance and lands a whole region outside it.
    let forged = "int x = 1, y = 2;\nint main(void) { unsigned long ax = (unsigned long)&x; unsigned long ay = (unsigned long)&y; int *p = (int*)(ax + (ay - ax)); return *p; }";
    let program = Session::default().elaborate(forged).unwrap();
    let matrix = DifferentialRunner::new(vec![ModelConfig::concrete(), ModelConfig::symbolic()])
        .run(&program);
    assert_eq!(
        matrix.outcome_for("concrete").unwrap().exit_value(),
        Some(2)
    );
    assert_eq!(
        matrix.outcome_for("symbolic").unwrap().outcomes[0]
            .result
            .ub_kind(),
        Some(UbKind::OutOfBoundsAccess)
    );
    assert!(!matrix.all_agree());
}

#[test]
fn every_litmus_differential_matrix_is_deterministic_under_parallelism() {
    // The parallel runner must produce exactly the sequential matrix for
    // every litmus test that records expectations (rows in runner order,
    // identical outcomes).
    for test in catalogue() {
        let models: Vec<ModelConfig> = ModelConfig::all_named()
            .into_iter()
            .filter(|m| test.expectation_for(m.name).is_some())
            .collect();
        let runner = DifferentialRunner::new(models);
        let program = elaborate(&test);
        assert_eq!(
            runner.run(&program),
            runner.run_sequential(&program),
            "test {}",
            test.name
        );
    }
}

#[test]
fn litmus_differential_matrices_include_the_symbolic_rows() {
    let suite = catalogue();
    let with_symbolic: Vec<_> = suite
        .iter()
        .filter(|t| t.expectation_for("symbolic").is_some())
        .collect();
    assert!(
        with_symbolic.len() >= 10,
        "only {} tests record symbolic expectations",
        with_symbolic.len()
    );
    for test in with_symbolic {
        let matrix = differential(test);
        assert!(
            matrix.outcome_for("symbolic").is_some(),
            "test {} lost its symbolic row",
            test.name
        );
    }
}
