// @question: 20
// @category: pointer-casts
int main(void) {
  int x = 8;
  char *c = (char *)&x;
  int *p = (int *)c;
  return *p;
}
