// @question: 20
// @category: pointer-casts
int main(void) {
  int x = 9;
  void *v = &x;
  int *p = (int *)v;
  return *p;
}
