// @question: 25
// @category: pointer-relational
int a, b;
int main(void) { return (&a < &b) || (&a > &b); }
