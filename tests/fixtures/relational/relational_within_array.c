// @question: 25
// @category: pointer-relational
int main(void) {
  int a[4];
  a[0] = 1;
  return (a + 0) < (a + 3);
}
