// @question: 26
// @category: pointer-relational
struct pair { int first; int second; };
int main(void) {
  struct pair v;
  v.first = 1;
  v.second = 2;
  return (unsigned char *)&v.first < (unsigned char *)&v.second;
}
