// @question: 42
// @category: pointer-stability
#include <stdlib.h>
#include <string.h>
int main(void) {
  int *p = malloc(sizeof(int));
  int *before = p;
  free(p);
  return memcmp(&before, &p, sizeof(p)) == 0;
}
