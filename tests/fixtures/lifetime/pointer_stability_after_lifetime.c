// @question: 42
// @category: pointer-lifetime-end
#include <stdlib.h>
int main(void) { int *p = malloc(4); int *q = p; free(p); return p == q; }
