// @question: 41
// @category: pointer-lifetime-end
#include <stdlib.h>
int main(void) { int *p = malloc(sizeof(int)); *p = 3; free(p); return *p; }
