// @question: 47
// @category: pointer-lifetime-end
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  free(p);
  free(p);
  return 0;
}
