// @category: pointer-lifetime-end
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 3;
  int v = *p;
  free(p);
  return v;
}
