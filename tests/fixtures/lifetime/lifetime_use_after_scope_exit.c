// @question: 41
// @category: pointer-lifetime-end
int main(void) {
  int *p;
  {
    int y = 5;
    p = &y;
  }
  return *p;
}
