// @question: 41
// @category: pointer-lifetime-end
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  free(p);
  return p != (int *)0;
}
