// @question: 59
// @category: padding
struct s { char c; int i; };
int main(void) {
  return (int)sizeof(struct s);
}
