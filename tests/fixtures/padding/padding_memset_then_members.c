// @question: 61
// @category: padding
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v;
  memset(&v, 0xFF, sizeof(v));
  v.c = 1;
  v.i = 2;
  unsigned char *bytes = (unsigned char *)&v;
  return bytes[1] == 0xFF;
}
