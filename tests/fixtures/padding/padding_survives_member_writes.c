// @question: 59
// @category: padding
struct s { char c; int i; };
int main(void) {
  struct s v;
  unsigned char *bytes = (unsigned char*)&v;
  bytes[1] = 0xAA;
  v.c = 1; v.i = 2;
  return bytes[1] == 0xAA;
}
