// @question: 62
// @category: padding
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s a, b;
  unsigned char *pa = (unsigned char *)&a;
  memset(&a, 0xAA, sizeof(a));
  a.c = 1;
  a.i = 2;
  memcpy(&b, &a, sizeof(a));
  unsigned char *pb = (unsigned char *)&b;
  return pb[1] == pa[1];
}
