// @question: 5
// @category: provenance-via-integers
int main(void) {
  int x = 3;
  unsigned long a = (unsigned long)&x;
  unsigned long b = a;
  int *p = (int *)b;
  *p = 4;
  return x;
}
