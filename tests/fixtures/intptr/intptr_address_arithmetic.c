// @question: 9
// @category: provenance-via-integers
int x = 1, y = 2;
int main(void) { unsigned long ax = (unsigned long)&x; unsigned long ay = (unsigned long)&y; int *p = (int*)(ax + (ay - ax)); return *p; }
