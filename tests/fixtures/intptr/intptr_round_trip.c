// @question: 5
// @category: provenance-via-integers
int main(void) { int x = 7; unsigned long a = (unsigned long)&x; int *p = (int*)a; return *p; }
