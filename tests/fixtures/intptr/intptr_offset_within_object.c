// @question: 7
// @category: provenance-via-integers
int main(void) {
  int a[4];
  a[1] = 8;
  unsigned long base = (unsigned long)&a[0];
  int *p = (int *)(base + sizeof(int));
  return *p;
}
