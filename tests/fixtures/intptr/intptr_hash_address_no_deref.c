// @question: 6
// @category: provenance-via-integers
int main(void) {
  int x = 1;
  unsigned long h = (unsigned long)&x;
  h = (h >> 4) ^ (h << 3);
  return (int)(h % 2);
}
