// @question: 6
// @category: provenance-via-integers
int main(void) {
  int x = 1;
  return ((unsigned long)&x & 1ul) == 0ul;
}
