// @question: 43
// @category: unspecified-values
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  int v = *p;
  free(p);
  return 0;
}
