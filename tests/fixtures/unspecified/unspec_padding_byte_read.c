// @question: 53
// @category: unspecified-values
struct s { char c; int i; };
int main(void) {
  struct s v;
  v.c = 1;
  v.i = 2;
  unsigned char *bytes = (unsigned char *)&v;
  unsigned b = bytes[1];
  return 0;
}
