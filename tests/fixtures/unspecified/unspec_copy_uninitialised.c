// @question: 43
// @category: unspecified-values
int main(void) { int x; int y = x; return 0; }
