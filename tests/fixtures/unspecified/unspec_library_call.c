// @question: 49
// @category: unspecified-values
#include <stdio.h>
int main(void) { int x; printf("%d\n", x); return 0; }
