// @question: 44
// @category: unspecified-values
#include <stdlib.h>
int main(void) {
  int *p = calloc(4, sizeof(int));
  int v = p[2];
  free(p);
  return v;
}
