// @question: 48
// @category: unspecified-values
int main(void) {
  int x;
  if (x == x) { return 1; }
  return 0;
}
