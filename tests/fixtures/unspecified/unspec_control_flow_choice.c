// @question: 50
// @category: unspecified-values
int main(void) { int x; if (x) return 1; return 0; }
