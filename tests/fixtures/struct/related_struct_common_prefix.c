// @question: 65
// @category: related-struct-union
struct a { int tag; int x; };
struct b { int tag; char y; };
int main(void) {
  struct a va;
  va.tag = 4;
  va.x = 1;
  struct b *pb = (struct b *)&va;
  return pb->tag;
}
