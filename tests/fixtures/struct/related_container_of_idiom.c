// @question: 37
// @category: related-struct-union
struct outer { int before; int field; };
int main(void) {
  struct outer v;
  v.before = 1;
  v.field = 2;
  int *member = &v.field;
  struct outer *back =
      (struct outer *)((unsigned char *)member - sizeof(int));
  return back->before;
}
