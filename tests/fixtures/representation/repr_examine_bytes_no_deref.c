// @question: 15
// @category: provenance-via-representation
int main(void) {
  int x = 1;
  int *p = &x;
  unsigned char *bytes = (unsigned char *)&p;
  unsigned total = 0u;
  for (int i = 0; i < (int)sizeof(p); i++) total += bytes[i];
  return (int)(total % 7u);
}
