// @question: 13
// @category: provenance-via-representation
#include <string.h>
int main(void) { int x = 9; int *p = &x; int *q; memcpy(&q, &p, sizeof(p)); return *q; }
