// @question: 14
// @category: provenance-via-representation
int main(void) {
  int x = 6;
  int *p = &x;
  int *q;
  unsigned char *src = (unsigned char *)&p;
  unsigned char *dst = (unsigned char *)&q;
  int half = (int)sizeof(p) / 2;
  for (int i = 0; i < half; i++) dst[i] = src[i];
  for (int i = half; i < (int)sizeof(p); i++) dst[i] = src[i];
  return *q;
}
