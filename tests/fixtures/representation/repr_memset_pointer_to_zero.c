// @question: 16
// @category: provenance-via-representation
#include <string.h>
int main(void) {
  int x = 1;
  int *p = &x;
  memset(&p, 0, sizeof(p));
  return p == (int *)0;
}
