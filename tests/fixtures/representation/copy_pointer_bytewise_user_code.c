// @question: 14
// @category: provenance-via-representation
int main(void) {
  int x = 5; int *p = &x; int *q;
  unsigned char *src = (unsigned char*)&p;
  unsigned char *dst = (unsigned char*)&q;
  for (int i = 0; i < (int)sizeof(p); i++) dst[i] = src[i];
  return *q;
}
