// @question: 32
// @category: pointer-arithmetic
int main(void) {
  int a[4];
  a[0] = 5;
  int *p = a + 1;
  return p[-1];
}
