// @question: 31
// @category: pointer-arithmetic
int main(void) {
  int a[2];
  a[0] = 1;
  a[1] = 2;
  int *p = a + 2;
  return *p;
}
