// @category: pointer-arithmetic
int main(void) {
  int a[4];
  a[2] = 6;
  return *(a + 2) == a[2];
}
