// @question: 31
// @category: pointer-arithmetic
int main(void) {
  int a[4];
  a[3] = 9;
  int *p = a + 64;
  p = p - 61;
  return *p;
}
