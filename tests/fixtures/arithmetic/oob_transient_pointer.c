// @question: 31
// @category: pointer-arithmetic
int main(void) { int a[4]; a[1] = 7; int *p = a + 10; p = p - 9; return *p; }
