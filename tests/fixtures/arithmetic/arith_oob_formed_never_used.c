// @question: 31
// @category: pointer-arithmetic
int main(void) {
  int a[4];
  a[0] = 1;
  int *p = a + 100;
  if (p == a) { return 1; }
  return 0;
}
