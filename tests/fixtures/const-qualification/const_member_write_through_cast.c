// @question: 39
// @category: other
struct s { const int locked; int open; };
int main(void) {
  struct s v = {1, 2};
  int *p = (int *)&v.locked;
  *p = 3;
  return v.locked + v.open;
}
