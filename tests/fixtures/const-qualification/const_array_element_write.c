// @question: 39
// @category: other
int main(void) {
  const int table[3] = {1, 2, 3};
  int *p = (int *)&table[1];
  *p = 20;
  return table[0] + table[1];
}
