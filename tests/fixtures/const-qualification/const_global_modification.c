// @question: 39
// @category: other
const int limit = 10;
int main(void) {
  int *p = (int *)&limit;
  *p = 11;
  return limit;
}
