// @question: 39
// @category: other
int main(void) {
  int writable = 5;
  const int *view = &writable;
  int *back = (int *)view;
  *back = 6;
  return writable;
}
