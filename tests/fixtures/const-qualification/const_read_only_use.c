// @question: 39
// @category: other
int main(void) {
  const int c = 7;
  const int *p = &c;
  return *p + c;
}
