// @question: 39
// @category: other
int main(void) {
  const int c = 41;
  int *p = (int *)&c;
  *p = 42;
  return *p;
}
