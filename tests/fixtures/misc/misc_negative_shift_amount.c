// @question: 52
// @category: other
int main(void) {
  int n = -1;
  return 1 << n;
}
