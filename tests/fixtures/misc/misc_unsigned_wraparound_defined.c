// @category: other
int main(void) {
  unsigned int x = 4294967295u;
  x = x + 1u;
  return (int)x;
}
