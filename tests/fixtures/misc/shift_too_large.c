// @question: 52
// @category: other
int main(void) { int n = 40; return 1 << n; }
