// @category: other
int main(void) {
  int min = -2147483647 - 1;
  int d = -1;
  return min / d;
}
