// @category: other
int fact(int n) {
  if (n < 2) { return 1; }
  return n * fact(n - 1);
}
int main(void) { return fact(5); }
