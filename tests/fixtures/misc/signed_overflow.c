// @category: other
int main(void) { int x = 2147483647; return x + 1; }
