// @category: other
int main(void) {
  int zero = 0;
  return 1 / zero;
}
