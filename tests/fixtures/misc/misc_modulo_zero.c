// @category: other
int main(void) {
  int zero = 0;
  return 5 % zero;
}
