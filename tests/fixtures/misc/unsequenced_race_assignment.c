// @category: other
int main(void) { int i = 0; i = i++ + 1; return i; }
