// @question: 52
// @category: other
int main(void) {
  int v = -1;
  return v << 1;
}
