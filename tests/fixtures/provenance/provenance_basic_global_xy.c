// @question: 11
// @category: provenance-basics
#include <stdio.h>
#include <string.h>
int x = 1, y = 2;
int main() {
  int *p = &x + 1;
  int *q = &y;
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11;
    printf("x=%d y=%d *p=%d *q=%d\n", x, y, *p, *q);
  }
  return 0;
}
