// @question: 11
// @category: provenance-basics
#include <string.h>
int main(void) {
  int x = 1, y = 2;
  int *p = &x + 1;
  int *q = &y;
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11;
    return x + y;
  }
  return x + y;
}
