// @question: 11
// @category: provenance-basics
int x = 1, y = 2;
int main(void) {
  int *p = &x + 1;
  *p = 11;
  return y;
}
