// @question: 10
// @category: multiple-provenance
int x = 3, y = 4;
int main(void) {
  int flag = 1;
  int *p;
  if (flag) { p = &x; } else { p = &y; }
  return *p;
}
