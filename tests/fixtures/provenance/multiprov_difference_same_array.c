// @question: 9
// @category: multiple-provenance
int main(void) {
  int a[8];
  a[0] = 0;
  return (int)((a + 5) - (a + 2));
}
