// @question: 4
// @category: provenance-basics
int main(void) {
  int *p = (int *)4096;
  return *p;
}
