// @question: 9
// @category: multiple-provenance
int a = 1, b = 2;
int main(void) { return (int)(&b - &a); }
