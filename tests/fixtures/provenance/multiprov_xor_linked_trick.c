// @question: 9
// @category: multiple-provenance
int x = 7, y = 9;
int main(void) {
  unsigned long both = (unsigned long)&x ^ (unsigned long)&y;
  unsigned long px = both ^ (unsigned long)&y;
  int *p = (int *)px;
  return *p;
}
