// @category: invalid-accesses
int main(void) {
  int a[2];
  a[2] = 7;
  return 0;
}
