// @category: invalid-accesses
int main(void) { char *s = "ab"; s[0] = 'x'; return 0; }
