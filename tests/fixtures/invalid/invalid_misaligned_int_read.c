// @category: invalid-accesses
int main(void) {
  int a[2];
  a[0] = 1;
  a[1] = 2;
  int *p = (int *)((unsigned char *)a + 1);
  return *p;
}
