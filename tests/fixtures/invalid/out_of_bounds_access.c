// @category: invalid-accesses
int main(void) { int a[2]; a[0] = 1; int *p = a; return *(p + 9); }
