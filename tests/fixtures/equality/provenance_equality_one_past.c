// @question: 2
// @category: pointer-equality
int x = 1, y = 2;
int main(void) { int *p = &x + 1; int *q = &y; return p == q; }
