// @question: 3
// @category: pointer-equality
int x = 1, y = 2;
int main(void) { return &x == &y; }
