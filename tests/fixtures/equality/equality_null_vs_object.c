// @category: pointer-equality
int x = 1;
int main(void) { return &x == (int *)0; }
