// @question: 5
// @category: pointer-equality
int main(void) {
  int x = 1;
  int *p = (int *)(unsigned long)&x;
  return p == &x;
}
