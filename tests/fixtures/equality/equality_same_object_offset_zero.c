// @question: 2
// @category: pointer-equality
int main(void) {
  int a[4];
  a[0] = 1;
  int *p = a;
  return p == a + 0;
}
