// @question: 64
// @category: provenance-union-punning
union u { unsigned int i; unsigned char b[4]; };
int main(void) {
  union u v;
  v.i = 0xFFFFFFFFu;
  v.b[0] = 0;
  return (int)(v.i & 0xFFu);
}
