// @question: 64
// @category: provenance-union-punning
union u { unsigned int i; unsigned char b[4]; };
int main(void) {
  union u v;
  v.b[0] = 1;
  v.b[1] = 0;
  v.b[2] = 0;
  v.b[3] = 0;
  return (int)v.i;
}
