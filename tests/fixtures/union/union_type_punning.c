// @question: 64
// @category: provenance-union-punning
union u { unsigned int i; unsigned char b[4]; };
int main(void) { union u v; v.i = 0x01020304u; return v.b[0]; }
