// @question: 60
// @category: provenance-union-punning
union u { int *p; unsigned long l; };
int x = 5;
int main(void) {
  union u v;
  v.p = &x;
  int *q = (int *)v.l;
  return *q;
}
