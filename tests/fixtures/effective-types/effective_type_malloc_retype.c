// @question: 74
// @category: effective-types-basic
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(long));
  *p = 3;
  long *q = (long *)p;
  *q = 4l;
  int r = (int)*q;
  free(p);
  return r;
}
