// @question: 75
// @category: effective-types-char-arrays
int main(void) { unsigned char buf[16]; int *p = (int*)buf; *p = 3; return *p; }
