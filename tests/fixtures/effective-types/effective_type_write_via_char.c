// @question: 75
// @category: effective-types-char-arrays
int main(void) {
  int x = 0;
  unsigned char *bytes = (unsigned char *)&x;
  bytes[0] = 3;
  return x;
}
