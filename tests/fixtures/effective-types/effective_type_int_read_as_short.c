// @question: 73
// @category: effective-types-basic
int main(void) {
  int x = 0x00010002;
  short *p = (short *)&x;
  return (int)*p;
}
