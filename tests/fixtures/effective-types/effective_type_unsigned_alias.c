// @question: 73
// @category: effective-types-basic
int main(void) {
  int x = 12;
  unsigned int *p = (unsigned int *)&x;
  return (int)*p;
}
