// @category: pointer-equality
// Branching on an equality of pointers to distinct objects: the division is
// reachable only under a layout where x and y share an address, which no
// model produces — the static analyzer must keep the finding conditional
// (the residual constraint base(x) == base(y)) rather than promise it.
int x = 1, y = 2;
int main(void) {
  if (&x == &y) {
    return 1 / (x - 1);
  }
  return 0;
}
