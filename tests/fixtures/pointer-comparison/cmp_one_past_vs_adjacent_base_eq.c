// @category: pointer-equality
// One-past-the-end of `a` compared with the base of a separately declared
// object: ISO makes the == result unspecified (it depends on whether the
// implementation placed b directly after a); the models disagree.
int a, b;
int main(void) { return &a + 1 == &b; }
