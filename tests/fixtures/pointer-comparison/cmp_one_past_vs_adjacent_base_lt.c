// @category: pointer-relational
// The same one-past-vs-adjacent-base comparison as the == fixture, but
// relational: 6.5.8p5 restricts <Relational> to pointers into the same
// object, so this is UB where the equality was merely unspecified.
int a, b;
int main(void) { return &a + 1 < &b; }
