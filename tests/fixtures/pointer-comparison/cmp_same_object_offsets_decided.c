// @category: pointer-relational
// Comparisons within one object with statically known offsets: every
// operator is decided by the analyzer without consulting the solver, and
// every model agrees on the concrete results.
int a[4];
int main(void) {
  int eq = (a + 2 == a + 2);
  int lt = (a < a + 1);
  int le = (a + 4 <= a + 4);
  return eq + lt + le;
}
