// @category: pointer-relational
// The == vs < asymmetry on the same pair of pointers into distinct objects:
// the equality is defined (and false under any model that keeps the objects
// apart), the relational comparison is UB by 6.5.8p5.
int a[2], b[2];
int main(void) {
  int eq = (a == b);
  int lt = (a < b);
  return eq + lt;
}
