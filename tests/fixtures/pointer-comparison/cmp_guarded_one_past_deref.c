// @category: pointer-equality
// The one-past pointer is dereferenced only when it compares equal to the
// base of another object — the de-facto "adjacent objects alias" idiom. The
// access is in bounds of neither interpretation: if the guard is taken the
// pointer still carries a's provenance while addressing b's storage.
int a[2], b[2];
int main(void) {
  int *p = a + 2;
  b[0] = 7;
  if (p == b) {
    return *p;
  }
  return 0;
}
