// @category: null-pointers
int main(void) { int *p = 0; return *p; }
