// @category: null-pointers
int main(void) {
  int *p = (int *)0;
  int *q = (int *)0;
  return p == q;
}
