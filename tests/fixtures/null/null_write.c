// @category: null-pointers
int main(void) {
  int *p = (int *)0;
  *p = 1;
  return 0;
}
