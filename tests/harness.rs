//! The golden-file litmus harness.
//!
//! Discovers every fixture under `tests/fixtures/<group>/<name>.c`, runs each
//! program under **every named memory model** (one elaboration per fixture,
//! executions fanned out across the job queue), and diffs the observed verdict
//! matrix against the committed `<name>.expect` file cell by cell.
//!
//! To (re)generate expectation files in place — after adding a fixture, or
//! after an intentional semantics change — run:
//!
//! ```text
//! CERBERUS_UPDATE_FIXTURES=1 cargo test --test harness
//! ```
//!
//! and review the resulting `git diff` like any other code change. The
//! comparison is exact (the full rendered outcome per model: kind, value,
//! stdout, UB name/clause/detail), so any drift in any model's verdict on any
//! fixture shows up as a readable per-cell failure report.

use std::fmt::Write as _;

use cerberus::memory::config::ModelConfig;
use cerberus_litmus::fixtures::{
    diff_expectations, discover, expectation_document, fixtures_root, FixtureEntry,
};
use cerberus_queue::{Job, JobOutcome, JobQueue};
use cerberus_wire::json::Json;

/// Whether this run should rewrite `.expect` files instead of checking them.
fn update_mode() -> bool {
    std::env::var_os("CERBERUS_UPDATE_FIXTURES").is_some_and(|v| v == "1")
}

/// Run one fixture under every named model and render its expectation
/// document. The queue elaborates the source once per job and reuses that
/// artifact for all model executions.
fn observed_documents(queue: &JobQueue, entries: &[FixtureEntry]) -> Vec<Json> {
    let ids = queue.submit_batch(entries.iter().map(|entry| {
        let source = std::fs::read_to_string(&entry.source_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.source_path.display()));
        Job::new(source, ModelConfig::all_named())
    }));
    entries
        .iter()
        .zip(queue.wait_all(&ids))
        .map(|(entry, outcome)| match outcome {
            JobOutcome::Matrix(matrix) => expectation_document(&matrix),
            JobOutcome::Rejected(e) => panic!(
                "fixture {}/{} was rejected by the front end: {e}",
                entry.group, entry.name
            ),
            JobOutcome::FrontendFault(payload) => panic!(
                "fixture {}/{} panicked in the front end: {payload}",
                entry.group, entry.name
            ),
        })
        .collect()
}

#[test]
fn golden_fixture_matrices_match_their_expect_files() {
    let root = fixtures_root();
    let entries = discover(&root);
    assert!(
        entries.len() >= 60,
        "fixture corpus shrank to {} entries",
        entries.len()
    );

    let queue = JobQueue::start(std::thread::available_parallelism().map_or(4, |n| n.get()));
    let observed = observed_documents(&queue, &entries);
    queue.shutdown();

    if update_mode() {
        let mut written = 0;
        for (entry, document) in entries.iter().zip(&observed) {
            let rendered = document.encode_pretty();
            if std::fs::read_to_string(&entry.expect_path).ok().as_deref() != Some(&rendered) {
                std::fs::write(&entry.expect_path, rendered).unwrap_or_else(|e| {
                    panic!("cannot write {}: {e}", entry.expect_path.display())
                });
                written += 1;
            }
        }
        eprintln!(
            "regenerated {written} of {} expectation files under {}",
            entries.len(),
            root.display()
        );
        return;
    }

    let mut report = String::new();
    let mut failing = 0;
    for (entry, actual) in entries.iter().zip(&observed) {
        let recorded = match std::fs::read_to_string(&entry.expect_path) {
            Ok(text) => Json::parse(&text)
                .unwrap_or_else(|e| panic!("malformed {}: {e}", entry.expect_path.display())),
            Err(_) => {
                failing += 1;
                let _ = writeln!(
                    report,
                    "{}/{}: missing expectation file {}",
                    entry.group,
                    entry.name,
                    entry.expect_path.display()
                );
                continue;
            }
        };
        let diffs = diff_expectations(&recorded, actual);
        if !diffs.is_empty() {
            failing += 1;
            let _ = writeln!(report, "{}/{}:", entry.group, entry.name);
            for diff in diffs {
                let _ = writeln!(report, "  {diff}");
            }
        }
    }
    assert!(
        failing == 0,
        "{failing} of {} fixtures disagree with their golden expectations \
         (rerun with CERBERUS_UPDATE_FIXTURES=1 to regenerate, then review the diff):\n{report}",
        entries.len()
    );
}

#[test]
fn regeneration_is_a_fixed_point() {
    // Running the suite twice must produce byte-identical documents: the
    // encoder is deterministic and the per-model outcomes are reproducible,
    // which is what makes `.expect` files reviewable golden state.
    let entries = discover(&fixtures_root());
    let sample: Vec<FixtureEntry> = entries.into_iter().take(6).collect();
    let queue = JobQueue::start(2);
    let first = observed_documents(&queue, &sample);
    let second = observed_documents(&queue, &sample);
    queue.shutdown();
    for ((entry, a), b) in sample.iter().zip(&first).zip(&second) {
        assert_eq!(
            a.encode_pretty(),
            b.encode_pretty(),
            "non-deterministic outcome for {}/{}",
            entry.group,
            entry.name
        );
    }
}

#[test]
fn expectation_files_are_pretty_printed_and_complete() {
    // Committed golden files stay in the canonical rendering (one line per
    // scalar, sorted keys) so diffs are per-cell, and every file covers the
    // full named-model matrix.
    let models: Vec<&str> = ModelConfig::all_named().iter().map(|m| m.name).collect();
    for entry in discover(&fixtures_root()) {
        let Ok(text) = std::fs::read_to_string(&entry.expect_path) else {
            continue; // the golden test above reports missing files
        };
        let document = Json::parse(&text)
            .unwrap_or_else(|e| panic!("malformed {}: {e}", entry.expect_path.display()));
        assert_eq!(
            text,
            document.encode_pretty(),
            "{} is not canonically formatted (regenerate with CERBERUS_UPDATE_FIXTURES=1)",
            entry.expect_path.display()
        );
        let Some(Json::Obj(matrix)) = document.get("matrix") else {
            panic!("{} has no matrix", entry.expect_path.display());
        };
        for model in &models {
            assert!(
                matrix.contains_key(*model),
                "{} records no cell for model {model}",
                entry.expect_path.display()
            );
        }
    }
}
