//! Precision cross-validation of the static UB analyzer — the dual of
//! `tests/analysis_soundness.rs`.
//!
//! The contract: every `Must` finding the analyzer reports on a golden
//! fixture must be realised dynamically by at least one of the named memory
//! models (an `undef` cell of the same UB kind in the fixture's committed
//! `.expect` matrix) — or the `(fixture, kind)` pair must be on the reviewed
//! over-claim allowlist (`tests/precision_allowlist.txt`). `May` findings
//! carry no penalty: over-approximation is the soundness side's prerogative.
//! Together the two harnesses pin the analyzer from both directions — it may
//! not stay silent about dynamic UB, and it may not *promise* UB no model
//! exhibits.
//!
//! Must findings additionally must carry an assignment witness (the
//! satisfying layout/value choice the path constraints admit): a Must with a
//! residual witness means the severity and evidence machinery disagree.
//!
//! The allowlist follows the same lifecycle rules as the soundness one:
//! sorted, unique, capped, every entry carries a one-line justification plus
//! a `# reason:` review comment, and stale entries fail the run.

#[path = "support/allowlist.rs"]
mod support;

use std::collections::BTreeSet;

use cerberus::analysis::{FindingSeverity, Witness};
use cerberus::Session;
use cerberus_ast::ub::UbKind;
use cerberus_litmus::fixtures::{discover, fixtures_root};

use support::{allowlist_path, check_allowlist_hygiene, dynamic_ub_kinds, load_allowlist};

/// Deliberately tighter than the soundness cap (15): an analyzer that
/// over-claims `Must` undermines the witness contract, so over-claims should
/// be fixed, not reviewed away.
const ALLOWLIST_CAP: usize = 5;
const ALLOWLIST_FILE: &str = "precision_allowlist.txt";

#[test]
fn every_must_finding_is_dynamically_realised_or_allowlisted() {
    let entries = discover(&fixtures_root());
    assert!(
        entries.len() >= 60,
        "fixture corpus shrank to {} entries",
        entries.len()
    );
    let path = allowlist_path(ALLOWLIST_FILE);
    let allowlist = load_allowlist(&path);
    let known: BTreeSet<String> = entries
        .iter()
        .map(|e| format!("{}/{}", e.group, e.name))
        .collect();
    check_allowlist_hygiene(&path, &allowlist, ALLOWLIST_CAP, &known);

    let session = Session::default();
    let mut over_claims = Vec::new();
    let mut used: BTreeSet<(String, UbKind)> = BTreeSet::new();
    for entry in &entries {
        let source = std::fs::read_to_string(&entry.source_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", entry.source_path.display()));
        let report = session.analyze(&source).unwrap_or_else(|e| {
            panic!("{}/{} rejected by front end: {e}", entry.group, entry.name)
        });
        assert!(
            report.aborted.is_none(),
            "{}/{}: analyzer aborted: {:?}",
            entry.group,
            entry.name,
            report.aborted
        );
        let fixture = format!("{}/{}", entry.group, entry.name);
        let musts: BTreeSet<UbKind> = report
            .findings
            .iter()
            .filter(|f| f.severity == FindingSeverity::Must)
            .map(|f| f.ub)
            .collect();
        for finding in &report.findings {
            if finding.severity == FindingSeverity::Must {
                assert!(
                    matches!(finding.witness, Witness::Assignment(_)),
                    "{fixture}: Must finding {} carries a residual witness instead of an \
                     assignment: {:?}",
                    finding.ub.core_name(),
                    finding.witness
                );
            }
        }
        if musts.is_empty() {
            continue;
        }
        let dynamic = dynamic_ub_kinds(entry);
        for kind in musts {
            if dynamic.contains(&kind) {
                continue;
            }
            if allowlist
                .iter()
                .any(|a| a.fixture == fixture && a.ub == kind)
            {
                used.insert((fixture.clone(), kind));
                continue;
            }
            over_claims.push(format!(
                "{fixture}: static Must {} realised by no named model (dynamic kinds: {:?})",
                kind.core_name(),
                dynamic.iter().map(|k| k.core_name()).collect::<Vec<_>>()
            ));
        }
    }
    assert!(
        over_claims.is_empty(),
        "Must over-claims not on the allowlist:\n  {}",
        over_claims.join("\n  ")
    );

    let stale: Vec<String> = allowlist
        .iter()
        .filter(|a| !used.contains(&(a.fixture.clone(), a.ub)))
        .map(|a| format!("{} {}", a.fixture, a.ub.core_name()))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries (these Musts are now realised or gone — remove the lines):\n  {}",
        stale.join("\n  ")
    );
}

#[test]
fn allowlist_entries_are_sorted_and_unique() {
    let path = allowlist_path(ALLOWLIST_FILE);
    let allowlist = load_allowlist(&path);
    let mut sorted = allowlist.clone();
    sorted.sort();
    sorted.dedup_by(|a, b| a.fixture == b.fixture && a.ub == b.ub);
    assert_eq!(
        allowlist, sorted,
        "keep tests/precision_allowlist.txt sorted by fixture then UB kind, without duplicates"
    );
}
