//! Integration test: the §6-style differential validation in miniature — the
//! pipeline must agree with the independent reference evaluator on randomly
//! generated well-defined programs.

use cerberus_gen::{diff_one, generate, run_differential, DiffOutcome, GenConfig};

#[test]
fn small_generated_programs_agree_with_the_reference_oracle() {
    let summary = run_differential(20, GenConfig::small(), 2_000_000);
    assert_eq!(summary.total, 20);
    assert_eq!(summary.disagree, 0, "{summary:?}");
    assert_eq!(summary.failed, 0, "{summary:?}");
    assert!(summary.agree >= 19, "{summary:?}");
}

#[test]
fn larger_generated_programs_mostly_agree_with_a_timeout_tail() {
    let summary = run_differential(8, GenConfig::large(), 1_000_000);
    assert_eq!(summary.total, 8);
    assert_eq!(summary.disagree, 0, "{summary:?}");
    // Like the paper's larger Csmith runs, a (small) timeout tail is allowed.
    assert!(summary.agree + summary.timeout == 8, "{summary:?}");
    assert!(summary.agree >= 5, "{summary:?}");
}

#[test]
fn step_budget_exhaustion_is_reported_as_a_timeout() {
    let program = generate(11, GenConfig::large());
    assert_eq!(diff_one(&program, 10), DiffOutcome::Timeout);
}
