//! Property-based tests over the whole stack: front-end robustness, the
//! implementation-defined arithmetic rules, provenance preservation, and
//! generator/pipeline agreement.

use proptest::prelude::*;

use cerberus::pipeline::run_with_model;
use cerberus_ast::ctype::IntegerType;
use cerberus_ast::env::ImplEnv;
use cerberus_exec::driver::ExecResult;
use cerberus_gen::{diff_one, generate, DiffOutcome, GenConfig};
use cerberus_memory::config::ModelConfig;
use cerberus_memory::state::{AllocKind, MemState};
use cerberus_memory::value::MemValue;
use cerberus_parser::lexer::lex;
use cerberus_parser::preprocess::preprocess;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lexer never panics on arbitrary printable input (it may reject it).
    #[test]
    fn lexer_is_total_on_printable_ascii(s in "[ -~\n\t]{0,200}") {
        let _ = lex(&s);
    }

    /// The preprocessor never panics and strips comments without losing
    /// newline structure entirely.
    #[test]
    fn preprocessor_is_total(s in "[ -~\n]{0,200}") {
        let _ = preprocess(&s);
    }

    /// Integer conversion to an unsigned type is always in range and is a
    /// ring homomorphism modulo 2^width (6.3.1.3p2).
    #[test]
    fn unsigned_conversion_is_modular(v in any::<i64>(), w in any::<i64>()) {
        let env = ImplEnv::lp64();
        for &ty in &[IntegerType::UChar, IntegerType::UShort, IntegerType::UInt, IntegerType::ULong] {
            let cv = env.convert_int(i128::from(v), ty);
            prop_assert!(cv >= 0 && cv <= env.int_max(ty));
            let sum_then_convert = env.convert_int(i128::from(v).wrapping_add(i128::from(w)), ty);
            let convert_then_sum =
                env.convert_int(env.convert_int(i128::from(v), ty) + env.convert_int(i128::from(w), ty), ty);
            prop_assert_eq!(sum_then_convert, convert_then_sum);
        }
    }

    /// Signed conversion agrees with two's-complement truncation.
    #[test]
    fn signed_conversion_matches_twos_complement(v in any::<i64>()) {
        let env = ImplEnv::lp64();
        prop_assert_eq!(env.convert_int(i128::from(v), IntegerType::Int), i128::from(v as i32));
        prop_assert_eq!(env.convert_int(i128::from(v), IntegerType::Short), i128::from(v as i16));
        prop_assert_eq!(env.convert_int(i128::from(v), IntegerType::SChar), i128::from(v as i8));
    }

    /// Storing an integer and loading it back through the memory engine is
    /// the identity on representable values, for every named model.
    #[test]
    fn memory_store_load_round_trips(v in any::<i32>()) {
        for config in [ModelConfig::concrete(), ModelConfig::de_facto(), ModelConfig::strict_iso()] {
            let mut mem = MemState::new(config, ImplEnv::lp64(), Default::default());
            let ty = cerberus_ast::ctype::Ctype::integer(IntegerType::Int);
            let p = mem.create(&ty, AllocKind::Automatic, None).unwrap();
            mem.store(&ty, &p, &MemValue::int(IntegerType::Int, i128::from(v))).unwrap();
            prop_assert_eq!(mem.load(&ty, &p).unwrap().as_int(), Some(i128::from(v)));
        }
    }

    /// Bytewise copies of stored pointers preserve their provenance (Q13).
    #[test]
    fn bytewise_pointer_copies_preserve_provenance(offset in 0u64..4) {
        let mut mem = MemState::new(ModelConfig::de_facto(), ImplEnv::lp64(), Default::default());
        let int = cerberus_ast::ctype::Ctype::integer(IntegerType::Int);
        let arr = cerberus_ast::ctype::Ctype::array(int.clone(), 4);
        let target = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        let elem = mem.array_shift(&target, &int, i128::from(offset)).unwrap();
        mem.store(&int, &elem, &MemValue::int(IntegerType::Int, 7)).unwrap();
        let pty = cerberus_ast::ctype::Ctype::pointer(int.clone());
        let a = mem.create(&pty, AllocKind::Automatic, None).unwrap();
        let b = mem.create(&pty, AllocKind::Automatic, None).unwrap();
        mem.store(&pty, &a, &MemValue::Pointer(int.clone(), elem.clone())).unwrap();
        mem.copy_bytes(&b, &a, 8).unwrap();
        let copied = mem.load(&pty, &b).unwrap();
        prop_assert_eq!(copied.as_pointer().unwrap().prov, elem.prov);
    }

    /// Simple arithmetic programs computed by the pipeline agree with Rust's
    /// own wrapping arithmetic at `unsigned int`.
    #[test]
    fn pipeline_matches_native_unsigned_arithmetic(a in any::<u32>(), b in any::<u32>()) {
        let src = format!(
            "int main(void) {{ unsigned x = {a}u; unsigned y = {b}u; unsigned z = x * 3u + y; return (int)(z % 97u); }}"
        );
        let expected = i128::from((a.wrapping_mul(3).wrapping_add(b)) % 97);
        let out = run_with_model(&src, ModelConfig::de_facto()).unwrap();
        prop_assert!(matches!(out.outcomes[0].result, ExecResult::Return(v) if v == expected),
            "{:?} vs {}", out.outcomes[0], expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated well-defined programs never trigger undefined behaviour and
    /// always agree with the reference evaluator (the §6 validation as a
    /// property).
    #[test]
    fn generated_programs_agree_with_the_reference(seed in 0u64..2000) {
        let program = generate(seed, GenConfig::small());
        let outcome = diff_one(&program, 2_000_000);
        prop_assert!(
            matches!(outcome, DiffOutcome::Agree | DiffOutcome::Timeout),
            "seed {seed}: {outcome:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Totality of the bounded executor: every generated program, under every
    /// named model and a tight resource budget, yields a structured
    /// `ExecResult` — no panic escapes the run and no budget overrun aborts
    /// it. Budget exhaustion must surface as `Timeout`/`ResourceExhausted`,
    /// and an `EngineFault` can never be produced by the driver itself.
    /// Totality over the fixture corpus: every golden-file litmus program,
    /// under every named model and the same tight budget, produces a
    /// structured result — adding a fixture can never smuggle in a program
    /// that panics the engine or escapes the resource accounting. The seed
    /// picks which fixture to probe so the whole corpus is covered across
    /// runs without re-elaborating all of it per case.
    #[test]
    fn every_fixture_is_total_under_tight_budgets(seed in 0u64..500) {
        use cerberus::pipeline::Session;
        use cerberus_exec::driver::ExecMode;
        use cerberus_memory::limits::ResourceLimits;

        let suite = cerberus_litmus::catalogue();
        let test = &suite[(seed as usize) % suite.len()];
        let session = Session::default();
        let artifact = session
            .elaborate(&test.source)
            .unwrap_or_else(|e| panic!("fixture {} failed in the front end: {e}", test.name));
        let limits = ResourceLimits::with_steps(200_000)
            .with_wall_clock_ms(10_000)
            .with_heap_bytes(1 << 20)
            .with_max_live_allocations(4 << 10)
            .with_call_depth(128);
        for model in ModelConfig::all_named() {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                artifact.execute_bounded(&model, ExecMode::Random { seed }, &limits)
            }));
            let outcome = run.unwrap_or_else(|_| {
                panic!(
                    "fixture {}: model {} panicked instead of returning a structured result",
                    test.name, model.name
                )
            });
            prop_assert!(
                !outcome.outcomes.is_empty(),
                "fixture {}: model {} produced no outcome",
                test.name,
                model.name
            );
            prop_assert!(
                !outcome.is_fault(),
                "fixture {}: the driver fabricated an EngineFault under {}",
                test.name,
                model.name
            );
        }
    }

    /// Totality of the static analyzer: every generated seed and every
    /// golden fixture analyzes to a structured [`AnalysisReport`] under a
    /// tight step budget — the pass never panics (`aborted` stays unset) and
    /// budget exhaustion surfaces as `budget_exhausted`, not as an abort.
    /// Even seeds probe the generator corpus, odd seeds the fixture corpus.
    #[test]
    fn the_static_analyzer_is_total(seed in 0u64..500) {
        use cerberus::analysis::AnalysisConfig;
        use cerberus::pipeline::Session;

        let session = Session::default();
        let (label, source) = if seed % 2 == 0 {
            let program = generate(seed / 2, GenConfig::small());
            (format!("seed {seed}"), cerberus_gen::to_c_source(&program))
        } else {
            let suite = cerberus_litmus::catalogue();
            let test = &suite[(seed as usize / 2) % suite.len()];
            (format!("fixture {}", test.name), test.source.clone())
        };
        let report = session
            .analyze_with(&source, AnalysisConfig::tight())
            .unwrap_or_else(|e| panic!("{label} failed in the front end: {e}"));
        prop_assert!(
            report.aborted.is_none(),
            "{}: the analyzer aborted: {:?}",
            label,
            report.aborted
        );
        prop_assert!(
            report.violations.is_empty(),
            "{}: elaborated Core failed the well-formedness validator: {:?}",
            label,
            report.violations
        );
    }

    /// Path sensitivity is a *refinement* of the flow-join baseline: pruning
    /// infeasible paths and tracking constraints may drop findings or sharpen
    /// May into Must, but must never surface a UB kind the join analysis
    /// proves absent.
    #[test]
    fn path_sensitive_analysis_refines_the_flow_baseline(seed in 0u64..500) {
        use cerberus::analysis::AnalysisConfig;
        use cerberus::pipeline::Session;

        let session = Session::default();
        let (label, source) = if seed % 2 == 0 {
            let program = generate(seed / 2, GenConfig::small());
            (format!("seed {seed}"), cerberus_gen::to_c_source(&program))
        } else {
            let suite = cerberus_litmus::catalogue();
            let test = &suite[(seed as usize / 2) % suite.len()];
            (format!("fixture {}", test.name), test.source.clone())
        };
        let path = session
            .analyze_with(&source, AnalysisConfig::tight())
            .unwrap_or_else(|e| panic!("{label} failed in the front end: {e}"));
        let flow = session
            .analyze_with(&source, AnalysisConfig::tight().flow_baseline())
            .unwrap_or_else(|e| panic!("{label} failed in the front end: {e}"));
        // Budget exhaustion truncates the explored portion of the program,
        // and the two modes spend steps differently; only compare complete
        // analyses.
        if !path.budget_exhausted && !flow.budget_exhausted {
            let extra: Vec<_> = path.ub_kinds().difference(&flow.ub_kinds()).copied().collect();
            prop_assert!(
                extra.is_empty(),
                "{}: path-sensitive mode reported kinds the flow baseline excludes: {:?}",
                label,
                extra
            );
        }
    }

    #[test]
    fn every_named_model_is_total_under_tight_budgets(seed in 0u64..500) {
        use cerberus::pipeline::Session;
        use cerberus_exec::driver::ExecMode;
        use cerberus_memory::limits::ResourceLimits;

        let program = generate(seed, GenConfig::small());
        let source = cerberus_gen::to_c_source(&program);
        let session = Session::default();
        let artifact = session
            .elaborate(&source)
            .expect("generated programs are well-formed");
        let limits = ResourceLimits::with_steps(200_000)
            .with_wall_clock_ms(10_000)
            .with_heap_bytes(1 << 20)
            .with_max_live_allocations(4 << 10)
            .with_call_depth(128);
        for model in ModelConfig::all_named() {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                artifact.execute_bounded(&model, ExecMode::Random { seed: 0 }, &limits)
            }));
            let outcome = run.unwrap_or_else(|_| {
                panic!(
                    "seed {seed}: model {} panicked instead of returning a structured result",
                    model.name
                )
            });
            prop_assert!(
                !outcome.outcomes.is_empty(),
                "seed {seed}: model {} produced no outcome",
                model.name
            );
            prop_assert!(
                !outcome.is_fault(),
                "seed {seed}: the driver fabricated an EngineFault under {}",
                model.name
            );
        }
    }
}
