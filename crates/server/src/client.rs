//! A minimal HTTP/1.1 client for the service's own API — used by the
//! `cerberus-serve --smoke` CI check and the workspace integration tests.
//! One request per connection, matching the server's `Connection: close`
//! discipline.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Issue one request and parse the JSON response body.
///
/// `addr` is `host:port`; `body`, when given, is sent as `application/json`.
/// Returns the status code and the decoded body (or `Json::Null` for an
/// empty/non-JSON body).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_response(&response)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, Json)> {
    let bad = |message: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator in response"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 response head"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = &raw[split + 4..];
    let document = if body.is_empty() {
        Json::Null
    } else {
        let text = std::str::from_utf8(body).map_err(|_| bad("non-UTF-8 response body"))?;
        Json::parse(text).unwrap_or(Json::Null)
    };
    Ok((status, document))
}

/// Poll `GET /api/v0/jobs/{id}` until the job reaches a terminal status.
pub fn poll_job(addr: &str, id: i128, deadline: Duration) -> std::io::Result<Json> {
    let start = Instant::now();
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/api/v0/jobs/{id}"), None)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "poll of job {id} answered {status}: {}",
                body.encode()
            )));
        }
        match body.get("status").and_then(Json::as_str) {
            Some("completed" | "failed") => return Ok(body),
            _ if start.elapsed() > deadline => {
                return Err(std::io::Error::other(format!(
                    "job {id} still not finished after {deadline:?}"
                )))
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Wait (connect-retry) until a server answers on `addr`.
pub fn wait_for_server(addr: &str, deadline: Duration) -> std::io::Result<()> {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return Ok(()),
            Err(e) if start.elapsed() > deadline => {
                return Err(std::io::Error::other(format!(
                    "no server on {addr} after {deadline:?}: {e}"
                )))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The end-to-end smoke drill run by CI against a live server:
/// models are listed, a submission completes with an agreeing matrix, and an
/// identical resubmission is answered from the result cache.
///
/// Returns a human-readable transcript on success; errors describe the first
/// failed step.
pub fn smoke(addr: &str, deadline: Duration) -> std::io::Result<String> {
    let mut transcript = String::new();
    wait_for_server(addr, deadline)?;
    let fail = |step: &str, body: &Json| {
        std::io::Error::other(format!("{step}: unexpected response {}", body.encode()))
    };

    let (status, body) = http_request(addr, "GET", "/api/v0/models", None)?;
    if status != 200 || body.get("models").and_then(Json::as_array).is_none() {
        return Err(fail("GET /api/v0/models", &body));
    }
    let model_count = body.get("models").and_then(Json::as_array).unwrap().len();
    transcript.push_str(&format!("models: {model_count} named\n"));

    let submission = r#"{"source": "int main(void) { int x = 40; return x + 2; }", "models": ["concrete", "symbolic"]}"#;
    let (status, body) = http_request(addr, "POST", "/api/v0/submit", Some(submission))?;
    let Some(id) = body.get("job").and_then(Json::as_int) else {
        return Err(fail("POST /api/v0/submit", &body));
    };
    if status != 202 {
        return Err(fail("POST /api/v0/submit", &body));
    }
    let finished = poll_job(addr, id, deadline)?;
    let agreed = finished
        .get("result")
        .and_then(|r| r.get("all_agree"))
        .and_then(Json::as_bool);
    if agreed != Some(true) {
        return Err(fail("job result", &finished));
    }
    transcript.push_str(&format!("job {id}: completed, all models agree\n"));

    let (_, body) = http_request(addr, "POST", "/api/v0/submit", Some(submission))?;
    let Some(second) = body.get("job").and_then(Json::as_int) else {
        return Err(fail("resubmission", &body));
    };
    poll_job(addr, second, deadline)?;
    let (status, stats) = http_request(addr, "GET", "/api/v0/stats", None)?;
    let hits = stats
        .get("result_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_int);
    if status != 200 || hits.is_none_or(|h| h < 1) {
        return Err(fail("GET /api/v0/stats after resubmission", &stats));
    }
    transcript.push_str(&format!(
        "job {second}: resubmission served from the result cache ({} hits)\n",
        hits.unwrap_or_default()
    ));
    Ok(transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_are_parsed_and_malformed_ones_rejected() {
        let (status, body) =
            parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 13\r\n\r\n{\"x\": [1, 2]}")
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            body.get("x").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert!(parse_response(b"HTTP/1.1 OK\r\n\r\n").is_err());
        assert!(parse_response(b"no separator at all").is_err());
        let (status, body) = parse_response(b"HTTP/1.1 204 No Content\r\n\r\n").unwrap();
        assert_eq!((status, body), (204, Json::Null));
    }

    #[test]
    fn the_smoke_drill_passes_against_a_live_server() {
        let server = match crate::serve("127.0.0.1:0", crate::ServerConfig::default()) {
            Ok(server) => server,
            Err(e) => {
                // Sandboxes without loopback cannot run the drill.
                eprintln!("skipping: cannot bind loopback: {e}");
                return;
            }
        };
        let addr = server.local_addr().to_string();
        let transcript = smoke(&addr, Duration::from_secs(60)).expect("smoke drill");
        assert!(transcript.contains("all models agree"), "{transcript}");
        assert!(transcript.contains("result cache"), "{transcript}");
        server.shutdown();
    }
}
