//! The UB-oracle service: a std-only HTTP/1.1 front door over the
//! [`cerberus_queue::JobQueue`] worker pool.
//!
//! A client POSTs a C translation unit; the service enqueues one
//! (program × model-set) job on the work-stealing pool, answers immediately
//! with a job id, and serves the §3-style outcome matrix once the workers
//! finish. Everything is hand-rolled on `std::net` — the build environment is
//! offline, so there is no HTTP framework, no async runtime, and no JSON
//! dependency (see [`json`]).
//!
//! # Routes (versioned under `/api/v0`)
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /api/v0/submit` | Enqueue a job; `202` with `{"job", "status", "poll", "analysis"}` |
//! | `GET /api/v0/jobs/{id}` | Job status, plus the result document when finished |
//! | `GET /api/v0/models` | The named memory object models the service runs |
//! | `GET /api/v0/stats` | Queue depth, cache hit/miss counters, per-worker activity |
//!
//! The submit body is a JSON object: `{"source": "<C source>"}` plus optional
//! `"models"` (array of model names; defaults to every named model),
//! `"steps"` (interpreter step budget), `"wall_clock_ms"` (watchdog) and
//! `"seed"` (random-exploration seed). Engine panics never kill the service:
//! they surface as `engine-fault` rows in the matrix (contained by the
//! differential runner), and front-end panics as a `failed` job with the
//! captured payload.
//!
//! ```no_run
//! let server = cerberus_server::serve("127.0.0.1:0", Default::default()).unwrap();
//! let addr = server.local_addr();
//! let (status, body) = cerberus_server::client::http_request(
//!     &addr.to_string(),
//!     "POST",
//!     "/api/v0/submit",
//!     Some(r#"{"source": "int main(void) { return 42; }"}"#),
//! )
//! .unwrap();
//! assert_eq!(status, 202);
//! assert!(body.get("poll").is_some());
//! server.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod render;

/// The deterministic JSON value, encoder and decoder — re-exported from
/// [`cerberus_wire`], the shared wire layer that also backs the litmus
/// fixture expectation files.
pub mod json {
    pub use cerberus_wire::json::{Json, JsonError};
}

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cerberus_memory::{ModelConfig, ResourceLimits};
use cerberus_queue::{Job, JobId, JobOutcome, JobQueue, JobStatus};

use http::{read_request, write_response, Request};
use json::Json;

/// How the service is provisioned.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the job pool.
    pub workers: usize,
    /// The resource budget applied to submissions that do not override it.
    pub default_limits: ResourceLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            default_limits: ResourceLimits::default(),
        }
    }
}

/// A running service: the bound address, the accept loop, and the pool.
///
/// Dropping the handle shuts the service down (idempotently); call
/// [`Server::shutdown`] to do so explicitly.
pub struct Server {
    local_addr: SocketAddr,
    queue: Arc<JobQueue>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying job queue (for in-process inspection in tests).
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Stop accepting connections and drain the pool. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.queue.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral port)
/// and serve the API until [`Server::shutdown`].
pub fn serve(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    // Non-blocking accept so the loop can observe the stop flag promptly.
    listener.set_nonblocking(true)?;
    let queue = Arc::new(JobQueue::start(config.workers.max(1)));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let default_limits = config.default_limits.clone();
        std::thread::Builder::new()
            .name("cerberus-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, queue, default_limits, stop))?
    };
    Ok(Server {
        local_addr,
        queue,
        stop,
        accept_thread: Mutex::new(Some(accept_thread)),
    })
}

fn accept_loop(
    listener: TcpListener,
    queue: Arc<JobQueue>,
    default_limits: ResourceLimits,
    stop: Arc<AtomicBool>,
) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let queue = Arc::clone(&queue);
                let limits = default_limits.clone();
                let handle = std::thread::Builder::new()
                    .name("cerberus-serve-conn".to_owned())
                    .spawn(move || handle_connection(stream, &queue, &limits));
                match handle {
                    Ok(handle) => connections.push(handle),
                    Err(_) => continue, // thread spawn failed; drop the connection
                }
                connections.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn handle_connection(mut stream: TcpStream, queue: &JobQueue, limits: &ResourceLimits) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (status, body) = match read_request(&mut stream) {
        Ok(request) => handle_request(queue, limits, &request),
        Err(failure) => match http::error_status(&failure) {
            Some((status, _)) => (status, error_body(&format!("{failure:?}"))),
            None => return, // peer went away before sending a request
        },
    };
    let _ = write_response(
        &mut stream,
        status,
        http::reason_phrase(status),
        "application/json",
        body.encode().as_bytes(),
    );
}

/// Dispatch one parsed request to its route. Pure apart from the queue —
/// exercised directly by unit tests without a socket.
pub fn handle_request(
    queue: &JobQueue,
    default_limits: &ResourceLimits,
    request: &Request,
) -> (u16, Json) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/api/v0/submit") => submit_route(queue, default_limits, &request.body),
        ("GET", "/api/v0/models") => models_route(),
        ("GET", "/api/v0/stats") => (200, render::queue_stats_to_json(&queue.stats())),
        ("GET", path) if path.starts_with("/api/v0/jobs/") => {
            job_route(queue, &path["/api/v0/jobs/".len()..])
        }
        ("GET", "/" | "/api/v0") => index_route(),
        (_, "/api/v0/submit" | "/api/v0/models" | "/api/v0/stats") => {
            (405, error_body("method not allowed"))
        }
        _ => (404, error_body("no such route")),
    }
}

fn index_route() -> (u16, Json) {
    let routes = [
        "POST /api/v0/submit",
        "GET /api/v0/jobs/{id}",
        "GET /api/v0/models",
        "GET /api/v0/stats",
    ];
    (
        200,
        Json::obj([
            ("service", Json::str("cerberus ub-oracle")),
            ("api", Json::str("v0")),
            (
                "routes",
                Json::Arr(routes.iter().map(|r| Json::str(*r)).collect()),
            ),
        ]),
    )
}

fn models_route() -> (u16, Json) {
    let names = ModelConfig::all_named()
        .iter()
        .map(|m| Json::str(m.name))
        .collect();
    (
        200,
        Json::obj([
            ("models", Json::Arr(names)),
            // Accepted by `submit` for fault-containment drills, but not part
            // of the default differential set.
            ("fault_injection", Json::Arr(vec![Json::str("panicking")])),
        ]),
    )
}

/// A model name accepted by the submit route. `panicking` is deliberately
/// admitted (it is not in [`ModelConfig::all_named`]) so clients can drive
/// the fault-containment path end to end.
fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "panicking" => Some(ModelConfig::panicking()),
        _ => ModelConfig::by_name(name),
    }
}

fn submit_route(queue: &JobQueue, default_limits: &ResourceLimits, body: &[u8]) -> (u16, Json) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("body is not UTF-8")),
    };
    let document = match Json::parse(text) {
        Ok(document) => document,
        Err(e) => return (400, error_body(&format!("body is not JSON: {e}"))),
    };
    let Some(source) = document.get("source").and_then(Json::as_str) else {
        return (400, error_body("missing required string member \"source\""));
    };
    let models = match document.get("models") {
        None => ModelConfig::all_named(),
        Some(Json::Arr(names)) if !names.is_empty() => {
            let mut models = Vec::with_capacity(names.len());
            for name in names {
                let Some(name) = name.as_str() else {
                    return (400, error_body("\"models\" must be an array of strings"));
                };
                match model_by_name(name) {
                    Some(model) => models.push(model),
                    None => {
                        let known: Vec<Json> = ModelConfig::all_named()
                            .iter()
                            .map(|m| Json::str(m.name))
                            .collect();
                        return (
                            400,
                            Json::obj([
                                ("error", Json::str(format!("unknown model {name:?}"))),
                                ("known_models", Json::Arr(known)),
                            ]),
                        );
                    }
                }
            }
            models
        }
        Some(_) => {
            return (
                400,
                error_body("\"models\" must be a non-empty array of model names"),
            )
        }
    };
    let mut limits = default_limits.clone();
    if let Some(steps) = document.get("steps") {
        match steps.as_int() {
            Some(steps) if steps > 0 => limits.steps = steps.min(u64::MAX as i128) as u64,
            _ => return (400, error_body("\"steps\" must be a positive integer")),
        }
    }
    if let Some(ms) = document.get("wall_clock_ms") {
        match ms.as_int() {
            Some(ms) if ms > 0 => limits.wall_clock_ms = Some(ms.min(u64::MAX as i128) as u64),
            _ => {
                return (
                    400,
                    error_body("\"wall_clock_ms\" must be a positive integer"),
                )
            }
        }
    }
    let mut job = Job::new(source, models).with_limits(limits);
    if let Some(seed) = document.get("seed") {
        match seed.as_int() {
            Some(seed) if seed >= 0 => {
                job = job.with_mode(cerberus::exec::ExecMode::Random {
                    seed: seed.min(u64::MAX as i128) as u64,
                });
            }
            _ => return (400, error_body("\"seed\" must be a non-negative integer")),
        }
    }
    // A submission racing queue shutdown panics in `submit`; contain it and
    // answer 500 instead of silently dropping the connection.
    let id = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| queue.submit(job))) {
        Ok(id) => id,
        Err(_) => return (500, error_body("service is shutting down")),
    };
    // The static analysis runs synchronously in the acknowledgement: it is a
    // single memoised pass over the elaborated Core, cheap next to the
    // differential execution the job just queued. A front-end rejection is
    // reported in place rather than failing the submission — the queued job
    // will surface the same rejection through the poll route.
    let analysis = match queue.session().analyze(source) {
        Ok(report) => cerberus_wire::analysis_report_to_json(&report),
        Err(error) => Json::obj([("error", render::pipeline_error_to_json(&error))]),
    };
    (
        202,
        Json::obj([
            ("job", Json::Int(i128::from(id.0))),
            ("status", Json::str(JobStatus::Queued.label())),
            ("poll", Json::str(format!("/api/v0/jobs/{id}"))),
            ("analysis", analysis),
        ]),
    )
}

fn job_route(queue: &JobQueue, id_text: &str) -> (u16, Json) {
    let Ok(id) = id_text.parse::<u64>() else {
        return (400, error_body("job ids are integers"));
    };
    let id = JobId(id);
    let Some(status) = queue.status(id) else {
        return (404, error_body(&format!("unknown job {id}")));
    };
    let mut members = vec![
        ("job".to_owned(), Json::Int(i128::from(id.0))),
        ("status".to_owned(), Json::str(status.label())),
    ];
    if let Some(outcome) = queue.outcome(id) {
        match outcome {
            JobOutcome::Matrix(matrix) => {
                members.push(("result".to_owned(), render::matrix_to_json(&matrix)));
            }
            JobOutcome::Rejected(error) => {
                members.push(("reason".to_owned(), Json::str("rejected")));
                members.push(("error".to_owned(), render::pipeline_error_to_json(&error)));
            }
            JobOutcome::FrontendFault(payload) => {
                members.push(("reason".to_owned(), Json::str("front-end-fault")));
                members.push(("panic".to_owned(), Json::str(payload)));
            }
        }
    }
    (200, Json::obj(members))
}

fn error_body(message: &str) -> Json {
    Json::obj([("error", Json::str(message))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn routed(queue: &JobQueue, request: &Request) -> (u16, Json) {
        handle_request(queue, &ResourceLimits::default(), request)
    }

    #[test]
    fn submit_poll_and_stats_work_without_a_socket() {
        let queue = JobQueue::start(2);
        let (status, body) = routed(
            &queue,
            &post(
                "/api/v0/submit",
                r#"{"source": "int main(void) { return 42; }", "models": ["concrete", "symbolic"]}"#,
            ),
        );
        assert_eq!(status, 202, "{body:?}");
        let id = body.get("job").and_then(Json::as_int).unwrap() as u64;
        let poll = body.get("poll").and_then(Json::as_str).unwrap().to_owned();
        assert_eq!(poll, format!("/api/v0/jobs/{id}"));

        queue.wait(JobId(id));
        let (status, body) = routed(&queue, &get(&poll));
        assert_eq!(status, 200);
        assert_eq!(body.get("status").and_then(Json::as_str), Some("completed"));
        let result = body.get("result").unwrap();
        assert_eq!(result.get("all_agree"), Some(&Json::Bool(true)));

        let (status, stats) = routed(&queue, &get("/api/v0/stats"));
        assert_eq!(status, 200);
        assert_eq!(stats.get("submitted").and_then(Json::as_int), Some(1));
        queue.shutdown();
    }

    #[test]
    fn submissions_are_acknowledged_with_a_static_analysis() {
        let queue = JobQueue::start(1);
        let (status, body) = routed(
            &queue,
            &post(
                "/api/v0/submit",
                r#"{"source": "int main(void) { int *p = 0; *p = 1; return 0; }", "models": ["concrete"]}"#,
            ),
        );
        assert_eq!(status, 202, "{body:?}");
        let analysis = body.get("analysis").expect("analysis member");
        let findings = analysis.get("findings").and_then(Json::as_array).unwrap();
        assert!(
            findings.iter().any(|f| {
                f.get("ub").and_then(Json::as_str) == Some("Null_pointer_dereference")
            }),
            "{analysis:?}"
        );
        assert_eq!(analysis.get("aborted"), Some(&Json::Null));

        // A front-end rejection still acknowledges the job; the analysis
        // member carries the error instead of findings.
        let (status, body) = routed(
            &queue,
            &post("/api/v0/submit", r#"{"source": "int main(void) {"}"#),
        );
        assert_eq!(status, 202, "{body:?}");
        let analysis = body.get("analysis").expect("analysis member");
        assert!(analysis.get("error").is_some(), "{analysis:?}");
        queue.shutdown();
    }

    #[test]
    fn bad_submissions_are_rejected_with_400() {
        let queue = JobQueue::start(1);
        for (body, needle) in [
            ("{not json", "not JSON"),
            (r#"{"models": ["concrete"]}"#, "source"),
            (r#"{"source": "int main(void){}", "models": []}"#, "models"),
            (
                r#"{"source": "int main(void){}", "models": ["no-such"]}"#,
                "unknown model",
            ),
            (r#"{"source": "int main(void){}", "steps": -3}"#, "steps"),
            (r#"{"source": "int main(void){}", "seed": -1}"#, "seed"),
        ] {
            let (status, response) = routed(&queue, &post("/api/v0/submit", body));
            assert_eq!(status, 400, "{body}");
            let error = response.get("error").and_then(Json::as_str).unwrap();
            assert!(error.contains(needle), "{error} should mention {needle}");
        }
        queue.shutdown();
    }

    #[test]
    fn unknown_jobs_routes_and_methods_are_mapped() {
        let queue = JobQueue::start(1);
        assert_eq!(routed(&queue, &get("/api/v0/jobs/999")).0, 404);
        assert_eq!(routed(&queue, &get("/api/v0/jobs/xyz")).0, 400);
        assert_eq!(routed(&queue, &get("/nope")).0, 404);
        assert_eq!(routed(&queue, &post("/api/v0/models", "")).0, 405);
        assert_eq!(routed(&queue, &get("/")).0, 200);
        let (status, body) = routed(&queue, &get("/api/v0/models"));
        assert_eq!(status, 200);
        let models = body.get("models").and_then(Json::as_array).unwrap();
        assert!(models.iter().any(|m| m.as_str() == Some("concrete")));
        assert!(models.iter().all(|m| m.as_str() != Some("panicking")));
        queue.shutdown();
    }

    #[test]
    fn a_rejected_program_fails_with_structured_diagnostics() {
        let queue = JobQueue::start(1);
        let (status, body) = routed(
            &queue,
            &post(
                "/api/v0/submit",
                r#"{"source": "int main(void) { return 1 +; }"}"#,
            ),
        );
        assert_eq!(status, 202);
        let id = body.get("job").and_then(Json::as_int).unwrap() as u64;
        queue.wait(JobId(id));
        let (_, body) = routed(&queue, &get(&format!("/api/v0/jobs/{id}")));
        assert_eq!(body.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(body.get("reason").and_then(Json::as_str), Some("rejected"));
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("syntax")
        );
        queue.shutdown();
    }

    #[test]
    fn a_panicking_model_surfaces_as_an_engine_fault_row() {
        let queue = JobQueue::start(1);
        let (status, body) = routed(
            &queue,
            &post(
                "/api/v0/submit",
                r#"{"source": "int main(void) { int x = 1; return x; }", "models": ["panicking", "concrete"]}"#,
            ),
        );
        assert_eq!(status, 202);
        let id = body.get("job").and_then(Json::as_int).unwrap() as u64;
        queue.wait(JobId(id));
        let (_, body) = routed(&queue, &get(&format!("/api/v0/jobs/{id}")));
        assert_eq!(
            body.get("status").and_then(Json::as_str),
            Some("completed"),
            "a contained engine fault still completes the job"
        );
        let result = body.get("result").unwrap();
        let faulted = result
            .get("faulted_models")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(faulted.len(), 1);
        assert_eq!(faulted[0].as_str(), Some("panicking"));
        // And the service can keep serving afterwards.
        let (status, _) = routed(&queue, &get("/api/v0/stats"));
        assert_eq!(status, 200);
        queue.shutdown();
    }
}
