//! Hand-rolled HTTP/1.1 request parsing and response writing over
//! `std::net::TcpStream` — no async runtime, no TLS, no dependency: the
//! service speaks exactly the subset its API needs (one request per
//! connection, `Content-Length` bodies, `Connection: close`).
//!
//! Hostile inputs degrade to structured errors, never to panics or unbounded
//! buffering: the header block and the body are both size-capped, and a
//! malformed request line or header aborts the parse.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + header block.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on a request body (submitted C sources are small).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request path with any `?query` suffix stripped.
    pub path: String,
    /// Header (name, value) pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; [`error_status`] maps each case to the
/// HTTP status the server answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFailure {
    /// The peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// The request line or a header was malformed.
    Malformed(String),
    /// The header block exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// An I/O error (including read timeouts) while reading.
    Io(String),
}

/// The response status for a parse failure (closed connections get none).
pub fn error_status(failure: &ParseFailure) -> Option<(u16, &'static str)> {
    match failure {
        ParseFailure::ConnectionClosed => None,
        ParseFailure::Malformed(_) => Some((400, "Bad Request")),
        ParseFailure::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
        ParseFailure::BodyTooLarge => Some((413, "Content Too Large")),
        ParseFailure::Io(_) => Some((408, "Request Timeout")),
    }
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseFailure> {
    let (head, mut leftover) = read_head(stream)?;
    let text = String::from_utf8(head)
        .map_err(|_| ParseFailure::Malformed("non-UTF-8 header block".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseFailure::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseFailure::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseFailure::Malformed(format!(
                "malformed header line {line:?}"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let request = Request {
        method: method.to_owned(),
        path: target.split('?').next().unwrap_or(target).to_owned(),
        headers,
        body: Vec::new(),
    };
    let content_length = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| ParseFailure::Malformed(format!("bad content-length {text:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseFailure::BodyTooLarge);
    }
    let mut body = leftover.split_off(0);
    if body.len() > content_length {
        // Pipelined extra bytes: one request per connection, ignore them.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let wanted = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..wanted]) {
            Ok(0) => return Err(ParseFailure::ConnectionClosed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ParseFailure::Io(e.to_string())),
        }
    }
    Ok(Request { body, ..request })
}

/// Read until the `\r\n\r\n` head/body separator; returns the header block
/// (separator excluded) and any body bytes already read past it.
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), ParseFailure> {
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(split) = find_separator(&buffer) {
            let leftover = buffer.split_off(split + 4);
            buffer.truncate(split);
            return Ok((buffer, leftover));
        }
        if buffer.len() > MAX_HEADER_BYTES {
            return Err(ParseFailure::HeadersTooLarge);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buffer.is_empty() {
                    Err(ParseFailure::ConnectionClosed)
                } else {
                    Err(ParseFailure::Malformed("truncated request head".into()))
                }
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ParseFailure::Io(e.to_string())),
        }
    }
}

fn find_separator(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write one HTTP/1.1 response and flush. The connection is always marked
/// `Connection: close` (one request per connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feed raw bytes to `read_request` through a real loopback socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, ParseFailure> {
        let listener = match TcpListener::bind("127.0.0.1:0") {
            Ok(listener) => listener,
            Err(e) => {
                // Sandboxes without loopback cannot exercise socket parsing.
                eprintln!("skipping: cannot bind loopback: {e}");
                return Err(ParseFailure::ConnectionClosed);
            }
        };
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body_and_query_stripping() {
        let request = match parse_raw(
            b"POST /api/v0/submit?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        ) {
            Ok(request) => request,
            Err(ParseFailure::ConnectionClosed) => return, // loopback unavailable
            Err(other) => panic!("{other:?}"),
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/api/v0/submit");
        assert_eq!(request.header("content-length"), Some("4"));
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn rejects_malformed_requests_structurally() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            match parse_raw(raw) {
                Err(ParseFailure::Malformed(_)) => {}
                Err(ParseFailure::ConnectionClosed) => return, // loopback unavailable
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn caps_the_declared_body_size() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_raw(raw.as_bytes()) {
            Err(ParseFailure::BodyTooLarge) => {}
            Err(ParseFailure::ConnectionClosed) => {} // loopback unavailable
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn error_statuses_are_mapped() {
        assert_eq!(error_status(&ParseFailure::ConnectionClosed), None);
        assert_eq!(
            error_status(&ParseFailure::Malformed(String::new())).map(|(s, _)| s),
            Some(400)
        );
        assert_eq!(
            error_status(&ParseFailure::BodyTooLarge).map(|(s, _)| s),
            Some(413)
        );
        assert_eq!(reason_phrase(404), "Not Found");
    }
}
