//! `cerberus-serve` — run the UB-oracle HTTP service, or smoke-test a
//! running one.
//!
//! ```text
//! cerberus-serve [--addr HOST:PORT] [--workers N]   serve until interrupted
//! cerberus-serve --smoke HOST:PORT [--timeout-s N]  drive a live server once
//! ```

use std::time::Duration;

use cerberus_server::{client, serve, ServerConfig};

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("cerberus-serve: {message}");
            std::process::exit(1);
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:8080".to_owned();
    let mut config = ServerConfig::default();
    let mut smoke_target: Option<String> = None;
    let mut timeout = Duration::from_secs(60);

    let mut words = args.into_iter();
    while let Some(word) = words.next() {
        let mut value = |flag: &str| {
            words
                .next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match word.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--smoke" => smoke_target = Some(value("--smoke")?),
            "--timeout-s" => {
                timeout = Duration::from_secs(
                    value("--timeout-s")?
                        .parse::<u64>()
                        .map_err(|_| "--timeout-s needs an integer")?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: cerberus-serve [--addr HOST:PORT] [--workers N]\n       cerberus-serve --smoke HOST:PORT [--timeout-s N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    if let Some(target) = smoke_target {
        let transcript = client::smoke(&target, timeout).map_err(|e| e.to_string())?;
        print!("{transcript}");
        println!("smoke: ok");
        return Ok(());
    }

    let server = serve(&addr, config).map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    println!(
        "cerberus-serve: listening on {} ({} workers); POST /api/v0/submit",
        server.local_addr(),
        server.queue().worker_count()
    );
    // Serve until the process is killed; the accept loop runs on its own
    // thread, so just park this one.
    loop {
        std::thread::park();
    }
}
