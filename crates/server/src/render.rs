//! Rendering pipeline results as [`Json`] — the one place that decides the
//! wire shape of outcome matrices, front-end rejections, litmus suite
//! summaries and queue statistics. Both the HTTP routes and `reproduce
//! --json` go through these functions, so the CLI and the service emit the
//! same documents.

use crate::json::Json;
use cerberus::{CacheStats, OutcomeMatrix, PipelineError, PipelineErrorKind};
use cerberus_litmus::SuiteSummary;
use cerberus_queue::QueueStats;

// The per-execution wire shape lives in `cerberus-wire` (the litmus fixture
// expectation files are built from the same functions); re-exported here so
// the service keeps one renderer surface.
pub use cerberus_wire::outcome::{exec_result_to_json, program_outcome_to_json};

/// A §3-style outcome matrix: per-model rows plus the derived agreement
/// summary.
pub fn matrix_to_json(matrix: &OutcomeMatrix) -> Json {
    let rows = matrix
        .rows()
        .iter()
        .map(|row| {
            Json::obj([
                ("model", Json::str(row.model)),
                (
                    "outcomes",
                    Json::Arr(
                        row.outcome
                            .outcomes
                            .iter()
                            .map(program_outcome_to_json)
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let classes = matrix
        .agreement_classes()
        .iter()
        .map(|class| {
            Json::obj([
                (
                    "models",
                    Json::Arr(class.models.iter().map(|m| Json::str(*m)).collect()),
                ),
                ("faulted", Json::Bool(class.faulted)),
            ])
        })
        .collect();
    Json::obj([
        ("rows", Json::Arr(rows)),
        ("all_agree", Json::Bool(matrix.all_agree())),
        ("agreement_classes", Json::Arr(classes)),
        (
            "faulted_models",
            Json::Arr(
                matrix
                    .faulted_models()
                    .iter()
                    .map(|m| Json::str(*m))
                    .collect(),
            ),
        ),
    ])
}

/// A front-end rejection: the stage that rejected plus every diagnostic.
pub fn pipeline_error_to_json(error: &PipelineError) -> Json {
    let kind = match error.kind() {
        PipelineErrorKind::Syntax => "syntax",
        PipelineErrorKind::Constraint => "constraint",
    };
    let diagnostics = error
        .diagnostics()
        .iter()
        .map(|diagnostic| {
            Json::obj([
                ("message", Json::str(&diagnostic.message)),
                ("clause", Json::str(diagnostic.iso_clause)),
                ("line", Json::Int(i128::from(diagnostic.span.start.line))),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::str(kind)),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
}

/// One model's litmus-suite tallies (experiment E11/E17 shape).
pub fn suite_summary_to_json(summary: &SuiteSummary) -> Json {
    Json::obj([
        ("model", Json::str(summary.model)),
        ("flagged", Json::Int(summary.flagged as i128)),
        ("passed", Json::Int(summary.passed as i128)),
        ("as_expected", Json::Int(summary.as_expected as i128)),
        (
            "with_expectation",
            Json::Int(summary.with_expectation as i128),
        ),
        // The *names* of the fixtures that ran without a recorded
        // expectation, not just a count: an expectation hole should be
        // readable straight off the report.
        (
            "skipped_expectations",
            Json::Arr(summary.skipped_expectations.iter().map(Json::str).collect()),
        ),
        ("faulted", Json::Int(summary.faulted as i128)),
        ("total", Json::Int(summary.total as i128)),
    ])
}

fn cache_stats_to_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::Int(i128::from(stats.hits))),
        ("misses", Json::Int(i128::from(stats.misses))),
        ("entries", Json::Int(stats.entries as i128)),
        ("solver_hits", Json::Int(i128::from(stats.solver_hits))),
        ("solver_misses", Json::Int(i128::from(stats.solver_misses))),
    ])
}

/// The queue snapshot served by `GET /api/v0/stats`.
pub fn queue_stats_to_json(stats: &QueueStats) -> Json {
    let workers = stats
        .workers
        .iter()
        .map(|worker| {
            Json::obj([
                ("executed", Json::Int(i128::from(worker.executed))),
                ("stolen", Json::Int(i128::from(worker.stolen))),
            ])
        })
        .collect();
    Json::obj([
        ("depth", Json::Int(stats.depth as i128)),
        ("submitted", Json::Int(i128::from(stats.submitted))),
        ("completed", Json::Int(i128::from(stats.completed))),
        ("result_cache", cache_stats_to_json(&stats.result_cache)),
        (
            "elaboration_cache",
            cache_stats_to_json(&stats.elaboration_cache),
        ),
        ("workers", Json::Arr(workers)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus::{DifferentialRunner, Session};
    use cerberus_memory::ModelConfig;

    #[test]
    fn a_defined_program_renders_an_agreeing_matrix() {
        let program = Session::default()
            .elaborate("int main(void) { return 42; }")
            .unwrap();
        let matrix =
            DifferentialRunner::new(vec![ModelConfig::concrete(), ModelConfig::symbolic()])
                .run_sequential(&program);
        let json = matrix_to_json(&matrix);
        assert_eq!(json.get("all_agree"), Some(&Json::Bool(true)));
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].get("outcomes").and_then(Json::as_array).unwrap();
        assert_eq!(first[0].get("kind").and_then(Json::as_str), Some("return"));
        assert_eq!(first[0].get("value").and_then(Json::as_int), Some(42));
        // The document round-trips through the encoder/parser unchanged.
        assert_eq!(Json::parse(&json.encode()).unwrap(), json);
    }

    #[test]
    fn an_engine_fault_renders_as_a_tagged_row() {
        let program = Session::default()
            .elaborate("int main(void) { return 0; }")
            .unwrap();
        let matrix =
            DifferentialRunner::new(vec![ModelConfig::panicking()]).run_sequential(&program);
        let json = matrix_to_json(&matrix);
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        let outcome = &rows[0].get("outcomes").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            outcome.get("kind").and_then(Json::as_str),
            Some("engine-fault")
        );
        assert!(outcome.get("payload").is_some());
        let faulted = json.get("faulted_models").and_then(Json::as_array).unwrap();
        assert_eq!(faulted.len(), 1);
    }

    #[test]
    fn front_end_rejections_carry_structured_diagnostics() {
        let error = Session::default()
            .elaborate("int main(void) { return 1 +; }")
            .unwrap_err();
        let json = pipeline_error_to_json(&error);
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("syntax"));
        let diagnostics = json.get("diagnostics").and_then(Json::as_array).unwrap();
        assert!(!diagnostics.is_empty());
        assert!(diagnostics[0].get("message").is_some());
        assert!(diagnostics[0].get("line").is_some());
    }

    #[test]
    fn queue_stats_render_every_counter() {
        let queue = cerberus_queue::JobQueue::start(2);
        let id = queue.submit(cerberus_queue::Job::new(
            "int main(void) { return 1; }",
            vec![ModelConfig::concrete()],
        ));
        queue.wait(id);
        let json = queue_stats_to_json(&queue.stats());
        assert_eq!(json.get("submitted").and_then(Json::as_int), Some(1));
        assert_eq!(json.get("completed").and_then(Json::as_int), Some(1));
        assert!(json
            .get("result_cache")
            .and_then(|c| c.get("misses"))
            .is_some());
        assert_eq!(
            json.get("workers")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        queue.shutdown();
    }
}
