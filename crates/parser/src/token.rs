//! Lexical tokens of the supported C fragment (ISO C11 §6.4).

use std::fmt;

use cerberus_ast::loc::Span;

/// C keywords recognised by the lexer (the supported subset of 6.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Auto,
    Break,
    Case,
    Char,
    Const,
    Continue,
    Default,
    Do,
    Double,
    Else,
    Enum,
    Extern,
    Float,
    For,
    Goto,
    If,
    Inline,
    Int,
    Long,
    Register,
    Return,
    Short,
    Signed,
    Sizeof,
    Static,
    Struct,
    Switch,
    Typedef,
    Union,
    Unsigned,
    Void,
    While,
    Bool,
    Alignof,
}

impl Keyword {
    /// Look a keyword up by its source spelling.
    pub fn from_spelling(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "auto" => Auto,
            "break" => Break,
            "case" => Case,
            "char" => Char,
            "const" => Const,
            "continue" => Continue,
            "default" => Default,
            "do" => Do,
            "double" => Double,
            "else" => Else,
            "enum" => Enum,
            "extern" => Extern,
            "float" => Float,
            "for" => For,
            "goto" => Goto,
            "if" => If,
            "inline" => Inline,
            "int" => Int,
            "long" => Long,
            "register" => Register,
            "return" => Return,
            "short" => Short,
            "signed" => Signed,
            "sizeof" => Sizeof,
            "static" => Static,
            "struct" => Struct,
            "switch" => Switch,
            "typedef" => Typedef,
            "union" => Union,
            "unsigned" => Unsigned,
            "void" => Void,
            "while" => While,
            "_Bool" => Bool,
            "_Alignof" => Alignof,
            _ => return None,
        })
    }

    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Auto => "auto",
            Break => "break",
            Case => "case",
            Char => "char",
            Const => "const",
            Continue => "continue",
            Default => "default",
            Do => "do",
            Double => "double",
            Else => "else",
            Enum => "enum",
            Extern => "extern",
            Float => "float",
            For => "for",
            Goto => "goto",
            If => "if",
            Inline => "inline",
            Int => "int",
            Long => "long",
            Register => "register",
            Return => "return",
            Short => "short",
            Signed => "signed",
            Sizeof => "sizeof",
            Static => "static",
            Struct => "struct",
            Switch => "switch",
            Typedef => "typedef",
            Union => "union",
            Unsigned => "unsigned",
            Void => "void",
            While => "while",
            Bool => "_Bool",
            Alignof => "_Alignof",
        }
    }
}

/// Punctuators (6.4.6) of the supported fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LBracket,
    RBracket,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Dot,
    Arrow,
    PlusPlus,
    MinusMinus,
    Amp,
    Star,
    Plus,
    Minus,
    Tilde,
    Bang,
    Slash,
    Percent,
    LtLt,
    GtGt,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    Caret,
    Pipe,
    AmpAmp,
    PipePipe,
    Question,
    Colon,
    Semicolon,
    Ellipsis,
    Eq,
    StarEq,
    SlashEq,
    PercentEq,
    PlusEq,
    MinusEq,
    LtLtEq,
    GtGtEq,
    AmpEq,
    CaretEq,
    PipeEq,
    Comma,
}

impl Punct {
    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LBracket => "[",
            RBracket => "]",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            Dot => ".",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Star => "*",
            Plus => "+",
            Minus => "-",
            Tilde => "~",
            Bang => "!",
            Slash => "/",
            Percent => "%",
            LtLt => "<<",
            GtGt => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            BangEq => "!=",
            Caret => "^",
            Pipe => "|",
            AmpAmp => "&&",
            PipePipe => "||",
            Question => "?",
            Colon => ":",
            Semicolon => ";",
            Ellipsis => "...",
            Eq => "=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            PlusEq => "+=",
            MinusEq => "-=",
            LtLtEq => "<<=",
            GtGtEq => ">>=",
            AmpEq => "&=",
            CaretEq => "^=",
            PipeEq => "|=",
            Comma => ",",
        }
    }
}

/// Suffix of an integer constant (6.4.4.1), determining the candidate types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IntSuffix {
    /// `u` / `U` present.
    pub unsigned: bool,
    /// Number of `l`/`L`s present (0, 1 or 2).
    pub longs: u8,
}

/// The payload of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or typedef name (the parser disambiguates).
    Ident(String),
    /// A keyword.
    Keyword(Keyword),
    /// A punctuator.
    Punct(Punct),
    /// An integer constant with its suffix.
    IntConst(i128, IntSuffix),
    /// A floating constant (kept as text; no floating arithmetic supported).
    FloatConst(f64),
    /// A character constant, already mapped to its integer value.
    CharConst(i64),
    /// A string literal, with escapes already decoded (bytes, not UTF-8).
    StringLit(Vec<u8>),
    /// End of input.
    Eof,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Whether this token is the given punctuator.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self.kind, TokenKind::Punct(q) if q == p)
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(self.kind, TokenKind::Keyword(q) if q == k)
    }

    /// Whether this token is the end-of-file marker.
    pub fn is_eof(&self) -> bool {
        matches!(self.kind, TokenKind::Eof)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Punct(p) => write!(f, "{}", p.as_str()),
            TokenKind::IntConst(v, _) => write!(f, "{v}"),
            TokenKind::FloatConst(v) => write!(f, "{v}"),
            TokenKind::CharConst(v) => write!(f, "'\\x{v:02x}'"),
            TokenKind::StringLit(bytes) => write!(f, "{:?}", String::from_utf8_lossy(bytes)),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in ["int", "while", "_Bool", "sizeof", "typedef"] {
            let k = Keyword::from_spelling(kw).unwrap();
            assert_eq!(k.as_str(), kw);
        }
        assert_eq!(Keyword::from_spelling("integer"), None);
    }

    #[test]
    fn punct_spellings() {
        assert_eq!(Punct::LtLtEq.as_str(), "<<=");
        assert_eq!(Punct::Arrow.as_str(), "->");
        assert_eq!(Punct::Ellipsis.as_str(), "...");
    }

    #[test]
    fn token_predicates() {
        let t = Token {
            kind: TokenKind::Punct(Punct::Semicolon),
            span: Span::synthetic(),
        };
        assert!(t.is_punct(Punct::Semicolon));
        assert!(!t.is_punct(Punct::Comma));
        assert!(!t.is_keyword(Keyword::Int));
        assert!(!t.is_eof());
    }
}
