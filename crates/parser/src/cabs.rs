//! `Cabs`: the concrete-syntax-oriented C AST produced by the parser.
//!
//! Cabs "closely follows the ISO grammar" (§5.1): declarations keep their
//! specifier/declarator structure, expressions keep the operator tree the
//! programmer wrote, and no implicit conversions or typing information appear
//! yet — those are introduced by the Cabs-to-Ail desugaring and the type
//! checker in the `cerberus-ail` crate.

use cerberus_ast::ctype::Qualifiers;
use cerberus_ast::loc::Span;

use crate::token::IntSuffix;

/// A whole translation unit: a sequence of external declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// External declarations in source order.
    pub declarations: Vec<ExternalDeclaration>,
}

/// An external declaration (6.9).
// AST nodes are built once per parse and immediately consumed by the
// desugaring; the size skew between variants is not worth a Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExternalDeclaration {
    /// A function definition with a body.
    FunctionDefinition(FunctionDefinition),
    /// An object / typedef / tag declaration.
    Declaration(Declaration),
}

/// A function definition (6.9.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDefinition {
    /// Declaration specifiers (return type, storage class).
    pub specifiers: DeclSpecifiers,
    /// The declarator carrying the function name and parameter list.
    pub declarator: Declarator,
    /// The compound-statement body.
    pub body: Statement,
    /// Source span of the whole definition.
    pub span: Span,
}

/// A declaration (6.7): specifiers plus a list of init-declarators.
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Declaration specifiers.
    pub specifiers: DeclSpecifiers,
    /// The declared names with optional initialisers. May be empty for pure
    /// tag declarations such as `struct s { int x; };`.
    pub declarators: Vec<InitDeclarator>,
    /// Source span.
    pub span: Span,
}

/// A single declarator with an optional initialiser.
#[derive(Debug, Clone, PartialEq)]
pub struct InitDeclarator {
    /// The declarator.
    pub declarator: Declarator,
    /// The initialiser, if any.
    pub initializer: Option<Initializer>,
}

/// An initialiser (6.7.9): a single expression or a brace-enclosed list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`.
    Expr(Expr),
    /// `= { ... }` (designators are outside the supported fragment).
    List(Vec<Initializer>),
}

/// Storage-class specifiers (6.7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// `typedef` (syntactically a storage class).
    Typedef,
    /// `extern`.
    Extern,
    /// `static`.
    Static,
    /// `auto`.
    Auto,
    /// `register` (accepted and ignored, as the paper excludes its semantics).
    Register,
}

/// Collected declaration specifiers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeclSpecifiers {
    /// At most one storage class specifier (6.7.1p2).
    pub storage: Option<StorageClass>,
    /// Type qualifiers.
    pub qualifiers: Qualifiers,
    /// Type specifiers in source order (e.g. `unsigned`, `long`, `long`).
    pub type_specifiers: Vec<TypeSpecifier>,
    /// Whether `inline` appeared (accepted and ignored).
    pub inline: bool,
    /// Source span of the specifier sequence.
    pub span: Span,
}

/// Type specifiers (6.7.2), including struct/union/enum specifiers and
/// typedef names.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeSpecifier {
    /// `void`.
    Void,
    /// `char`.
    Char,
    /// `short`.
    Short,
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `signed`.
    Signed,
    /// `unsigned`.
    Unsigned,
    /// `_Bool`.
    Bool,
    /// A struct or union specifier.
    StructOrUnion(StructOrUnionSpecifier),
    /// An enum specifier.
    Enum(EnumSpecifier),
    /// A typedef name.
    TypedefName(String),
}

/// A struct or union specifier (6.7.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct StructOrUnionSpecifier {
    /// `true` for `union`, `false` for `struct`.
    pub is_union: bool,
    /// The tag, if named.
    pub name: Option<String>,
    /// The member declarations, if this specifier defines the type.
    pub members: Option<Vec<StructDeclaration>>,
}

/// One member declaration inside a struct/union specifier.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDeclaration {
    /// Specifier/qualifier list.
    pub specifiers: DeclSpecifiers,
    /// The member declarators (bitfields are unsupported).
    pub declarators: Vec<Declarator>,
}

/// An enum specifier (6.7.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EnumSpecifier {
    /// The tag, if named.
    pub name: Option<String>,
    /// The enumerators with optional explicit values, if this specifier
    /// defines the type.
    pub enumerators: Option<Vec<(String, Option<Expr>)>>,
}

/// A declarator (6.7.6), represented inside-out: the innermost constructor is
/// the declared identifier (or [`Declarator::Abstract`] for abstract
/// declarators), and each wrapper records one type derivation.
#[derive(Debug, Clone, PartialEq)]
pub enum Declarator {
    /// An abstract declarator with no identifier (used in type names and
    /// unnamed parameters).
    Abstract,
    /// The declared identifier.
    Ident(String, Span),
    /// `* declarator` with qualifiers on the pointer.
    Pointer(Qualifiers, Box<Declarator>),
    /// `declarator [ size ]`.
    Array(Box<Declarator>, Option<Box<Expr>>),
    /// `declarator ( parameters )` with a variadic flag.
    Function(Box<Declarator>, Vec<ParamDeclaration>, bool),
}

impl Declarator {
    /// The declared identifier, if any.
    pub fn name(&self) -> Option<&str> {
        match self {
            Declarator::Abstract => None,
            Declarator::Ident(name, _) => Some(name),
            Declarator::Pointer(_, inner)
            | Declarator::Array(inner, _)
            | Declarator::Function(inner, _, _) => inner.name(),
        }
    }

    /// Whether the outermost derivation (closest binding to the identifier,
    /// i.e. the first applied when reading the type) is a function.
    pub fn is_function_declarator(&self) -> bool {
        match self {
            Declarator::Function(inner, _, _) => {
                matches!(**inner, Declarator::Ident(..) | Declarator::Abstract)
            }
            Declarator::Pointer(_, inner) => inner.is_function_declarator(),
            _ => false,
        }
    }
}

/// A parameter declaration (6.7.6p1).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDeclaration {
    /// Parameter specifiers.
    pub specifiers: DeclSpecifiers,
    /// Parameter declarator (possibly abstract).
    pub declarator: Declarator,
}

/// A type name (6.7.7), used in casts, `sizeof`, and `_Alignof`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeName {
    /// Specifier/qualifier list.
    pub specifiers: DeclSpecifiers,
    /// Abstract declarator.
    pub declarator: Declarator,
}

/// Unary operators (6.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `&e`.
    AddressOf,
    /// `*e`.
    Deref,
    /// `+e`.
    Plus,
    /// `-e`.
    Minus,
    /// `~e`.
    BitNot,
    /// `!e`.
    LogicalNot,
}

/// Binary operators (6.5.5 – 6.5.14), also used as the op of compound
/// assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `^`.
    BitXor,
    /// `|`.
    BitOr,
    /// `&&`.
    LogicalAnd,
    /// `||`.
    LogicalOr,
}

/// Expressions (6.5), kept in source shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An identifier use.
    Ident(String, Span),
    /// An integer constant with its suffix.
    IntConst(i128, IntSuffix, Span),
    /// A character constant.
    CharConst(i64, Span),
    /// A floating constant (parsed but not evaluable).
    FloatConst(f64, Span),
    /// A string literal.
    StringLit(Vec<u8>, Span),
    /// `e.member`.
    Member(Box<Expr>, String, Span),
    /// `e->member`.
    MemberPtr(Box<Expr>, String, Span),
    /// `e[i]`.
    Index(Box<Expr>, Box<Expr>, Span),
    /// `f(args)`.
    Call(Box<Expr>, Vec<Expr>, Span),
    /// `e++`.
    PostIncr(Box<Expr>, Span),
    /// `e--`.
    PostDecr(Box<Expr>, Span),
    /// `++e`.
    PreIncr(Box<Expr>, Span),
    /// `--e`.
    PreDecr(Box<Expr>, Span),
    /// A unary operator application.
    Unary(UnaryOp, Box<Expr>, Span),
    /// `sizeof e`.
    SizeofExpr(Box<Expr>, Span),
    /// `sizeof(type)`.
    SizeofType(TypeName, Span),
    /// `_Alignof(type)`.
    AlignofType(TypeName, Span),
    /// `(type) e`.
    Cast(TypeName, Box<Expr>, Span),
    /// A binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>, Span),
    /// `c ? t : f`.
    Conditional(Box<Expr>, Box<Expr>, Box<Expr>, Span),
    /// `lhs = rhs` (op `None`) or `lhs op= rhs` (op `Some`).
    Assign(Option<BinaryOp>, Box<Expr>, Box<Expr>, Span),
    /// `a, b`.
    Comma(Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        use Expr::*;
        match self {
            Ident(_, s)
            | IntConst(_, _, s)
            | CharConst(_, s)
            | FloatConst(_, s)
            | StringLit(_, s)
            | Member(_, _, s)
            | MemberPtr(_, _, s)
            | Index(_, _, s)
            | Call(_, _, s)
            | PostIncr(_, s)
            | PostDecr(_, s)
            | PreIncr(_, s)
            | PreDecr(_, s)
            | Unary(_, _, s)
            | SizeofExpr(_, s)
            | SizeofType(_, s)
            | AlignofType(_, s)
            | Cast(_, _, s)
            | Binary(_, _, _, s)
            | Conditional(_, _, _, s)
            | Assign(_, _, _, s)
            | Comma(_, _, s) => *s,
        }
    }
}

/// The first clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// An expression clause.
    Expr(Expr),
    /// A declaration clause (C99-style `for (int i = 0; ...)`).
    Declaration(Declaration),
}

/// An item of a compound statement (6.8.2).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum BlockItem {
    /// A declaration.
    Declaration(Declaration),
    /// A statement.
    Statement(Statement),
}

/// Statements (6.8).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An expression statement; `None` is the null statement `;`.
    Expr(Option<Expr>, Span),
    /// `{ ... }`.
    Compound(Vec<BlockItem>, Span),
    /// `if (c) t` / `if (c) t else e`.
    If(Expr, Box<Statement>, Option<Box<Statement>>, Span),
    /// `while (c) body`.
    While(Expr, Box<Statement>, Span),
    /// `do body while (c);`.
    DoWhile(Box<Statement>, Expr, Span),
    /// `for (init; cond; step) body`.
    For(
        Option<ForInit>,
        Option<Expr>,
        Option<Expr>,
        Box<Statement>,
        Span,
    ),
    /// `switch (e) body`.
    Switch(Expr, Box<Statement>, Span),
    /// `case e: stmt`.
    Case(Expr, Box<Statement>, Span),
    /// `default: stmt`.
    Default(Box<Statement>, Span),
    /// `break;`.
    Break(Span),
    /// `continue;`.
    Continue(Span),
    /// `return;` / `return e;`.
    Return(Option<Expr>, Span),
    /// `goto label;`.
    Goto(String, Span),
    /// `label: stmt`.
    Labeled(String, Box<Statement>, Span),
}

impl Statement {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        use Statement::*;
        match self {
            Expr(_, s)
            | Compound(_, s)
            | If(_, _, _, s)
            | While(_, _, s)
            | DoWhile(_, _, s)
            | For(_, _, _, _, s)
            | Switch(_, _, s)
            | Case(_, _, s)
            | Default(_, s)
            | Break(s)
            | Continue(s)
            | Return(_, s)
            | Goto(_, s)
            | Labeled(_, _, s) => *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarator_name_digs_through_derivations() {
        let d = Declarator::Pointer(
            Qualifiers::none(),
            Box::new(Declarator::Array(
                Box::new(Declarator::Ident("xs".into(), Span::synthetic())),
                None,
            )),
        );
        assert_eq!(d.name(), Some("xs"));
        assert_eq!(Declarator::Abstract.name(), None);
    }

    #[test]
    fn function_declarator_detection() {
        let f = Declarator::Function(
            Box::new(Declarator::Ident("main".into(), Span::synthetic())),
            vec![],
            false,
        );
        assert!(f.is_function_declarator());
        // `int *f(void)` — a function returning a pointer — parses as a
        // pointer wrapped around a function declarator and is still a
        // function declaration.
        let returns_pointer = Declarator::Pointer(Qualifiers::none(), Box::new(f));
        assert!(returns_pointer.is_function_declarator());
        // `int (*f)(void)` — an object of function-pointer type — is not.
        let fn_pointer_object = Declarator::Function(
            Box::new(Declarator::Pointer(
                Qualifiers::none(),
                Box::new(Declarator::Ident("f".into(), Span::synthetic())),
            )),
            vec![],
            false,
        );
        assert!(!fn_pointer_object.is_function_declarator());
        assert!(!Declarator::Ident("x".into(), Span::synthetic()).is_function_declarator());
    }

    #[test]
    fn expr_spans_are_preserved() {
        let sp = Span::synthetic();
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::IntConst(1, IntSuffix::default(), sp)),
            Box::new(Expr::IntConst(2, IntSuffix::default(), sp)),
            sp,
        );
        assert_eq!(e.span(), sp);
    }
}
