//! The lexer: preprocessed source text to a token stream (ISO C11 §6.4).

use cerberus_ast::loc::{Loc, Span};

use crate::token::{IntSuffix, Keyword, Punct, Token, TokenKind};

/// A lexical error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub loc: Loc,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lexical error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    loc: Loc,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            loc: Loc::start(),
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        self.loc.advance(c);
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            loc: self.loc,
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn lex_ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match Keyword::from_spelling(&word) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(word),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some('e') | Some('E'))
                && matches!(self.peek2(), Some(c) if c.is_ascii_digit() || c == '+' || c == '-')
            {
                is_float = true;
                self.bump();
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let digits: String = self.chars[start..self.pos].iter().collect();

        if is_float {
            let v: f64 = digits
                .parse()
                .map_err(|_| self.error(format!("malformed floating constant {digits}")))?;
            return Ok(TokenKind::FloatConst(v));
        }

        // Suffix.
        let mut suffix = IntSuffix::default();
        loop {
            match self.peek() {
                Some('u') | Some('U') if !suffix.unsigned => {
                    suffix.unsigned = true;
                    self.bump();
                }
                Some('l') | Some('L') if suffix.longs < 2 => {
                    suffix.longs += 1;
                    self.bump();
                }
                _ => break,
            }
        }

        let value = if let Some(hex) = digits
            .strip_prefix("0x")
            .or_else(|| digits.strip_prefix("0X"))
        {
            i128::from_str_radix(hex, 16)
        } else if digits.len() > 1 && digits.starts_with('0') {
            i128::from_str_radix(&digits[1..], 8)
        } else {
            digits.parse()
        }
        .map_err(|_| self.error(format!("malformed integer constant {digits}")))?;

        Ok(TokenKind::IntConst(value, suffix))
    }

    fn lex_escape(&mut self) -> Result<u8, LexError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("unterminated escape sequence"))?;
        Ok(match c {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '\'' => b'\'',
            '"' => b'"',
            'a' => 0x07,
            'b' => 0x08,
            'f' => 0x0c,
            'v' => 0x0b,
            'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while let Some(digit) = self.peek().and_then(|c| c.to_digit(16)) {
                    any = true;
                    v = v * 16 + digit;
                    self.bump();
                }
                if !any {
                    return Err(self.error("\\x escape with no hex digits"));
                }
                (v & 0xff) as u8
            }
            other => match other.to_digit(8) {
                // Octal escape, up to three digits. `to_digit(8)` rejects the
                // digits 8 and 9, so \8 and \9 are diagnosed below instead of
                // being mis-read (or aborting) as octal.
                Some(first) => {
                    let mut v = first;
                    for _ in 0..2 {
                        match self.peek().and_then(|c| c.to_digit(8)) {
                            Some(digit) => {
                                v = v * 8 + digit;
                                self.bump();
                            }
                            None => break,
                        }
                    }
                    (v & 0xff) as u8
                }
                None => return Err(self.error(format!("unknown escape sequence \\{other}"))),
            },
        })
    }

    fn lex_char_const(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated character constant"))?;
        let value = if c == '\\' {
            self.bump();
            i64::from(self.lex_escape()?)
        } else {
            self.bump();
            c as i64
        };
        if self.peek() != Some('\'') {
            return Err(self.error("multi-character constants are not supported"));
        }
        self.bump();
        Ok(TokenKind::CharConst(value))
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some('"') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    bytes.push(self.lex_escape()?);
                }
                Some(c) => {
                    self.bump();
                    let mut buf = [0u8; 4];
                    bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                }
            }
        }
        Ok(TokenKind::StringLit(bytes))
    }

    fn lex_punct(&mut self) -> Result<TokenKind, LexError> {
        use Punct::*;
        let c = self
            .peek()
            .ok_or_else(|| self.error("unexpected end of input"))?;
        let c2 = self.peek2();
        let c3 = self.peek3();
        let (p, len) = match (c, c2, c3) {
            ('.', Some('.'), Some('.')) => (Ellipsis, 3),
            ('<', Some('<'), Some('=')) => (LtLtEq, 3),
            ('>', Some('>'), Some('=')) => (GtGtEq, 3),
            ('-', Some('>'), _) => (Arrow, 2),
            ('+', Some('+'), _) => (PlusPlus, 2),
            ('-', Some('-'), _) => (MinusMinus, 2),
            ('<', Some('<'), _) => (LtLt, 2),
            ('>', Some('>'), _) => (GtGt, 2),
            ('<', Some('='), _) => (Le, 2),
            ('>', Some('='), _) => (Ge, 2),
            ('=', Some('='), _) => (EqEq, 2),
            ('!', Some('='), _) => (BangEq, 2),
            ('&', Some('&'), _) => (AmpAmp, 2),
            ('|', Some('|'), _) => (PipePipe, 2),
            ('*', Some('='), _) => (StarEq, 2),
            ('/', Some('='), _) => (SlashEq, 2),
            ('%', Some('='), _) => (PercentEq, 2),
            ('+', Some('='), _) => (PlusEq, 2),
            ('-', Some('='), _) => (MinusEq, 2),
            ('&', Some('='), _) => (AmpEq, 2),
            ('^', Some('='), _) => (CaretEq, 2),
            ('|', Some('='), _) => (PipeEq, 2),
            ('[', _, _) => (LBracket, 1),
            (']', _, _) => (RBracket, 1),
            ('(', _, _) => (LParen, 1),
            (')', _, _) => (RParen, 1),
            ('{', _, _) => (LBrace, 1),
            ('}', _, _) => (RBrace, 1),
            ('.', _, _) => (Dot, 1),
            ('&', _, _) => (Amp, 1),
            ('*', _, _) => (Star, 1),
            ('+', _, _) => (Plus, 1),
            ('-', _, _) => (Minus, 1),
            ('~', _, _) => (Tilde, 1),
            ('!', _, _) => (Bang, 1),
            ('/', _, _) => (Slash, 1),
            ('%', _, _) => (Percent, 1),
            ('<', _, _) => (Lt, 1),
            ('>', _, _) => (Gt, 1),
            ('^', _, _) => (Caret, 1),
            ('|', _, _) => (Pipe, 1),
            ('?', _, _) => (Question, 1),
            (':', _, _) => (Colon, 1),
            (';', _, _) => (Semicolon, 1),
            ('=', _, _) => (Eq, 1),
            (',', _, _) => (Comma, 1),
            other => return Err(self.error(format!("unexpected character {:?}", other.0))),
        };
        for _ in 0..len {
            self.bump();
        }
        Ok(TokenKind::Punct(p))
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_whitespace();
        let start = self.loc;
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(c) if c.is_ascii_alphabetic() || c == '_' => self.lex_ident_or_keyword(),
            Some(c) if c.is_ascii_digit() => self.lex_number()?,
            Some('\'') => self.lex_char_const()?,
            Some('"') => self.lex_string()?,
            Some(_) => self.lex_punct()?,
        };
        Ok(Token {
            kind,
            span: Span::new(start, self.loc),
        })
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::with_capacity(self.src.len() / 4);
        loop {
            let tok = self.next_token()?;
            let done = tok.is_eof();
            tokens.push(tok);
            if done {
                return Ok(tokens);
            }
        }
    }
}

/// Lex preprocessed source text into a token stream ending with an EOF token.
///
/// # Errors
///
/// Returns a [`LexError`] for malformed constants, unterminated literals, or
/// characters outside the C basic source character set.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    // Adjacent string literals concatenate (translation phase 6).
    let mut tokens = Lexer::new(src).run()?;
    let mut i = 0;
    while i + 1 < tokens.len() {
        let merge = matches!(
            (&tokens[i].kind, &tokens[i + 1].kind),
            (TokenKind::StringLit(_), TokenKind::StringLit(_))
        );
        if merge {
            let second = tokens.remove(i + 1);
            let second_span = second.span;
            if let (TokenKind::StringLit(a), TokenKind::StringLit(b)) =
                (&mut tokens[i].kind, second.kind)
            {
                a.extend_from_slice(&b);
            }
            tokens[i].span = tokens[i].span.merge(second_span);
        } else {
            i += 1;
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        let ks = kinds("int main");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Int));
        assert_eq!(ks[1], TokenKind::Ident("main".into()));
        assert_eq!(ks[2], TokenKind::Eof);
    }

    #[test]
    fn integer_constants_with_bases_and_suffixes() {
        let ks = kinds("42 0x2a 052 3u 7ul 9ll");
        assert!(matches!(ks[0], TokenKind::IntConst(42, _)));
        assert!(matches!(ks[1], TokenKind::IntConst(42, _)));
        assert!(matches!(ks[2], TokenKind::IntConst(42, _)));
        assert!(matches!(
            ks[3],
            TokenKind::IntConst(
                3,
                IntSuffix {
                    unsigned: true,
                    longs: 0
                }
            )
        ));
        assert!(matches!(
            ks[4],
            TokenKind::IntConst(
                7,
                IntSuffix {
                    unsigned: true,
                    longs: 1
                }
            )
        ));
        assert!(matches!(
            ks[5],
            TokenKind::IntConst(
                9,
                IntSuffix {
                    unsigned: false,
                    longs: 2
                }
            )
        ));
    }

    #[test]
    fn char_constants_and_escapes() {
        let ks = kinds(r"'a' '\n' '\x41' '\0'");
        assert_eq!(ks[0], TokenKind::CharConst(97));
        assert_eq!(ks[1], TokenKind::CharConst(10));
        assert_eq!(ks[2], TokenKind::CharConst(65));
        assert_eq!(ks[3], TokenKind::CharConst(0));
    }

    #[test]
    fn string_literals_decode_escapes_and_concatenate() {
        let ks = kinds(r#""ab\n" "cd""#);
        assert_eq!(ks[0], TokenKind::StringLit(b"ab\ncd".to_vec()));
    }

    #[test]
    fn punctuators_longest_match() {
        let ks = kinds("a <<= b >> c -> d ... e");
        assert!(ks.contains(&TokenKind::Punct(Punct::LtLtEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::GtGt)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Arrow)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ellipsis)));
    }

    #[test]
    fn float_constants_lex() {
        let ks = kinds("1.5 2e3");
        assert!(matches!(ks[0], TokenKind::FloatConst(v) if (v - 1.5).abs() < 1e-9));
        assert!(matches!(ks[1], TokenKind::FloatConst(v) if (v - 2000.0).abs() < 1e-9));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("int\nx;").unwrap();
        assert_eq!(toks[1].span.start.line, 2);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("int $x;").is_err());
        assert!(lex("char c = 'ab';").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn malformed_escapes_are_errors_not_aborts() {
        // \8 and \9 are not octal digits: a structured error, not a panic.
        assert!(lex(r"char c = '\8';").is_err());
        assert!(lex(r#"char *s = "\9";"#).is_err());
        // Valid octal escapes still decode, up to three digits.
        let ks = kinds(r"'\101' '\7'");
        assert_eq!(ks[0], TokenKind::CharConst(0o101));
        assert_eq!(ks[1], TokenKind::CharConst(7));
        // A string ending in a backslash is unterminated, not an abort.
        assert!(lex("\"ab\\").is_err());
    }

    #[test]
    fn member_access_vs_ellipsis() {
        let ks = kinds("s.x");
        assert_eq!(ks[1], TokenKind::Punct(Punct::Dot));
    }
}
