//! Clean-slate C front end: lexer and parser producing the `Cabs` AST.
//!
//! The paper's Cerberus front end "comprises a clean-slate C parser (closely
//! following the grammar of the standard), desugaring phase, and type checker"
//! so that no semantic choices are inherited from a compiler front end (§5.1).
//! This crate provides the first stage: translation phases 1–7 for the
//! supported fragment (comment removal, line splicing, a minimal preprocessor
//! for object-like `#define`s and known `#include`s) and a recursive-descent
//! parser for the ISO C11 grammar restricted to the supported fragment,
//! producing the concrete-syntax-oriented [`cabs`] AST.
//!
//! # Example
//!
//! ```
//! use cerberus_parser::parse_translation_unit;
//!
//! let tu = parse_translation_unit("int main(void) { return 0; }").unwrap();
//! assert_eq!(tu.declarations.len(), 1);
//! ```

pub mod cabs;
pub mod lexer;
pub mod parser;
pub mod preprocess;
pub mod token;

pub use cabs::TranslationUnit;
pub use lexer::{lex, LexError};
pub use parser::{parse_translation_unit, ParseError};
pub use token::{Keyword, Punct, Token, TokenKind};
