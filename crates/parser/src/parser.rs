//! Recursive-descent parser for the supported ISO C11 fragment.
//!
//! The grammar followed is that of ISO C11 §6.5–§6.9 restricted to the
//! supported fragment; the parser keeps a scope stack of `typedef` names (the
//! classical lexer-feedback device) so that declaration/expression ambiguity
//! is resolved exactly as the standard's grammar requires.

use std::collections::HashSet;

use cerberus_ast::ctype::Qualifiers;
use cerberus_ast::loc::{Loc, Span};

use crate::cabs::*;
use crate::lexer::lex;
use crate::preprocess::preprocess;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// A syntax error: message and source span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    typedef_scopes: Vec<HashSet<String>>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            typedef_scopes: vec![HashSet::new()],
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn error<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            span: self.span(),
        })
    }

    fn expect_punct(&mut self, p: Punct) -> PResult<Span> {
        if self.peek().is_punct(p) {
            Ok(self.bump().span)
        } else {
            self.error(format!(
                "expected `{}`, found `{}`",
                p.as_str(),
                self.peek().kind
            ))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> PResult<Span> {
        if self.peek().is_keyword(k) {
            Ok(self.bump().span)
        } else {
            self.error(format!(
                "expected `{}`, found `{}`",
                k.as_str(),
                self.peek().kind
            ))
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Ok((name, span))
            }
            other => self.error(format!("expected identifier, found `{other}`")),
        }
    }

    // ----- typedef scope tracking ---------------------------------------

    fn push_scope(&mut self) {
        self.typedef_scopes.push(HashSet::new());
    }

    fn pop_scope(&mut self) {
        self.typedef_scopes.pop();
    }

    fn add_typedef(&mut self, name: &str) {
        if let Some(scope) = self.typedef_scopes.last_mut() {
            scope.insert(name.to_owned());
        }
    }

    fn is_typedef_name(&self, name: &str) -> bool {
        self.typedef_scopes.iter().rev().any(|s| s.contains(name))
    }

    // ----- specifier recognition -----------------------------------------

    fn token_starts_declaration(&self, n: usize) -> bool {
        match &self.peek_at(n).kind {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Bool
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Const
                    | Keyword::Typedef
                    | Keyword::Extern
                    | Keyword::Static
                    | Keyword::Auto
                    | Keyword::Register
                    | Keyword::Inline
            ),
            TokenKind::Ident(name) => self.is_typedef_name(name),
            _ => false,
        }
    }

    fn starts_declaration(&self) -> bool {
        self.token_starts_declaration(0)
    }

    fn starts_type_name(&self) -> bool {
        // Type names exclude storage classes but for cast disambiguation the
        // specifier set is the same minus storage classes; storage classes in
        // a cast would be a syntax error anyway.
        self.starts_declaration()
    }

    fn parse_decl_specifiers(&mut self) -> PResult<DeclSpecifiers> {
        let start = self.span();
        let mut specs = DeclSpecifiers {
            span: start,
            ..DeclSpecifiers::default()
        };
        loop {
            match &self.peek().kind {
                TokenKind::Keyword(k) => match k {
                    Keyword::Typedef
                    | Keyword::Extern
                    | Keyword::Static
                    | Keyword::Auto
                    | Keyword::Register => {
                        let sc = match k {
                            Keyword::Typedef => StorageClass::Typedef,
                            Keyword::Extern => StorageClass::Extern,
                            Keyword::Static => StorageClass::Static,
                            Keyword::Auto => StorageClass::Auto,
                            _ => StorageClass::Register,
                        };
                        if specs.storage.is_some() {
                            return self.error("multiple storage class specifiers");
                        }
                        specs.storage = Some(sc);
                        self.bump();
                    }
                    Keyword::Const => {
                        specs.qualifiers = specs.qualifiers.merge(Qualifiers::const_());
                        self.bump();
                    }
                    Keyword::Inline => {
                        specs.inline = true;
                        self.bump();
                    }
                    Keyword::Void => {
                        specs.type_specifiers.push(TypeSpecifier::Void);
                        self.bump();
                    }
                    Keyword::Char => {
                        specs.type_specifiers.push(TypeSpecifier::Char);
                        self.bump();
                    }
                    Keyword::Short => {
                        specs.type_specifiers.push(TypeSpecifier::Short);
                        self.bump();
                    }
                    Keyword::Int => {
                        specs.type_specifiers.push(TypeSpecifier::Int);
                        self.bump();
                    }
                    Keyword::Long => {
                        specs.type_specifiers.push(TypeSpecifier::Long);
                        self.bump();
                    }
                    Keyword::Float => {
                        specs.type_specifiers.push(TypeSpecifier::Float);
                        self.bump();
                    }
                    Keyword::Double => {
                        specs.type_specifiers.push(TypeSpecifier::Double);
                        self.bump();
                    }
                    Keyword::Signed => {
                        specs.type_specifiers.push(TypeSpecifier::Signed);
                        self.bump();
                    }
                    Keyword::Unsigned => {
                        specs.type_specifiers.push(TypeSpecifier::Unsigned);
                        self.bump();
                    }
                    Keyword::Bool => {
                        specs.type_specifiers.push(TypeSpecifier::Bool);
                        self.bump();
                    }
                    Keyword::Struct | Keyword::Union => {
                        let sou = self.parse_struct_or_union_specifier()?;
                        specs
                            .type_specifiers
                            .push(TypeSpecifier::StructOrUnion(sou));
                    }
                    Keyword::Enum => {
                        let e = self.parse_enum_specifier()?;
                        specs.type_specifiers.push(TypeSpecifier::Enum(e));
                    }
                    _ => break,
                },
                TokenKind::Ident(name)
                    if specs.type_specifiers.is_empty() && self.is_typedef_name(name) =>
                {
                    specs
                        .type_specifiers
                        .push(TypeSpecifier::TypedefName(name.clone()));
                    self.bump();
                }
                _ => break,
            }
        }
        specs.span = start.merge(self.span());
        if specs.type_specifiers.is_empty() && specs.storage.is_none() && !specs.qualifiers.constant
        {
            return self.error("expected declaration specifiers");
        }
        Ok(specs)
    }

    fn parse_struct_or_union_specifier(&mut self) -> PResult<StructOrUnionSpecifier> {
        let is_union = self.peek().is_keyword(Keyword::Union);
        self.bump();
        let name = match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                self.bump();
                Some(n)
            }
            _ => None,
        };
        let members = if self.eat_punct(Punct::LBrace) {
            let mut members = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) {
                members.push(self.parse_struct_declaration()?);
            }
            self.expect_punct(Punct::RBrace)?;
            Some(members)
        } else {
            None
        };
        if name.is_none() && members.is_none() {
            return self.error("struct/union specifier needs a tag or a member list");
        }
        Ok(StructOrUnionSpecifier {
            is_union,
            name,
            members,
        })
    }

    fn parse_struct_declaration(&mut self) -> PResult<StructDeclaration> {
        let specifiers = self.parse_decl_specifiers()?;
        let mut declarators = Vec::new();
        if !self.peek().is_punct(Punct::Semicolon) {
            loop {
                declarators.push(self.parse_declarator()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::Semicolon)?;
        Ok(StructDeclaration {
            specifiers,
            declarators,
        })
    }

    fn parse_enum_specifier(&mut self) -> PResult<EnumSpecifier> {
        self.expect_keyword(Keyword::Enum)?;
        let name = match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                self.bump();
                Some(n)
            }
            _ => None,
        };
        let enumerators = if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) {
                let (ename, _) = self.expect_ident()?;
                let value = if self.eat_punct(Punct::Eq) {
                    Some(self.parse_conditional_expr()?)
                } else {
                    None
                };
                items.push((ename, value));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Some(items)
        } else {
            None
        };
        if name.is_none() && enumerators.is_none() {
            return self.error("enum specifier needs a tag or an enumerator list");
        }
        Ok(EnumSpecifier { name, enumerators })
    }

    // ----- declarators ----------------------------------------------------

    fn parse_declarator(&mut self) -> PResult<Declarator> {
        if self.eat_punct(Punct::Star) {
            let mut quals = Qualifiers::none();
            while self.peek().is_keyword(Keyword::Const) {
                quals = quals.merge(Qualifiers::const_());
                self.bump();
            }
            let inner = self.parse_declarator()?;
            return Ok(Declarator::Pointer(quals, Box::new(inner)));
        }
        self.parse_direct_declarator()
    }

    fn parse_direct_declarator(&mut self) -> PResult<Declarator> {
        let mut decl = match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Declarator::Ident(name, span)
            }
            TokenKind::Punct(Punct::LParen) if self.paren_opens_nested_declarator() => {
                self.bump();
                let inner = self.parse_declarator()?;
                self.expect_punct(Punct::RParen)?;
                inner
            }
            _ => Declarator::Abstract,
        };
        loop {
            if self.eat_punct(Punct::LBracket) {
                let size = if self.peek().is_punct(Punct::RBracket) {
                    None
                } else {
                    Some(Box::new(self.parse_assignment_expr()?))
                };
                self.expect_punct(Punct::RBracket)?;
                decl = Declarator::Array(Box::new(decl), size);
            } else if self.peek().is_punct(Punct::LParen) && self.paren_opens_parameter_list() {
                self.bump();
                let (params, variadic) = self.parse_parameter_list()?;
                self.expect_punct(Punct::RParen)?;
                decl = Declarator::Function(Box::new(decl), params, variadic);
            } else {
                break;
            }
        }
        Ok(decl)
    }

    /// Inside a direct declarator, a `(` begins a nested declarator when the
    /// next token is `*`, an identifier that is not a typedef name, or another
    /// `(`; otherwise it begins a parameter list (of an abstract function
    /// declarator).
    fn paren_opens_nested_declarator(&self) -> bool {
        match &self.peek_at(1).kind {
            TokenKind::Punct(Punct::Star) | TokenKind::Punct(Punct::LParen) => true,
            TokenKind::Ident(name) => !self.is_typedef_name(name),
            _ => false,
        }
    }

    /// A `(` following a direct declarator begins a parameter list when it is
    /// empty, starts with `void`/specifiers, or is `...` (it cannot be a
    /// nested declarator at suffix position).
    fn paren_opens_parameter_list(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(Punct::LParen))
    }

    fn parse_parameter_list(&mut self) -> PResult<(Vec<ParamDeclaration>, bool)> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.peek().is_punct(Punct::RParen) {
            return Ok((params, variadic));
        }
        // `(void)` means "no parameters".
        if self.peek().is_keyword(Keyword::Void) && self.peek_at(1).is_punct(Punct::RParen) {
            self.bump();
            return Ok((params, variadic));
        }
        loop {
            if self.peek().is_punct(Punct::Ellipsis) {
                self.bump();
                variadic = true;
                break;
            }
            let specifiers = self.parse_decl_specifiers()?;
            let declarator =
                if self.peek().is_punct(Punct::Comma) || self.peek().is_punct(Punct::RParen) {
                    Declarator::Abstract
                } else {
                    self.parse_declarator()?
                };
            params.push(ParamDeclaration {
                specifiers,
                declarator,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok((params, variadic))
    }

    fn parse_type_name(&mut self) -> PResult<TypeName> {
        let specifiers = self.parse_decl_specifiers()?;
        let declarator = if self.peek().is_punct(Punct::RParen) {
            Declarator::Abstract
        } else {
            self.parse_declarator()?
        };
        Ok(TypeName {
            specifiers,
            declarator,
        })
    }

    // ----- declarations ----------------------------------------------------

    fn parse_initializer(&mut self) -> PResult<Initializer> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) {
                items.push(self.parse_initializer()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.parse_assignment_expr()?))
        }
    }

    fn parse_declaration(&mut self) -> PResult<Declaration> {
        let start = self.span();
        let specifiers = self.parse_decl_specifiers()?;
        let mut declarators = Vec::new();
        if !self.peek().is_punct(Punct::Semicolon) {
            loop {
                let declarator = self.parse_declarator()?;
                if declarator.name().is_none() {
                    return self.error("expected an identifier in this declarator");
                }
                if specifiers.storage == Some(StorageClass::Typedef) {
                    if let Some(name) = declarator.name() {
                        self.add_typedef(name);
                    }
                }
                let initializer = if self.eat_punct(Punct::Eq) {
                    Some(self.parse_initializer()?)
                } else {
                    None
                };
                declarators.push(InitDeclarator {
                    declarator,
                    initializer,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        let end = self.expect_punct(Punct::Semicolon)?;
        Ok(Declaration {
            specifiers,
            declarators,
            span: start.merge(end),
        })
    }

    fn parse_external_declaration(&mut self) -> PResult<ExternalDeclaration> {
        let start = self.span();
        let specifiers = self.parse_decl_specifiers()?;
        if self.peek().is_punct(Punct::Semicolon) {
            let end = self.bump().span;
            return Ok(ExternalDeclaration::Declaration(Declaration {
                specifiers,
                declarators: Vec::new(),
                span: start.merge(end),
            }));
        }
        let first = self.parse_declarator()?;
        if first.name().is_none() {
            return self.error("expected an identifier in this declarator");
        }
        if specifiers.storage == Some(StorageClass::Typedef) {
            if let Some(name) = first.name() {
                self.add_typedef(name);
            }
        }
        if first.is_function_declarator() && self.peek().is_punct(Punct::LBrace) {
            let body = self.parse_compound_statement()?;
            let span = start.merge(body.span());
            return Ok(ExternalDeclaration::FunctionDefinition(
                FunctionDefinition {
                    specifiers,
                    declarator: first,
                    body,
                    span,
                },
            ));
        }
        // Otherwise, an ordinary declaration; the first declarator may have an
        // initialiser and further declarators may follow.
        let mut declarators = Vec::new();
        let initializer = if self.eat_punct(Punct::Eq) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        declarators.push(InitDeclarator {
            declarator: first,
            initializer,
        });
        while self.eat_punct(Punct::Comma) {
            let declarator = self.parse_declarator()?;
            if specifiers.storage == Some(StorageClass::Typedef) {
                if let Some(name) = declarator.name() {
                    self.add_typedef(name);
                }
            }
            let initializer = if self.eat_punct(Punct::Eq) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            declarators.push(InitDeclarator {
                declarator,
                initializer,
            });
        }
        let end = self.expect_punct(Punct::Semicolon)?;
        Ok(ExternalDeclaration::Declaration(Declaration {
            specifiers,
            declarators,
            span: start.merge(end),
        }))
    }

    // ----- statements -------------------------------------------------------

    fn parse_compound_statement(&mut self) -> PResult<Statement> {
        let start = self.expect_punct(Punct::LBrace)?;
        self.push_scope();
        let mut items = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            if self.peek().is_eof() {
                self.pop_scope();
                return self.error("unterminated compound statement");
            }
            if self.starts_declaration() {
                items.push(BlockItem::Declaration(self.parse_declaration()?));
            } else {
                items.push(BlockItem::Statement(self.parse_statement()?));
            }
        }
        let end = self.expect_punct(Punct::RBrace)?;
        self.pop_scope();
        Ok(Statement::Compound(items, start.merge(end)))
    }

    fn parse_statement(&mut self) -> PResult<Statement> {
        let start = self.span();
        match &self.peek().kind {
            TokenKind::Punct(Punct::LBrace) => self.parse_compound_statement(),
            TokenKind::Punct(Punct::Semicolon) => {
                let end = self.bump().span;
                Ok(Statement::Expr(None, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_statement()?);
                let els = if self.peek().is_keyword(Keyword::Else) {
                    self.bump();
                    Some(Box::new(self.parse_statement()?))
                } else {
                    None
                };
                let span = start.merge(self.span());
                Ok(Statement::If(cond, then, els, span))
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_statement()?);
                Ok(Statement::While(cond, body, start.merge(self.span())))
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_statement()?);
                self.expect_keyword(Keyword::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::DoWhile(body, cond, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.peek().is_punct(Punct::Semicolon) {
                    self.bump();
                    None
                } else if self.starts_declaration() {
                    Some(ForInit::Declaration(self.parse_declaration()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Some(ForInit::Expr(e))
                };
                let cond = if self.peek().is_punct(Punct::Semicolon) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semicolon)?;
                let step = if self.peek().is_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_statement()?);
                Ok(Statement::For(
                    init,
                    cond,
                    step,
                    body,
                    start.merge(self.span()),
                ))
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrutinee = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_statement()?);
                Ok(Statement::Switch(scrutinee, body, start.merge(self.span())))
            }
            TokenKind::Keyword(Keyword::Case) => {
                self.bump();
                let value = self.parse_conditional_expr()?;
                self.expect_punct(Punct::Colon)?;
                let stmt = Box::new(self.parse_statement()?);
                Ok(Statement::Case(value, stmt, start.merge(self.span())))
            }
            TokenKind::Keyword(Keyword::Default) => {
                self.bump();
                self.expect_punct(Punct::Colon)?;
                let stmt = Box::new(self.parse_statement()?);
                Ok(Statement::Default(stmt, start.merge(self.span())))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::Break(start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::Continue(start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek().is_punct(Punct::Semicolon) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::Return(value, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Goto) => {
                self.bump();
                let (label, _) = self.expect_ident()?;
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::Goto(label, start.merge(end)))
            }
            TokenKind::Ident(name) if self.peek_at(1).is_punct(Punct::Colon) => {
                let label = name.clone();
                self.bump();
                self.bump();
                let stmt = Box::new(self.parse_statement()?);
                Ok(Statement::Labeled(label, stmt, start.merge(self.span())))
            }
            _ => {
                let e = self.parse_expr()?;
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Statement::Expr(Some(e), start.merge(end)))
            }
        }
    }

    // ----- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        let mut e = self.parse_assignment_expr()?;
        while self.peek().is_punct(Punct::Comma) {
            let span = self.bump().span;
            let rhs = self.parse_assignment_expr()?;
            let full = e.span().merge(rhs.span()).merge(span);
            e = Expr::Comma(Box::new(e), Box::new(rhs), full);
        }
        Ok(e)
    }

    fn parse_assignment_expr(&mut self) -> PResult<Expr> {
        let lhs = self.parse_conditional_expr()?;
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Eq) => Some(None),
            TokenKind::Punct(Punct::StarEq) => Some(Some(BinaryOp::Mul)),
            TokenKind::Punct(Punct::SlashEq) => Some(Some(BinaryOp::Div)),
            TokenKind::Punct(Punct::PercentEq) => Some(Some(BinaryOp::Mod)),
            TokenKind::Punct(Punct::PlusEq) => Some(Some(BinaryOp::Add)),
            TokenKind::Punct(Punct::MinusEq) => Some(Some(BinaryOp::Sub)),
            TokenKind::Punct(Punct::LtLtEq) => Some(Some(BinaryOp::Shl)),
            TokenKind::Punct(Punct::GtGtEq) => Some(Some(BinaryOp::Shr)),
            TokenKind::Punct(Punct::AmpEq) => Some(Some(BinaryOp::BitAnd)),
            TokenKind::Punct(Punct::CaretEq) => Some(Some(BinaryOp::BitXor)),
            TokenKind::Punct(Punct::PipeEq) => Some(Some(BinaryOp::BitOr)),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.parse_assignment_expr()?;
                let span = lhs.span().merge(rhs.span());
                Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs), span))
            }
            None => Ok(lhs),
        }
    }

    fn parse_conditional_expr(&mut self) -> PResult<Expr> {
        let cond = self.parse_binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.parse_conditional_expr()?;
            let span = cond.span().merge(els.span());
            Ok(Expr::Conditional(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_op_at(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        let (op, prec) = match &self.peek().kind {
            TokenKind::Punct(Punct::PipePipe) => (LogicalOr, 1),
            TokenKind::Punct(Punct::AmpAmp) => (LogicalAnd, 2),
            TokenKind::Punct(Punct::Pipe) => (BitOr, 3),
            TokenKind::Punct(Punct::Caret) => (BitXor, 4),
            TokenKind::Punct(Punct::Amp) => (BitAnd, 5),
            TokenKind::Punct(Punct::EqEq) => (Eq, 6),
            TokenKind::Punct(Punct::BangEq) => (Ne, 6),
            TokenKind::Punct(Punct::Lt) => (Lt, 7),
            TokenKind::Punct(Punct::Gt) => (Gt, 7),
            TokenKind::Punct(Punct::Le) => (Le, 7),
            TokenKind::Punct(Punct::Ge) => (Ge, 7),
            TokenKind::Punct(Punct::LtLt) => (Shl, 8),
            TokenKind::Punct(Punct::GtGt) => (Shr, 8),
            TokenKind::Punct(Punct::Plus) => (Add, 9),
            TokenKind::Punct(Punct::Minus) => (Sub, 9),
            TokenKind::Punct(Punct::Star) => (Mul, 10),
            TokenKind::Punct(Punct::Slash) => (Div, 10),
            TokenKind::Punct(Punct::Percent) => (Mod, 10),
            _ => return None,
        };
        if prec >= min_prec {
            Some((op, prec))
        } else {
            None
        }
    }

    fn parse_binary_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.parse_cast_expr()?;
        while let Some((op, prec)) = self.binary_op_at(min_prec) {
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn parse_cast_expr(&mut self) -> PResult<Expr> {
        if self.peek().is_punct(Punct::LParen) {
            // `(type) cast-expression` vs parenthesised expression.
            let save = self.pos;
            self.bump();
            if self.starts_type_name() {
                let ty = self.parse_type_name()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.parse_cast_expr()?;
                let span = operand.span();
                return Ok(Expr::Cast(ty, Box::new(operand), span));
            }
            self.pos = save;
        }
        self.parse_unary_expr()
    }

    fn parse_unary_expr(&mut self) -> PResult<Expr> {
        let start = self.span();
        match &self.peek().kind {
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.parse_unary_expr()?;
                let span = start.merge(e.span());
                Ok(Expr::PreIncr(Box::new(e), span))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.parse_unary_expr()?;
                let span = start.merge(e.span());
                Ok(Expr::PreDecr(Box::new(e), span))
            }
            TokenKind::Punct(Punct::Amp) => self.parse_prefix_unary(UnaryOp::AddressOf, start),
            TokenKind::Punct(Punct::Star) => self.parse_prefix_unary(UnaryOp::Deref, start),
            TokenKind::Punct(Punct::Plus) => self.parse_prefix_unary(UnaryOp::Plus, start),
            TokenKind::Punct(Punct::Minus) => self.parse_prefix_unary(UnaryOp::Minus, start),
            TokenKind::Punct(Punct::Tilde) => self.parse_prefix_unary(UnaryOp::BitNot, start),
            TokenKind::Punct(Punct::Bang) => self.parse_prefix_unary(UnaryOp::LogicalNot, start),
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.peek().is_punct(Punct::LParen) && {
                    let save = self.pos;
                    self.bump();
                    let is_ty = self.starts_type_name();
                    self.pos = save;
                    is_ty
                } {
                    self.bump();
                    let ty = self.parse_type_name()?;
                    let end = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::SizeofType(ty, start.merge(end)))
                } else {
                    let e = self.parse_unary_expr()?;
                    let span = start.merge(e.span());
                    Ok(Expr::SizeofExpr(Box::new(e), span))
                }
            }
            TokenKind::Keyword(Keyword::Alignof) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let ty = self.parse_type_name()?;
                let end = self.expect_punct(Punct::RParen)?;
                Ok(Expr::AlignofType(ty, start.merge(end)))
            }
            _ => self.parse_postfix_expr(),
        }
    }

    fn parse_prefix_unary(&mut self, op: UnaryOp, start: Span) -> PResult<Expr> {
        self.bump();
        let e = self.parse_cast_expr()?;
        let span = start.merge(e.span());
        Ok(Expr::Unary(op, Box::new(e), span))
    }

    fn parse_postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary_expr()?;
        loop {
            let start = e.span();
            match &self.peek().kind {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(index), start.merge(end));
                }
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assignment_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen)?;
                    e = Expr::Call(Box::new(e), args, start.merge(end));
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (name, end) = self.expect_ident()?;
                    e = Expr::Member(Box::new(e), name, start.merge(end));
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (name, end) = self.expect_ident()?;
                    e = Expr::MemberPtr(Box::new(e), name, start.merge(end));
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    let end = self.bump().span;
                    e = Expr::PostIncr(Box::new(e), start.merge(end));
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    let end = self.bump().span;
                    e = Expr::PostDecr(Box::new(e), start.merge(end));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary_expr(&mut self) -> PResult<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name, tok.span))
            }
            TokenKind::IntConst(v, suffix) => {
                self.bump();
                Ok(Expr::IntConst(v, suffix, tok.span))
            }
            TokenKind::CharConst(v) => {
                self.bump();
                Ok(Expr::CharConst(v, tok.span))
            }
            TokenKind::FloatConst(v) => {
                self.bump();
                Ok(Expr::FloatConst(v, tok.span))
            }
            TokenKind::StringLit(bytes) => {
                self.bump();
                Ok(Expr::StringLit(bytes, tok.span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => self.error(format!("expected expression, found `{other}`")),
        }
    }

    fn parse_translation_unit(&mut self) -> PResult<TranslationUnit> {
        let mut tu = TranslationUnit::default();
        while !self.peek().is_eof() {
            tu.declarations.push(self.parse_external_declaration()?);
        }
        Ok(tu)
    }
}

/// Preprocess, lex and parse a complete translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first preprocessing, lexical or
/// syntax error encountered.
pub fn parse_translation_unit(src: &str) -> PResult<TranslationUnit> {
    let preprocessed = preprocess(src).map_err(|e| ParseError {
        message: e.message,
        span: Span::point(Loc::new(e.line, 1, 0)),
    })?;
    let tokens = lex(&preprocessed).map_err(|e| ParseError {
        message: e.message,
        span: Span::point(e.loc),
    })?;
    Parser::new(tokens).parse_translation_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> TranslationUnit {
        parse_translation_unit(src).unwrap()
    }

    #[test]
    fn minimal_main() {
        let tu = parse("int main(void) { return 0; }");
        assert_eq!(tu.declarations.len(), 1);
        assert!(matches!(
            tu.declarations[0],
            ExternalDeclaration::FunctionDefinition(_)
        ));
    }

    #[test]
    fn globals_and_prototypes() {
        let tu = parse("int x = 1; extern int y; void f(int a, char *b);");
        assert_eq!(tu.declarations.len(), 3);
        assert!(tu
            .declarations
            .iter()
            .all(|d| matches!(d, ExternalDeclaration::Declaration(_))));
    }

    #[test]
    fn declarator_shapes() {
        let tu = parse("int *a[3]; int (*f)(void); char **argv;");
        assert_eq!(tu.declarations.len(), 3);
    }

    #[test]
    fn struct_union_enum_definitions() {
        let tu = parse(
            "struct point { int x; int y; };\n\
             union u { int i; char c[4]; };\n\
             enum colour { RED, GREEN = 5, BLUE };\n\
             struct point origin;",
        );
        assert_eq!(tu.declarations.len(), 4);
    }

    #[test]
    fn typedef_names_feed_back_into_the_grammar() {
        let tu = parse("typedef unsigned long size_t2; size_t2 n = 3; int f(size_t2 m);");
        assert_eq!(tu.declarations.len(), 3);
    }

    #[test]
    fn expression_precedence_shapes() {
        let tu = parse("int x = 1 + 2 * 3;");
        let ExternalDeclaration::Declaration(d) = &tu.declarations[0] else {
            panic!("expected a declaration, got {:?}", tu.declarations[0])
        };
        let Some(Initializer::Expr(Expr::Binary(BinaryOp::Add, _, rhs, _))) =
            &d.declarators[0].initializer
        else {
            panic!("expected + at the top");
        };
        assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _, _)));
    }

    #[test]
    fn casts_and_sizeof() {
        parse("int main(void) { int x = (int)3u; unsigned long n = sizeof(int); unsigned long m = sizeof x; return 0; }");
    }

    #[test]
    fn cast_vs_parenthesised_expression() {
        let tu = parse("int y; int x = (y) + 1;");
        let ExternalDeclaration::Declaration(d) = &tu.declarations[1] else {
            panic!("expected a declaration, got {:?}", tu.declarations[1])
        };
        assert!(matches!(
            d.declarators[0].initializer,
            Some(Initializer::Expr(Expr::Binary(BinaryOp::Add, _, _, _)))
        ));
    }

    #[test]
    fn statements_parse() {
        parse(
            "int main(void) {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < 10; i++) { acc += i; }\n\
               while (acc > 5) acc--;\n\
               do { acc++; } while (acc < 3);\n\
               switch (acc) { case 1: acc = 2; break; default: acc = 0; }\n\
               if (acc) return acc; else return 1;\n\
             }",
        );
    }

    #[test]
    fn goto_and_labels() {
        parse("int main(void) { int x = 0; goto l; x = 1; l: return x; }");
    }

    #[test]
    fn pointer_expressions() {
        parse("int main(void) { int x = 1; int *p = &x; *p = 2; int **pp = &p; return **pp; }");
    }

    #[test]
    fn member_access_and_calls() {
        parse(
            "struct s { int a; struct s *next; };\n\
             int get(struct s *p) { return p->next->a + (*p).a; }",
        );
    }

    #[test]
    fn string_literals_and_printf() {
        parse("#include <stdio.h>\nint main(void) { printf(\"x=%d\\n\", 42); return 0; }");
    }

    #[test]
    fn aggregate_initialisers() {
        parse("int a[3] = {1, 2, 3}; struct p { int x; int y; }; struct p q = { 4, 5 };");
    }

    #[test]
    fn conditional_and_comma() {
        parse("int main(void) { int a = 1, b = 2; int c = a ? b : (a, 3); return c; }");
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_translation_unit("int main(void) { return 0 }").is_err());
        assert!(parse_translation_unit("int = 3;").is_err());
        assert!(parse_translation_unit("int main(void) { int x = ; }").is_err());
    }

    #[test]
    fn provenance_basic_global_yx_parses() {
        // The paper's §2.1 example (adapted from DR260).
        parse(
            "#include <stdio.h>\n\
             #include <string.h>\n\
             int y=2, x=1;\n\
             int main() {\n\
               int *p = &x + 1;\n\
               int *q = &y;\n\
               printf(\"Addresses: p=%p q=%p\\n\",(void*)p,(void*)q);\n\
               if (memcmp(&p, &q, sizeof(p)) == 0) {\n\
                 *p = 11;\n\
                 printf(\"x=%d y=%d *p=%d *q=%d\\n\",x,y,*p,*q);\n\
               }\n\
               return 0;\n\
             }",
        );
    }

    #[test]
    fn old_style_parameterless_main_parses() {
        let tu = parse("int main() { return 0; }");
        assert!(matches!(
            tu.declarations[0],
            ExternalDeclaration::FunctionDefinition(_)
        ));
    }

    #[test]
    fn unsigned_long_long_specifiers() {
        parse("unsigned long long big = 18446744073709551615ull;");
    }
}
