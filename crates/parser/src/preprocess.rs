//! A minimal preprocessor covering the directives the test suite and the
//! generator use.
//!
//! The paper assumes "conventional C preprocessing" happens before the
//! Cerberus front end. We implement only what the supported fragment needs:
//!
//! * comment removal (translation phase 3),
//! * backslash-newline splicing (phase 2),
//! * `#include <...>` / `#include "..."` of the *known builtin headers*
//!   (`stdio.h`, `stdlib.h`, `string.h`, `stddef.h`, `stdint.h`, `assert.h`,
//!   `limits.h`), which expand to nothing because their declarations are
//!   provided as builtins by the execution environment,
//! * object-like `#define NAME replacement` macros with textual substitution,
//! * `#ifdef` / `#ifndef` / `#else` / `#endif` over defined names.
//!
//! Anything else (function-like macros, `#if` expressions) is rejected so that
//! silent misinterpretation cannot occur.

use std::collections::HashMap;

/// Errors produced by the preprocessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessError {
    /// Explanation of what was not supported or malformed.
    pub message: String,
    /// 1-based line of the offending directive.
    pub line: u32,
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "preprocessor error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for PreprocessError {}

/// Headers whose contents are provided as builtins by the evaluator, so their
/// inclusion expands to nothing.
pub const KNOWN_HEADERS: &[&str] = &[
    "stdio.h",
    "stdlib.h",
    "string.h",
    "stddef.h",
    "stdint.h",
    "stdbool.h",
    "assert.h",
    "limits.h",
    "inttypes.h",
];

/// Strip `//` and `/* */` comments, replacing them with a single space
/// (translation phase 3). String and character literals are respected.
pub fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '"' | '\'' => {
                let quote = c;
                out.push(c);
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    out.push(d);
                    i += 1;
                    if d == '\\' && i < bytes.len() {
                        out.push(bytes[i] as char);
                        i += 1;
                    } else if d == quote {
                        break;
                    }
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.push(' ');
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    // Preserve newlines so line numbers stay meaningful.
                    if bytes[i] == b'\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
                out.push(' ');
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Splice backslash-newline sequences (translation phase 2).
pub fn splice_lines(src: &str) -> String {
    src.replace("\\\r\n", "").replace("\\\n", "")
}

fn substitute_macros(line: &str, macros: &HashMap<String, String>) -> String {
    if macros.is_empty() {
        return line.to_owned();
    }
    let mut out = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' || c == '\'' {
            // Copy literals verbatim.
            let quote = c;
            out.push(c);
            i += 1;
            while i < chars.len() {
                out.push(chars[i]);
                if chars[i] == '\\' && i + 1 < chars.len() {
                    out.push(chars[i + 1]);
                    i += 2;
                    continue;
                }
                let done = chars[i] == quote;
                i += 1;
                if done {
                    break;
                }
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            match macros.get(&word) {
                Some(replacement) => out.push_str(replacement),
                None => out.push_str(&word),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Run the minimal preprocessor over a translation unit, returning plain C
/// text ready for the lexer.
///
/// # Errors
///
/// Returns [`PreprocessError`] for unsupported directives (function-like
/// macros, `#if` expressions, unknown headers) and unbalanced conditionals.
pub fn preprocess(src: &str) -> Result<String, PreprocessError> {
    let src = strip_comments(&splice_lines(src));
    let mut macros: HashMap<String, String> = HashMap::new();
    // Stack of bools: is the current conditional region active?
    let mut active_stack: Vec<bool> = Vec::new();
    let mut out = String::with_capacity(src.len());

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let trimmed = raw_line.trim_start();
        let active = active_stack.iter().all(|&a| a);
        if let Some(directive) = trimmed.strip_prefix('#') {
            let directive = directive.trim_start();
            let (name, rest) = match directive.find(char::is_whitespace) {
                Some(pos) => (&directive[..pos], directive[pos..].trim()),
                None => (directive, ""),
            };
            match name {
                "include" => {
                    if !active {
                        out.push('\n');
                        continue;
                    }
                    let header = rest
                        .trim()
                        .trim_start_matches(['<', '"'])
                        .trim_end_matches(['>', '"'])
                        .to_owned();
                    if !KNOWN_HEADERS.contains(&header.as_str()) {
                        return Err(PreprocessError {
                            message: format!("unknown header <{header}>"),
                            line: line_no,
                        });
                    }
                }
                "define" => {
                    if active {
                        let mut parts = rest.splitn(2, char::is_whitespace);
                        let name = parts.next().unwrap_or("").to_owned();
                        if name.is_empty() {
                            return Err(PreprocessError {
                                message: "empty #define".into(),
                                line: line_no,
                            });
                        }
                        if name.contains('(') {
                            return Err(PreprocessError {
                                message: format!("function-like macro {name} is not supported"),
                                line: line_no,
                            });
                        }
                        let body = parts.next().unwrap_or("").trim().to_owned();
                        macros.insert(name, body);
                    }
                }
                "undef" => {
                    if active {
                        macros.remove(rest.trim());
                    }
                }
                "ifdef" => active_stack.push(macros.contains_key(rest.trim())),
                "ifndef" => active_stack.push(!macros.contains_key(rest.trim())),
                "else" => match active_stack.last_mut() {
                    Some(top) => *top = !*top,
                    None => {
                        return Err(PreprocessError {
                            message: "#else without matching #ifdef".into(),
                            line: line_no,
                        })
                    }
                },
                "endif" => {
                    if active_stack.pop().is_none() {
                        return Err(PreprocessError {
                            message: "#endif without matching #ifdef".into(),
                            line: line_no,
                        });
                    }
                }
                other => {
                    return Err(PreprocessError {
                        message: format!("unsupported preprocessor directive #{other}"),
                        line: line_no,
                    })
                }
            }
            out.push('\n');
        } else if active {
            out.push_str(&substitute_macros(raw_line, &macros));
            out.push('\n');
        } else {
            out.push('\n');
        }
    }

    if !active_stack.is_empty() {
        return Err(PreprocessError {
            message: "unterminated #ifdef".into(),
            line: 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped() {
        let s = strip_comments("int x; // trailing\nint /* inline */ y;");
        assert!(s.contains("int x;"));
        assert!(!s.contains("trailing"));
        assert!(!s.contains("inline"));
        assert!(s.contains("int   y;"));
    }

    #[test]
    fn comments_inside_strings_are_kept() {
        let s = strip_comments("char *p = \"/* not a comment */\";");
        assert!(s.contains("/* not a comment */"));
    }

    #[test]
    fn known_includes_vanish() {
        let out = preprocess("#include <stdio.h>\nint main(void){return 0;}\n").unwrap();
        assert!(!out.contains("include"));
        assert!(out.contains("int main"));
    }

    #[test]
    fn unknown_includes_are_rejected() {
        assert!(preprocess("#include <windows.h>\n").is_err());
    }

    #[test]
    fn object_macros_substitute() {
        let out = preprocess("#define N 4\nint a[N];\n").unwrap();
        assert!(out.contains("int a[4];"));
    }

    #[test]
    fn macros_do_not_fire_inside_strings() {
        let out = preprocess("#define N 4\nchar *s = \"N\";\n").unwrap();
        assert!(out.contains("\"N\""));
    }

    #[test]
    fn ifdef_selects_branches() {
        let src = "#define FOO 1\n#ifdef FOO\nint a;\n#else\nint b;\n#endif\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int a;"));
        assert!(!out.contains("int b;"));
    }

    #[test]
    fn ifndef_and_undef() {
        let src = "#define FOO 1\n#undef FOO\n#ifndef FOO\nint a;\n#endif\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int a;"));
    }

    #[test]
    fn function_like_macros_rejected() {
        assert!(preprocess("#define MAX(a,b) ((a)>(b)?(a):(b))\n").is_err());
    }

    #[test]
    fn line_splicing() {
        assert_eq!(splice_lines("a\\\nb"), "ab");
    }

    #[test]
    fn unbalanced_conditionals_rejected() {
        assert!(preprocess("#ifdef FOO\nint a;\n").is_err());
        assert!(preprocess("#endif\n").is_err());
    }
}
