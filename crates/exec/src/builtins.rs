//! The builtin C library functions provided by the execution environment
//! (the "small parts of the standard libraries" the paper's Cerberus
//! supports, including `printf`).

use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_memory::model::MemoryModel;
use cerberus_memory::value::PointerValue;

use crate::eval::{Interp, Stop};
use crate::value::Value;

/// Call a builtin library function by name, if `name` is one. Returns `None`
/// when the name is not a builtin so the caller can dispatch to a defined C
/// function instead.
pub fn call_builtin<M: MemoryModel>(
    interp: &mut Interp<'_, M>,
    name: &str,
    args: &[Value],
) -> Option<Result<Value, Stop>> {
    match name {
        "printf" => Some(printf(interp, args)),
        "malloc" => Some(malloc(interp, args)),
        "calloc" => Some(calloc(interp, args)),
        "free" => Some(free(interp, args)),
        "memcpy" => Some(memcpy(interp, args)),
        "memcmp" => Some(memcmp(interp, args)),
        "memset" => Some(memset(interp, args)),
        "strlen" => Some(strlen(interp, args)),
        "strcmp" => Some(strcmp(interp, args)),
        "strcpy" => Some(strcpy(interp, args)),
        "abort" => Some(Err(Stop::Error("abort() called".into()))),
        "exit" => Some(Err(Stop::Exit(
            args.first().and_then(Value::as_int).unwrap_or(0),
        ))),
        "assert" => Some(assert_builtin(args)),
        _ => None,
    }
}

fn arg_int(args: &[Value], i: usize) -> i128 {
    args.get(i).and_then(Value::as_int).unwrap_or(0)
}

fn arg_ptr(args: &[Value], i: usize) -> Result<PointerValue, Stop> {
    args.get(i).and_then(Value::as_pointer).ok_or_else(|| {
        Stop::Error(format!(
            "library call expected a pointer argument at position {i}"
        ))
    })
}

fn specified_int(v: i128) -> Result<Value, Stop> {
    Ok(Value::specified_int(v))
}

fn specified_ptr(p: PointerValue) -> Result<Value, Stop> {
    Ok(Value::Specified(Box::new(Value::Pointer(p))))
}

fn assert_builtin(args: &[Value]) -> Result<Value, Stop> {
    if arg_int(args, 0) == 0 {
        Err(Stop::Error("assertion failed".into()))
    } else {
        Ok(Value::Specified(Box::new(Value::Unit)))
    }
}

fn malloc<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let size = arg_int(args, 0).max(0) as u64;
    let align = interp.mem.env().max_align;
    specified_ptr(interp.mem.alloc(size, align).map_err(Stop::from)?)
}

fn calloc<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let n = arg_int(args, 0).max(0) as u64;
    let size = arg_int(args, 1).max(0) as u64;
    let total = n.saturating_mul(size);
    let align = interp.mem.env().max_align;
    let ptr = interp.mem.alloc(total, align).map_err(Stop::from)?;
    interp.mem.set_bytes(&ptr, 0, total).map_err(Stop::from)?;
    specified_ptr(ptr)
}

fn free<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let ptr = args
        .first()
        .and_then(Value::as_pointer)
        .unwrap_or_else(PointerValue::null);
    interp.mem.kill(&ptr, true).map_err(Stop::from)?;
    Ok(Value::Specified(Box::new(Value::Unit)))
}

fn memcpy<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let dst = arg_ptr(args, 0)?;
    let src = arg_ptr(args, 1)?;
    let n = arg_int(args, 2).max(0) as u64;
    interp.mem.copy_bytes(&dst, &src, n).map_err(Stop::from)?;
    specified_ptr(dst)
}

fn memcmp<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let a = arg_ptr(args, 0)?;
    let b = arg_ptr(args, 1)?;
    let n = arg_int(args, 2).max(0) as u64;
    let r = interp.mem.compare_bytes(&a, &b, n).map_err(Stop::from)?;
    specified_int(i128::from(r))
}

fn memset<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let dst = arg_ptr(args, 0)?;
    let byte = (arg_int(args, 1) & 0xff) as u8;
    let n = arg_int(args, 2).max(0) as u64;
    interp.mem.set_bytes(&dst, byte, n).map_err(Stop::from)?;
    specified_ptr(dst)
}

fn strlen<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let p = arg_ptr(args, 0)?;
    let s = interp.mem.read_c_string(&p).map_err(Stop::from)?;
    specified_int(s.len() as i128)
}

fn strcmp<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let a = interp
        .mem
        .read_c_string(&arg_ptr(args, 0)?)
        .map_err(Stop::from)?;
    let b = interp
        .mem
        .read_c_string(&arg_ptr(args, 1)?)
        .map_err(Stop::from)?;
    specified_int(match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    })
}

fn strcpy<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let dst = arg_ptr(args, 0)?;
    let src = arg_ptr(args, 1)?;
    let bytes = interp.mem.read_c_string(&src).map_err(Stop::from)?;
    let n = bytes.len() as u64 + 1;
    interp.mem.copy_bytes(&dst, &src, n).map_err(Stop::from)?;
    specified_ptr(dst)
}

/// A subset of `printf` conversions sufficient for the test suite: `%d`,
/// `%i`, `%u`, `%ld`, `%lu`, `%lld`, `%llu`, `%zu`, `%x`, `%c`, `%s`, `%p`
/// and `%%`.
fn printf<M: MemoryModel>(interp: &mut Interp<'_, M>, args: &[Value]) -> Result<Value, Stop> {
    let fmt_ptr = arg_ptr(args, 0)?;
    let fmt = interp.mem.read_c_string(&fmt_ptr).map_err(Stop::from)?;
    let mut out: Vec<u8> = Vec::with_capacity(fmt.len());
    let mut arg_index = 1;
    let mut next_arg = |interp_args: &[Value]| -> Value {
        let v = interp_args.get(arg_index).cloned().unwrap_or(Value::Unit);
        arg_index += 1;
        v
    };
    let mut i = 0;
    while i < fmt.len() {
        let c = fmt[i];
        if c != b'%' {
            out.push(c);
            i += 1;
            continue;
        }
        // Parse (and ignore) length modifiers.
        let mut j = i + 1;
        while j < fmt.len() && matches!(fmt[j], b'l' | b'z' | b'h') {
            j += 1;
        }
        let conv = if j < fmt.len() { fmt[j] } else { b'%' };
        match conv {
            b'%' => out.push(b'%'),
            b'd' | b'i' => {
                let v = next_arg(args);
                out.extend_from_slice(value_as_signed_string(&v).as_bytes());
            }
            b'u' => {
                let v = next_arg(args);
                let n = v.as_int().unwrap_or(0);
                out.extend_from_slice(format!("{}", n as u64).as_bytes());
            }
            b'x' => {
                let v = next_arg(args);
                let n = v.as_int().unwrap_or(0);
                out.extend_from_slice(format!("{:x}", n as u64).as_bytes());
            }
            b'c' => {
                let v = next_arg(args);
                out.push((v.as_int().unwrap_or(0) & 0xff) as u8);
            }
            b's' => {
                let v = next_arg(args);
                match v.as_pointer() {
                    Some(p) => {
                        let s = interp.mem.read_c_string(&p).map_err(Stop::from)?;
                        out.extend_from_slice(&s);
                    }
                    None => out.extend_from_slice(b"(null)"),
                }
            }
            b'p' => {
                let v = next_arg(args);
                match v.as_pointer() {
                    Some(p) => out.extend_from_slice(format!("0x{:x}", p.addr).as_bytes()),
                    None => {
                        out.extend_from_slice(format!("0x{:x}", v.as_int().unwrap_or(0)).as_bytes())
                    }
                }
            }
            other => {
                out.push(b'%');
                out.push(other);
            }
        }
        i = j + 1;
    }
    let written = out.len() as i128;
    interp.stdout.extend_from_slice(&out);
    specified_int(written)
}

fn value_as_signed_string(v: &Value) -> String {
    match v.as_int() {
        Some(n) => n.to_string(),
        None => "?".to_owned(),
    }
}

/// The C types of the builtin allocation helpers, exposed for tests.
pub fn malloc_result_type() -> Ctype {
    Ctype::pointer(Ctype::Void)
}

/// The result type of `strlen`, exposed for tests.
pub fn strlen_result_type() -> Ctype {
    Ctype::integer(IntegerType::SizeT)
}
