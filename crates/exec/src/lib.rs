//! The Core operational semantics and execution drivers (§5.4, §5.6, §6).
//!
//! The evaluator executes elaborated [`cerberus_core::CoreProgram`]s against
//! any [`cerberus_memory::MemoryModel`] implementation — the executor is
//! generic over the paper's abstract memory object model interface (§5.9) and
//! never names a concrete engine. All the looseness of the C semantics is
//! routed through a single [`driver::ChoiceOracle`]: the order in which
//! `unseq` siblings are evaluated, and which `nd` branch is taken. "By
//! selecting an appropriate sequencing monad implementation, we can select
//! whether to perform an exhaustive search for all allowed executions or
//! pseudorandomly explore single execution paths" (§5.1) — here the
//! [`driver::Driver`] provides both modes: [`driver::Driver::run_random`] and
//! [`driver::Driver::run_exhaustive`].
//!
//! Undefined behaviour reached during execution (an `undef(...)` introduced by
//! the elaboration, or one detected by the memory object model) terminates the
//! execution and is reported with its ISO clause (§5.4); unsequenced races are
//! detected by comparing the footprints of `unseq` siblings (§5.6).

pub mod builtins;
pub mod driver;
pub mod eval;
pub mod value;

pub use driver::{ChoiceOracle, Driver, ExecMode, ProgramOutcome, RandomOracle};
pub use eval::{Interp, Stop};
pub use value::Value;
