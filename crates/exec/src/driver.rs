//! Execution drivers: pseudorandom single-path exploration and exhaustive
//! enumeration of all allowed behaviours (§5.1, §6).
//!
//! Every source of semantic looseness is routed through a [`ChoiceOracle`]:
//! the evaluation order of `unseq` siblings and the branch taken by `nd`. The
//! random driver samples one schedule; the exhaustive driver enumerates
//! choice sequences by depth-first search with replay, exactly the "test
//! oracle" usage of the paper (compute the set of all allowed behaviours of a
//! small test case).

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cerberus_ast::ub::UbKind;
use cerberus_core::program::CoreProgram;
use cerberus_memory::limits::{ResourceKind, ResourceLimits, TimeoutKind};
use cerberus_memory::model::MemoryModel;

use crate::eval::{Interp, Stop};

/// A source of scheduling/nondeterminism decisions.
pub trait ChoiceOracle {
    /// Choose one of `n` alternatives (`n >= 2`).
    fn choose(&mut self, n: usize) -> usize;
}

/// A pseudorandom oracle (single-path exploration).
#[derive(Debug)]
pub struct RandomOracle {
    rng: StdRng,
}

impl RandomOracle {
    /// A seeded random oracle.
    pub fn new(seed: u64) -> Self {
        RandomOracle {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ChoiceOracle for RandomOracle {
    fn choose(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// A replaying oracle used by the exhaustive driver: follows a forced prefix
/// of choices, takes the first alternative beyond it, and records every
/// decision point it encounters.
#[derive(Debug, Default)]
pub struct ReplayOracle {
    prefix: Vec<usize>,
    position: usize,
    /// `(chosen, arity)` for every decision point, in order.
    pub recorded: Vec<(usize, usize)>,
}

impl ReplayOracle {
    /// An oracle that replays `prefix` then defaults to the first choice.
    pub fn new(prefix: Vec<usize>) -> Self {
        ReplayOracle {
            prefix,
            position: 0,
            recorded: Vec::new(),
        }
    }
}

impl ChoiceOracle for ReplayOracle {
    fn choose(&mut self, n: usize) -> usize {
        let chosen = if self.position < self.prefix.len() {
            self.prefix[self.position].min(n - 1)
        } else {
            0
        };
        self.position += 1;
        self.recorded.push((chosen, n));
        chosen
    }
}

/// The final result of one execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecResult {
    /// `main` returned this value.
    Return(i128),
    /// The program called `exit`.
    Exit(i128),
    /// Undefined behaviour was detected (with its kind and explanation).
    Undef(UbKind, String),
    /// A dynamic error (unsupported construct, failed assertion, `abort`).
    Error(String),
    /// A time budget was exhausted: the deterministic step budget (treated as
    /// a timeout in §6's validation) or the wall-clock watchdog.
    Timeout(TimeoutKind),
    /// A [`ResourceLimits`] allocation/recursion budget was exhausted.
    ResourceExhausted(ResourceKind),
    /// The memory model panicked; the panic was contained by the harness and
    /// the payload captured. Produced only by fault-isolating runners (the
    /// differential and fuzz harnesses), never by [`Driver`] itself.
    EngineFault {
        /// The name of the model whose engine faulted.
        model: String,
        /// The panic payload, rendered as text.
        payload: String,
    },
}

impl ExecResult {
    /// Whether the execution reached undefined behaviour.
    pub fn is_undef(&self) -> bool {
        matches!(self, ExecResult::Undef(..))
    }

    /// The undefined behaviour kind, if any.
    pub fn ub_kind(&self) -> Option<UbKind> {
        match self {
            ExecResult::Undef(ub, _) => Some(*ub),
            _ => None,
        }
    }

    /// Whether the execution ended in a contained engine panic.
    pub fn is_fault(&self) -> bool {
        matches!(self, ExecResult::EngineFault { .. })
    }

    /// Whether the execution ran out of a budget (time or resource) rather
    /// than reaching a verdict about the program.
    pub fn is_budget_exhaustion(&self) -> bool {
        matches!(
            self,
            ExecResult::Timeout(_) | ExecResult::ResourceExhausted(_)
        )
    }
}

impl std::fmt::Display for ExecResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecResult::Return(v) => write!(f, "return {v}"),
            ExecResult::Exit(v) => write!(f, "exit({v})"),
            ExecResult::Undef(ub, detail) => write!(f, "undefined behaviour: {ub} ({detail})"),
            ExecResult::Error(msg) => write!(f, "error: {msg}"),
            ExecResult::Timeout(kind) => write!(f, "timeout ({kind})"),
            ExecResult::ResourceExhausted(kind) => write!(f, "resource exhausted ({kind})"),
            ExecResult::EngineFault { model, payload } => {
                write!(f, "engine fault in {model}: {payload}")
            }
        }
    }
}

/// The observable outcome of one execution: the result and everything the
/// program printed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProgramOutcome {
    /// How the execution ended.
    pub result: ExecResult,
    /// Captured standard output.
    pub stdout: String,
}

impl ProgramOutcome {
    /// Whether the execution reached undefined behaviour.
    pub fn is_undef(&self) -> bool {
        self.result.is_undef()
    }
}

/// The exploration mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Pseudorandomly explore a single execution path.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Exhaustively enumerate allowed executions, up to a bound.
    Exhaustive {
        /// Maximum number of executions to enumerate.
        max_executions: usize,
    },
}

/// An execution driver for one elaborated program under one memory model.
///
/// The driver is generic over the [`MemoryModel`] it links the Core
/// operational semantics against; it holds one configured model instance as
/// a prototype and obtains a pristine state per explored execution via
/// [`MemoryModel::fresh`]. The program is shared by `Arc`, so many drivers
/// (e.g. one per model in a differential run) can execute the same
/// elaborated artifact without copying it.
#[derive(Debug, Clone)]
pub struct Driver<M: MemoryModel> {
    program: Arc<CoreProgram>,
    model: M,
    limits: ResourceLimits,
}

impl<M: MemoryModel> Driver<M> {
    /// Build a driver executing `program` against `model`, with the default
    /// resource budget.
    pub fn new(program: Arc<CoreProgram>, model: M) -> Self {
        Driver {
            program,
            model,
            limits: ResourceLimits::default(),
        }
    }

    /// Override the step budget (used to emulate the §6 timeouts).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.limits.steps = limit;
        self
    }

    /// Override the whole resource budget (steps, wall clock, allocation
    /// bounds, call depth).
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The resource budget every execution runs under.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// The elaborated program.
    pub fn program(&self) -> &CoreProgram {
        &self.program
    }

    /// The memory model prototype this driver executes against.
    pub fn model(&self) -> &M {
        &self.model
    }

    fn run_with(&self, oracle: &mut dyn ChoiceOracle) -> ProgramOutcome {
        let mut mem = self.model.fresh();
        mem.set_limits(self.limits.clone());
        let mut interp = Interp::new(&self.program, mem, oracle, self.limits.clone());
        let result = (|| -> Result<i128, Stop> {
            interp.setup()?;
            if self.program.main.is_none() {
                return Err(Stop::Error("program has no main function".into()));
            }
            let ret = interp.call_named("main", Vec::new())?;
            Ok(ret.as_int().unwrap_or(0))
        })();
        let stdout = String::from_utf8_lossy(&interp.stdout).into_owned();
        let result = match result {
            Ok(v) => ExecResult::Return(v),
            Err(Stop::Exit(code)) => ExecResult::Exit(code),
            Err(Stop::Undef { ub, detail }) => ExecResult::Undef(ub, detail),
            Err(Stop::Error(msg)) => ExecResult::Error(msg),
            Err(Stop::Limit(kind)) => ExecResult::Timeout(kind),
            Err(Stop::Resource(kind)) => ExecResult::ResourceExhausted(kind),
        };
        ProgramOutcome { result, stdout }
    }

    /// Explore a single pseudorandom execution path.
    pub fn run_random(&self, seed: u64) -> ProgramOutcome {
        let mut oracle = RandomOracle::new(seed);
        self.run_with(&mut oracle)
    }

    /// Exhaustively enumerate the allowed executions (up to
    /// `max_executions`), returning the distinct observable outcomes.
    pub fn run_exhaustive(&self, max_executions: usize) -> Vec<ProgramOutcome> {
        let mut outcomes: BTreeSet<ProgramOutcome> = BTreeSet::new();
        // Breadth-first over choice prefixes so the earliest decision points
        // (which typically select among semantically different schedules) are
        // explored before deep combinations of later ones.
        let mut pending: VecDeque<Vec<usize>> = VecDeque::from([Vec::new()]);
        let mut seen_prefixes: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut executions = 0usize;
        while let Some(prefix) = pending.pop_front() {
            if executions >= max_executions {
                break;
            }
            executions += 1;
            let mut oracle = ReplayOracle::new(prefix.clone());
            let outcome = self.run_with(&mut oracle);
            let recorded = oracle.recorded;
            outcomes.insert(outcome);
            // Schedule unexplored alternatives at every decision point at or
            // beyond the forced prefix.
            for i in prefix.len()..recorded.len() {
                let (chosen, arity) = recorded[i];
                for alternative in (chosen + 1)..arity {
                    let mut new_prefix: Vec<usize> =
                        recorded[..i].iter().map(|(c, _)| *c).collect();
                    new_prefix.push(alternative);
                    if seen_prefixes.insert(new_prefix.clone()) {
                        pending.push_back(new_prefix);
                    }
                }
            }
        }
        outcomes.into_iter().collect()
    }

    /// Run according to the given mode, returning all distinct outcomes (a
    /// single one in random mode).
    pub fn run(&self, mode: ExecMode) -> Vec<ProgramOutcome> {
        match mode {
            ExecMode::Random { seed } => vec![self.run_random(seed)],
            ExecMode::Exhaustive { max_executions } => self.run_exhaustive(max_executions),
        }
    }
}

/// A convenience wrapper: the loaded integer value `main` returned, for tests
/// that only care about the exit status.
pub fn main_return_value(outcome: &ProgramOutcome) -> Option<i128> {
    match outcome.result {
        ExecResult::Return(v) | ExecResult::Exit(v) => Some(v),
        _ => None,
    }
}
