//! The Core interpreter: a structural operational semantics over Core
//! expressions, parameterised by the memory object model and a choice oracle.

use std::collections::HashMap;

use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_ast::ident::Ident;
use cerberus_ast::ub::UbKind;
use cerberus_core::program::CoreProgram;
use cerberus_core::syntax::{Binop, BuiltinFn, Expr, MemAction, PExpr, Pattern, PtrOp};
use cerberus_memory::limits::{ResourceKind, ResourceLimits, TimeoutKind};
use cerberus_memory::model::MemoryModel;
use cerberus_memory::state::{AllocKind, MemError, MemErrorKind};
use cerberus_memory::value::{IntegerValue, PointerValue};

use crate::builtins;
use crate::driver::ChoiceOracle;
use crate::value::Value;

/// A terminal, non-value outcome of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// Undefined behaviour was reached; the execution is terminated and the
    /// UB reported (§5.4).
    Undef {
        /// Which undefined behaviour.
        ub: UbKind,
        /// A human-readable explanation.
        detail: String,
    },
    /// A dynamic error outside the semantics (unsupported construct, failed
    /// `assert`, `abort`).
    Error(String),
    /// The program called `exit(code)`.
    Exit(i128),
    /// A time budget was exhausted: the deterministic step budget (used to
    /// bound exhaustive exploration and to detect non-termination in
    /// differential testing, §6) or the wall-clock watchdog.
    Limit(TimeoutKind),
    /// A [`ResourceLimits`] allocation/recursion budget was exhausted.
    Resource(ResourceKind),
}

impl From<MemError> for Stop {
    fn from(e: MemError) -> Self {
        match e.kind {
            MemErrorKind::Undef(ub) => Stop::Undef {
                ub,
                detail: e.detail,
            },
            MemErrorKind::Resource(kind) => Stop::Resource(kind),
        }
    }
}

/// Control flow produced by evaluating an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow {
    /// A value.
    Value(Value),
    /// A jump to a `save`/`exit` label (`run l`).
    Jump(Ident),
    /// A `return` from the current C function.
    Return(Value),
}

type EResult = Result<Flow, Stop>;
type Env = HashMap<String, Value>;

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u64,
    len: u64,
    write: bool,
    /// Whether the access came from a negative-polarity action (e.g. the
    /// store of a postfix increment), which weak sequencing does not order
    /// before subsequent actions (§5.6).
    negative: bool,
}

fn access_conflict(x: &Access, y: &Access) -> bool {
    (x.write || y.write) && x.addr < y.addr + y.len && y.addr < x.addr + x.len
}

fn conflicts(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| b.iter().any(|y| access_conflict(x, y)))
}

fn negative_conflicts(a: &[Access], b: &[Access]) -> bool {
    a.iter()
        .filter(|x| x.negative)
        .any(|x| b.iter().any(|y| access_conflict(x, y)))
}

/// The interpreter state for one execution, generic over the memory object
/// model it issues its actions against (§5.9).
pub struct Interp<'a, M: MemoryModel> {
    program: &'a CoreProgram,
    /// The memory object model state.
    pub mem: M,
    globals: Env,
    /// Bytes written by `printf` during this execution.
    pub stdout: Vec<u8>,
    oracle: &'a mut dyn ChoiceOracle,
    steps: u64,
    limits: ResourceLimits,
    /// Wall-clock deadline derived from [`ResourceLimits::wall_clock_ms`]
    /// at construction, checked periodically by [`Interp::tick`].
    deadline: Option<std::time::Instant>,
    call_depth: usize,
    footprints: Vec<Vec<Access>>,
}

impl<'a, M: MemoryModel> Interp<'a, M> {
    /// Build an interpreter for one execution of `program` against `mem`,
    /// bounded by `limits`.
    pub fn new(
        program: &'a CoreProgram,
        mem: M,
        oracle: &'a mut dyn ChoiceOracle,
        limits: ResourceLimits,
    ) -> Self {
        let deadline = limits
            .wall_clock_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        Interp {
            program,
            mem,
            globals: HashMap::new(),
            stdout: Vec::new(),
            oracle,
            steps: 0,
            limits,
            deadline,
            call_depth: 0,
            footprints: Vec::new(),
        }
    }

    /// Create the static-storage objects (globals, string literals), register
    /// the program's functions, and run the global initialisers in
    /// declaration order.
    pub fn setup(&mut self) -> Result<(), Stop> {
        for (name, bytes) in &self.program.string_literals {
            let ptr = self.mem.create_string_literal(bytes).map_err(Stop::from)?;
            self.globals
                .insert(name.as_str().to_owned(), Value::Pointer(ptr));
        }
        for proc_name in self.program.procs.keys() {
            self.mem.register_function(&Ident::new(proc_name.clone()));
        }
        for global in &self.program.globals {
            let ptr = self
                .mem
                .create(&global.ty, AllocKind::Static, Some(global.name.as_str()))
                .map_err(Stop::from)?;
            self.globals
                .insert(global.name.as_str().to_owned(), Value::Pointer(ptr));
        }
        for global in &self.program.globals {
            let mut env = Env::new();
            match self.eval_expr(&mut env, &global.init)? {
                Flow::Value(_) => {}
                Flow::Jump(l) => {
                    return Err(Stop::Error(format!("jump to {l} in a global initialiser")))
                }
                Flow::Return(_) => {
                    return Err(Stop::Error("return in a global initialiser".into()))
                }
            }
        }
        Ok(())
    }

    /// Call a named C function with already-loaded argument values and return
    /// its result value.
    pub fn call_named(&mut self, name: &str, args: Vec<Value>) -> Result<Value, Stop> {
        if let Some(result) = builtins::call_builtin(self, name, &args) {
            return result;
        }
        let proc = self
            .program
            .proc(name)
            .ok_or_else(|| Stop::Error(format!("call to undefined function {name}")))?
            .clone();
        if self.call_depth > self.limits.call_depth {
            return Err(Stop::Resource(ResourceKind::CallDepth));
        }
        self.call_depth += 1;
        let mut env = Env::new();
        let mut param_ptrs = Vec::new();
        for ((sym, ty), arg) in proc.params.iter().zip(args) {
            let ptr = self
                .mem
                .create(ty, AllocKind::Automatic, Some(sym.as_str()))
                .map_err(Stop::from)?;
            self.mem
                .store(ty, &ptr, &arg.to_mem(ty))
                .map_err(Stop::from)?;
            env.insert(sym.as_str().to_owned(), Value::Pointer(ptr.clone()));
            param_ptrs.push(ptr);
        }
        let flow = self.eval_expr(&mut env, &proc.body);
        for ptr in &param_ptrs {
            let _ = self.mem.kill(ptr, false);
        }
        self.call_depth -= 1;
        match flow? {
            Flow::Return(v) | Flow::Value(v) => Ok(v),
            Flow::Jump(l) => Err(Stop::Error(format!("jump to undefined label {l}"))),
        }
    }

    fn tick(&mut self) -> Result<(), Stop> {
        self.steps += 1;
        if self.steps > self.limits.steps {
            return Err(Stop::Limit(TimeoutKind::StepBudget));
        }
        // Consult the wall clock only every 4096 steps: `Instant::now` is
        // orders of magnitude more expensive than a step.
        if self.steps & 0xFFF == 0 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(Stop::Limit(TimeoutKind::WallClock));
                }
            }
        }
        Ok(())
    }

    fn record_access(&mut self, addr: u64, len: u64, write: bool, negative: bool) {
        for collector in &mut self.footprints {
            collector.push(Access {
                addr,
                len,
                write,
                negative,
            });
        }
    }

    fn lookup(&self, env: &Env, name: &Ident) -> Result<Value, Stop> {
        env.get(name.as_str())
            .or_else(|| self.globals.get(name.as_str()))
            .cloned()
            .ok_or_else(|| Stop::Error(format!("unbound Core symbol {name}")))
    }

    // ----- pattern matching ---------------------------------------------------

    fn match_pattern(pat: &Pattern, value: &Value) -> Option<Vec<(String, Value)>> {
        match (pat, value) {
            (Pattern::Wildcard, _) => Some(Vec::new()),
            (Pattern::Sym(name), v) => Some(vec![(name.as_str().to_owned(), v.clone())]),
            (Pattern::Tuple(ps), Value::Tuple(vs)) if ps.len() == vs.len() => {
                let mut out = Vec::new();
                for (p, v) in ps.iter().zip(vs.iter()) {
                    out.extend(Self::match_pattern(p, v)?);
                }
                Some(out)
            }
            (Pattern::Tuple(ps), v) if ps.len() == 1 => Self::match_pattern(&ps[0], v),
            (Pattern::Specified(p), Value::Specified(inner)) => Self::match_pattern(p, inner),
            (Pattern::Unspecified(p), Value::Unspecified(ty)) => {
                Self::match_pattern(p, &Value::Ctype(ty.clone()))
            }
            _ => None,
        }
    }

    fn bind(env: &mut Env, pat: &Pattern, value: Value) -> Result<(), Stop> {
        match Self::match_pattern(pat, &value) {
            Some(bindings) => {
                for (name, v) in bindings {
                    env.insert(name, v);
                }
                Ok(())
            }
            None => Err(Stop::Error(format!(
                "pattern match failure binding {value}"
            ))),
        }
    }

    // ----- pure expressions ----------------------------------------------------

    fn eval_binop(&self, op: Binop, a: Value, b: Value) -> Result<Value, Stop> {
        use Binop::*;
        // Pointer comparisons against integers (null tests generated by the
        // elaboration of scalar conditions) compare addresses.
        let as_num = |v: &Value| -> Option<i128> {
            match v {
                Value::Integer(iv) => Some(iv.value),
                Value::Pointer(p) => Some(p.addr as i128),
                Value::Bool(b) => Some(i128::from(*b)),
                Value::Specified(inner) => match &**inner {
                    Value::Integer(iv) => Some(iv.value),
                    Value::Pointer(p) => Some(p.addr as i128),
                    _ => None,
                },
                _ => None,
            }
        };
        match op {
            And | Or => {
                let (Value::Bool(x), Value::Bool(y)) = (&a, &b) else {
                    return Err(Stop::Error(
                        "boolean operator on non-boolean operands".into(),
                    ));
                };
                Ok(Value::Bool(if op == And { *x && *y } else { *x || *y }))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let (Some(x), Some(y)) = (as_num(&a), as_num(&b)) else {
                    return Err(Stop::Error(format!(
                        "comparison on non-scalar operands {a} and {b}"
                    )));
                };
                let r = match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                };
                Ok(Value::Bool(r))
            }
            _ => {
                let (Some(ia), Some(ib)) = (a.as_integer_value(), b.as_integer_value()) else {
                    return Err(Stop::Error(format!(
                        "arithmetic on non-integer operands {a} and {b}"
                    )));
                };
                let (x, y) = (ia.value, ib.value);
                let value = match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err(Stop::Undef {
                                ub: UbKind::DivisionByZero,
                                detail: "division by zero".into(),
                            });
                        }
                        x.wrapping_div(y)
                    }
                    RemT => {
                        if y == 0 {
                            return Err(Stop::Undef {
                                ub: UbKind::DivisionByZero,
                                detail: "remainder by zero".into(),
                            });
                        }
                        x.wrapping_rem(y)
                    }
                    Exp => {
                        let exp = y.clamp(0, 126) as u32;
                        x.wrapping_pow(exp)
                    }
                    BitAnd => x & y,
                    BitOr => x | y,
                    BitXor => x ^ y,
                    _ => unreachable!("handled above"),
                };
                // "Most arithmetic involving one provenanced value and one
                // pure value preserves the provenance" (§5.9).
                Ok(Value::Integer(IntegerValue::with_prov(
                    value,
                    ia.prov.combine(ib.prov),
                )))
            }
        }
    }

    fn eval_builtin(&mut self, f: BuiltinFn, args: &[Value]) -> Result<Value, Stop> {
        let ctype_arg = |i: usize| -> Result<Ctype, Stop> {
            match args.get(i) {
                Some(Value::Ctype(ty)) => Ok(ty.clone()),
                other => Err(Stop::Error(format!(
                    "builtin expected a ctype argument, got {other:?}"
                ))),
            }
        };
        let int_arg = |i: usize| -> Result<IntegerValue, Stop> {
            args.get(i)
                .and_then(Value::as_integer_value)
                .ok_or_else(|| Stop::Error("builtin expected an integer argument".into()))
        };
        let env = self.mem.env().clone();
        match f {
            BuiltinFn::IntegerPromotion => Ok(Value::Integer(int_arg(1)?)),
            BuiltinFn::ConvInt => {
                let ty = ctype_arg(0)?;
                let iv = int_arg(1)?;
                let it = ty
                    .as_integer()
                    .ok_or_else(|| Stop::Error("conv_int to non-integer".into()))?;
                Ok(Value::Integer(IntegerValue::with_prov(
                    env.convert_int(iv.value, it),
                    iv.prov,
                )))
            }
            BuiltinFn::IsRepresentable => {
                let ty = ctype_arg(0)?;
                let iv = int_arg(1)?;
                let it = ty
                    .as_integer()
                    .ok_or_else(|| Stop::Error("is_representable on non-integer".into()))?;
                Ok(Value::Bool(env.representable(iv.value, it)))
            }
            BuiltinFn::CtypeWidth => {
                let ty = ctype_arg(0)?;
                let it = ty
                    .as_integer()
                    .ok_or_else(|| Stop::Error("ctype_width of non-integer".into()))?;
                Ok(Value::Integer(IntegerValue::pure(i128::from(
                    env.integer_width(it),
                ))))
            }
            BuiltinFn::Ivmax => {
                let it = ctype_arg(0)?
                    .as_integer()
                    .ok_or_else(|| Stop::Error("Ivmax of non-integer".into()))?;
                Ok(Value::Integer(IntegerValue::pure(env.int_max(it))))
            }
            BuiltinFn::Ivmin => {
                let it = ctype_arg(0)?
                    .as_integer()
                    .ok_or_else(|| Stop::Error("Ivmin of non-integer".into()))?;
                Ok(Value::Integer(IntegerValue::pure(env.int_min(it))))
            }
            BuiltinFn::SizeOf => {
                let ty = ctype_arg(0)?;
                Ok(Value::Integer(IntegerValue::pure(i128::from(
                    self.mem.size_of(&ty)?,
                ))))
            }
            BuiltinFn::AlignOf => {
                let ty = ctype_arg(0)?;
                Ok(Value::Integer(IntegerValue::pure(i128::from(
                    self.mem.align_of(&ty)?,
                ))))
            }
            BuiltinFn::IsSigned => {
                let ty = ctype_arg(0)?;
                Ok(Value::Bool(
                    ty.as_integer().map(|it| env.is_signed(it)).unwrap_or(false),
                ))
            }
            BuiltinFn::IsUnsigned => {
                let ty = ctype_arg(0)?;
                Ok(Value::Bool(
                    ty.as_integer()
                        .map(|it| !env.is_signed(it))
                        .unwrap_or(false),
                ))
            }
            BuiltinFn::IsInteger => Ok(Value::Bool(ctype_arg(0)?.is_integer())),
            BuiltinFn::IsScalar => Ok(Value::Bool(ctype_arg(0)?.is_scalar())),
        }
    }

    /// Evaluate a pure expression.
    pub fn eval_pexpr(&mut self, env: &mut Env, pe: &PExpr) -> Result<Value, Stop> {
        match pe {
            PExpr::Sym(name) => self.lookup(env, name),
            PExpr::Unit => Ok(Value::Unit),
            PExpr::Boolean(b) => Ok(Value::Bool(*b)),
            PExpr::Integer(v) => Ok(Value::Integer(IntegerValue::pure(*v))),
            PExpr::CtypeConst(ty) => Ok(Value::Ctype(ty.clone())),
            PExpr::NullPtr(_) => Ok(Value::Pointer(PointerValue::null())),
            PExpr::FunctionPtr(name) => Ok(Value::Pointer(self.mem.register_function(name))),
            PExpr::Undef(ub) => Err(Stop::Undef {
                ub: *ub,
                detail: "explicit undef reached".into(),
            }),
            PExpr::Error(msg) => Err(Stop::Error(msg.clone())),
            PExpr::Specified(inner) => Ok(Value::Specified(Box::new(self.eval_pexpr(env, inner)?))),
            PExpr::Unspecified(ty) => Ok(Value::Unspecified(ty.clone())),
            PExpr::Tuple(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval_pexpr(env, item)?);
                }
                Ok(Value::Tuple(out))
            }
            PExpr::ArrayVal(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let v = self.eval_pexpr(env, item)?;
                    out.push(v.to_mem(&Ctype::integer(IntegerType::LongLong)));
                }
                Ok(Value::Object(cerberus_memory::value::MemValue::Array(out)))
            }
            PExpr::StructVal(tag, members) => {
                let mut out = Vec::with_capacity(members.len());
                for (name, value) in members {
                    let v = self.eval_pexpr(env, value)?;
                    out.push((
                        name.clone(),
                        v.to_mem(&Ctype::integer(IntegerType::LongLong)),
                    ));
                }
                Ok(Value::Object(cerberus_memory::value::MemValue::Struct(
                    *tag, out,
                )))
            }
            PExpr::UnionVal(tag, member, value) => {
                let v = self.eval_pexpr(env, value)?;
                Ok(Value::Object(cerberus_memory::value::MemValue::Union(
                    *tag,
                    member.clone(),
                    Box::new(v.to_mem(&Ctype::integer(IntegerType::LongLong))),
                )))
            }
            PExpr::Not(inner) => match self.eval_pexpr(env, inner)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(Stop::Error(format!("not applied to {other}"))),
            },
            PExpr::Binop(op, a, b) => {
                let va = self.eval_pexpr(env, a)?;
                let vb = self.eval_pexpr(env, b)?;
                self.eval_binop(*op, va, vb)
            }
            PExpr::If(c, t, f) => {
                let cond = self.eval_pexpr(env, c)?;
                match cond.truthiness() {
                    Some(true) => self.eval_pexpr(env, t),
                    Some(false) => self.eval_pexpr(env, f),
                    None => Err(Stop::Error("non-scalar condition in pure if".into())),
                }
            }
            PExpr::Case(scrutinee, arms) => {
                let v = self.eval_pexpr(env, scrutinee)?;
                for (pat, body) in arms {
                    if let Some(bindings) = Self::match_pattern(pat, &v) {
                        for (name, value) in bindings {
                            env.insert(name, value);
                        }
                        return self.eval_pexpr(env, body);
                    }
                }
                Err(Stop::Error(format!("no case arm matches {v}")))
            }
            PExpr::Let(pat, value, body) => {
                let v = self.eval_pexpr(env, value)?;
                Self::bind(env, pat, v)?;
                self.eval_pexpr(env, body)
            }
            PExpr::Builtin(f, args) => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval_pexpr(env, a)?);
                }
                self.eval_builtin(*f, &vs)
            }
            PExpr::ArrayShift {
                ptr,
                elem_ty,
                index,
            } => {
                let p = self
                    .eval_pexpr(env, ptr)?
                    .as_pointer()
                    .ok_or_else(|| Stop::Error("array_shift on a non-pointer".into()))?;
                let i = self
                    .eval_pexpr(env, index)?
                    .as_int()
                    .ok_or_else(|| Stop::Error("array_shift with a non-integer index".into()))?;
                Ok(Value::Pointer(self.mem.array_shift(&p, elem_ty, i)?))
            }
            PExpr::MemberShift { ptr, tag, member } => {
                let p = self
                    .eval_pexpr(env, ptr)?
                    .as_pointer()
                    .ok_or_else(|| Stop::Error("member_shift on a non-pointer".into()))?;
                Ok(Value::Pointer(self.mem.member_shift(&p, *tag, member)?))
            }
        }
    }

    // ----- memory operations -----------------------------------------------------

    fn pointer_operand(&mut self, v: &Value) -> Result<PointerValue, Stop> {
        if let Some(p) = v.as_pointer() {
            return Ok(p);
        }
        if let Some(iv) = v.as_integer_value() {
            if iv.value == 0 {
                return Ok(PointerValue::null());
            }
            return Ok(self.mem.ptr_from_int(&iv));
        }
        Err(Stop::Error(format!("expected a pointer operand, got {v}")))
    }

    fn eval_memop(&mut self, env: &mut Env, op: PtrOp, args: &[PExpr]) -> EResult {
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval_pexpr(env, a)?);
        }
        let specified_int = |v: i128| Flow::Value(Value::specified_int(v));
        match op {
            PtrOp::Eq | PtrOp::Ne => {
                let a = self.pointer_operand(&values[0])?;
                let b = self.pointer_operand(&values[1])?;
                let eq = self.mem.ptr_eq(&a, &b)?;
                let result = if op == PtrOp::Eq { eq } else { !eq };
                Ok(specified_int(i128::from(result)))
            }
            PtrOp::Lt | PtrOp::Gt | PtrOp::Le | PtrOp::Ge => {
                let a = self.pointer_operand(&values[0])?;
                let b = self.pointer_operand(&values[1])?;
                let ord = self.mem.ptr_rel(&a, &b)?;
                let result = match op {
                    PtrOp::Lt => ord == std::cmp::Ordering::Less,
                    PtrOp::Gt => ord == std::cmp::Ordering::Greater,
                    PtrOp::Le => ord != std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                };
                Ok(specified_int(i128::from(result)))
            }
            PtrOp::Diff => {
                let a = self.pointer_operand(&values[0])?;
                let b = self.pointer_operand(&values[1])?;
                let elem_ty = match &values[2] {
                    Value::Ctype(ty) => ty.clone(),
                    _ => Ctype::integer(IntegerType::Char),
                };
                let size = self.mem.size_of(&elem_ty)?;
                let diff = self.mem.ptr_diff(&a, &b, size)?;
                Ok(Flow::Value(Value::Specified(Box::new(Value::Integer(
                    diff,
                )))))
            }
            PtrOp::IntFromPtr => {
                let p = self.pointer_operand(&values[0])?;
                let target = match &values[1] {
                    Value::Ctype(ty) => ty.clone(),
                    _ => Ctype::integer(IntegerType::UintptrT),
                };
                let iv = self.mem.int_from_ptr(&p);
                let it = target.as_integer().unwrap_or(IntegerType::UintptrT);
                let converted = self.mem.env().convert_int(iv.value, it);
                Ok(Flow::Value(Value::Specified(Box::new(Value::Integer(
                    IntegerValue::with_prov(converted, iv.prov),
                )))))
            }
            PtrOp::PtrFromInt => {
                let iv = values[0]
                    .as_integer_value()
                    .ok_or_else(|| Stop::Error("ptrFromInt of a non-integer".into()))?;
                let p = self.mem.ptr_from_int(&iv);
                Ok(Flow::Value(Value::Specified(Box::new(Value::Pointer(p)))))
            }
            PtrOp::ValidForDeref => {
                let p = self.pointer_operand(&values[0])?;
                let ty = match values.get(1) {
                    Some(Value::Ctype(ty)) => ty.clone(),
                    _ => Ctype::integer(IntegerType::Char),
                };
                Ok(specified_int(i128::from(self.mem.valid_for_deref(&p, &ty))))
            }
        }
    }

    fn eval_action(&mut self, env: &mut Env, action: &MemAction, negative: bool) -> EResult {
        match action {
            MemAction::Create { ty, .. } => {
                let ty = match self.eval_pexpr(env, ty)? {
                    Value::Ctype(ty) => ty,
                    other => return Err(Stop::Error(format!("create of a non-type {other}"))),
                };
                let ptr = self.mem.create(&ty, AllocKind::Automatic, None)?;
                Ok(Flow::Value(Value::Pointer(ptr)))
            }
            MemAction::Alloc { align, size } => {
                let align = self.eval_pexpr(env, align)?.as_int().unwrap_or(16) as u64;
                let size = self.eval_pexpr(env, size)?.as_int().unwrap_or(0) as u64;
                let ptr = self.mem.alloc(size, align).map_err(Stop::from)?;
                Ok(Flow::Value(Value::Pointer(ptr)))
            }
            MemAction::Kill(ptr) => {
                let p = self.eval_pexpr(env, ptr)?;
                if let Some(p) = p.as_pointer() {
                    // End-of-block kills are lenient: an object whose lifetime
                    // already ended (e.g. after a jump) is left alone.
                    let _ = self.mem.kill(&p, false);
                }
                Ok(Flow::Value(Value::Unit))
            }
            MemAction::Store { ty, ptr, value, .. } => {
                let ty = match self.eval_pexpr(env, ty)? {
                    Value::Ctype(ty) => ty,
                    other => return Err(Stop::Error(format!("store at a non-type {other}"))),
                };
                let p = self.eval_pexpr(env, ptr)?;
                let p = self.pointer_operand(&p)?;
                let v = self.eval_pexpr(env, value)?;
                let len = self.mem.size_of(&ty)?;
                self.mem.store(&ty, &p, &v.to_mem(&ty))?;
                self.record_access(p.addr, len, true, negative);
                Ok(Flow::Value(Value::Unit))
            }
            MemAction::Load { ty, ptr, .. } => {
                let ty = match self.eval_pexpr(env, ty)? {
                    Value::Ctype(ty) => ty,
                    other => return Err(Stop::Error(format!("load at a non-type {other}"))),
                };
                let p = self.eval_pexpr(env, ptr)?;
                let p = self.pointer_operand(&p)?;
                let len = self.mem.size_of(&ty)?;
                let mv = self.mem.load(&ty, &p)?;
                self.record_access(p.addr, len, false, negative);
                Ok(Flow::Value(Value::loaded_from_mem(mv)))
            }
        }
    }

    // ----- label search ------------------------------------------------------------

    fn contains_save(e: &Expr, label: &Ident) -> bool {
        match e {
            Expr::Save(l, body) => l == label || Self::contains_save(body, label),
            Expr::Exit(_, body) | Expr::Indet(body) | Expr::Bound(body) => {
                Self::contains_save(body, label)
            }
            Expr::Let(_, _, body) => Self::contains_save(body, label),
            Expr::If(_, t, f) => Self::contains_save(t, label) || Self::contains_save(f, label),
            Expr::Case(_, arms) => arms.iter().any(|(_, b)| Self::contains_save(b, label)),
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                items.iter().any(|i| Self::contains_save(i, label))
            }
            Expr::Wseq(_, a, b) | Expr::Sseq(_, a, b) => {
                Self::contains_save(a, label) || Self::contains_save(b, label)
            }
            _ => false,
        }
    }

    /// Evaluate `e` in "seeking" mode: skip everything until the `save` for
    /// `label` is reached, evaluate its body, then continue normally with the
    /// remainder of `e`. This realises forward `goto`s and `switch` dispatch.
    fn eval_seeking(&mut self, env: &mut Env, e: &Expr, label: &Ident) -> EResult {
        self.tick()?;
        match e {
            Expr::Save(l, body) => {
                if l == label {
                    self.eval_save(env, l, body)
                } else if Self::contains_save(body, label) {
                    // Seek inside, then keep this save active for later jumps.
                    let flow = self.eval_seeking(env, body, label)?;
                    match flow {
                        Flow::Jump(j) if &j == l => self.eval_save(env, l, body),
                        other => Ok(other),
                    }
                } else {
                    Err(Stop::Error(format!(
                        "label {label} not found while seeking"
                    )))
                }
            }
            Expr::Exit(l, body) => {
                let flow = self.eval_seeking(env, body, label)?;
                match flow {
                    Flow::Jump(j) if &j == l => Ok(Flow::Value(Value::Unit)),
                    other => Ok(other),
                }
            }
            Expr::Sseq(pat, a, b) | Expr::Wseq(pat, a, b) => {
                if Self::contains_save(a, label) {
                    let flow = self.eval_seeking(env, a, label)?;
                    match flow {
                        Flow::Value(v) => {
                            Self::bind(env, pat, v)?;
                            self.eval_expr(env, b)
                        }
                        Flow::Jump(l) => {
                            if Self::contains_save(b, &l) {
                                self.eval_seeking(env, b, &l)
                            } else {
                                Ok(Flow::Jump(l))
                            }
                        }
                        other => Ok(other),
                    }
                } else {
                    self.eval_seeking(env, b, label)
                }
            }
            Expr::Let(_, _, body) | Expr::Indet(body) | Expr::Bound(body) => {
                self.eval_seeking(env, body, label)
            }
            Expr::If(_, t, f) => {
                if Self::contains_save(t, label) {
                    self.eval_seeking(env, t, label)
                } else {
                    self.eval_seeking(env, f, label)
                }
            }
            Expr::Case(_, arms) => {
                for (_, body) in arms {
                    if Self::contains_save(body, label) {
                        return self.eval_seeking(env, body, label);
                    }
                }
                Err(Stop::Error(format!("label {label} not found in case arms")))
            }
            Expr::Unseq(items) | Expr::Nd(items) | Expr::Par(items) => {
                for item in items {
                    if Self::contains_save(item, label) {
                        return self.eval_seeking(env, item, label);
                    }
                }
                Err(Stop::Error(format!(
                    "label {label} not found while seeking"
                )))
            }
            _ => Err(Stop::Error(format!(
                "label {label} not found while seeking"
            ))),
        }
    }

    fn eval_save(&mut self, env: &mut Env, label: &Ident, body: &Expr) -> EResult {
        loop {
            self.tick()?;
            match self.eval_expr(env, body)? {
                Flow::Jump(l) if &l == label => continue,
                other => return Ok(other),
            }
        }
    }

    // ----- effectful expressions ------------------------------------------------------

    /// Evaluate an effectful Core expression.
    pub fn eval_expr(&mut self, env: &mut Env, e: &Expr) -> EResult {
        self.tick()?;
        match e {
            Expr::Pure(pe) => Ok(Flow::Value(self.eval_pexpr(env, pe)?)),
            Expr::Memop(op, args) => self.eval_memop(env, *op, args),
            Expr::Action(polarity, action) => self.eval_action(
                env,
                action,
                *polarity == cerberus_core::syntax::Polarity::Negative,
            ),
            Expr::Case(scrutinee, arms) => {
                let v = self.eval_pexpr(env, scrutinee)?;
                for (pat, body) in arms {
                    if let Some(bindings) = Self::match_pattern(pat, &v) {
                        for (name, value) in bindings {
                            env.insert(name, value);
                        }
                        return self.eval_expr(env, body);
                    }
                }
                Err(Stop::Error(format!("no case arm matches {v}")))
            }
            Expr::Let(pat, value, body) => {
                let v = self.eval_pexpr(env, value)?;
                Self::bind(env, pat, v)?;
                self.eval_expr(env, body)
            }
            Expr::If(c, t, f) => {
                let cond = self.eval_pexpr(env, c)?;
                match cond.truthiness() {
                    Some(true) => self.eval_expr(env, t),
                    Some(false) => self.eval_expr(env, f),
                    None => Err(Stop::Error("non-scalar condition in if".into())),
                }
            }
            Expr::Skip => Ok(Flow::Value(Value::Unit)),
            Expr::Ccall(f, args) => {
                let fv = self.eval_pexpr(env, f)?;
                let name = match fv.as_pointer() {
                    Some(p) => match p.function {
                        Some(name) => name,
                        None => match self.mem.function_at(p.addr).cloned() {
                            Some(name) => name,
                            None => {
                                return Err(Stop::Undef {
                                    ub: UbKind::IncompatibleFunctionCall,
                                    detail: "call through a pointer that is not a function".into(),
                                })
                            }
                        },
                    },
                    None => return Err(Stop::Error(format!("call of a non-function value {fv}"))),
                };
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval_pexpr(env, a)?);
                }
                Ok(Flow::Value(self.call_named(name.as_str(), arg_values)?))
            }
            Expr::Unseq(items) => self.eval_unseq(env, items),
            Expr::Wseq(pat, a, b) => {
                // Weak sequencing orders only the *positive* actions of the
                // first expression before the second, so a negative action of
                // the first (e.g. a postfix increment's store) that conflicts
                // with an access of the second is an unsequenced race (6.5p2).
                self.footprints.push(Vec::new());
                let first_flow = self.eval_expr(env, a);
                let fp_first = self.footprints.pop().unwrap_or_default();
                match first_flow? {
                    Flow::Value(v) => {
                        Self::bind(env, pat, v)?;
                        self.footprints.push(Vec::new());
                        let second_flow = self.eval_expr(env, b);
                        let fp_second = self.footprints.pop().unwrap_or_default();
                        let flow = second_flow?;
                        if negative_conflicts(&fp_first, &fp_second) {
                            return Err(Stop::Undef {
                                ub: UbKind::UnsequencedRace,
                                detail:
                                    "a side-effect store is unsequenced with a conflicting access"
                                        .into(),
                            });
                        }
                        match flow {
                            Flow::Jump(l) if Self::contains_save(a, &l) => {
                                self.eval_seeking(env, a, &l)
                            }
                            other => Ok(other),
                        }
                    }
                    Flow::Jump(l) => {
                        if Self::contains_save(b, &l) {
                            self.eval_seeking(env, b, &l)
                        } else {
                            Ok(Flow::Jump(l))
                        }
                    }
                    Flow::Return(v) => Ok(Flow::Return(v)),
                }
            }
            Expr::Sseq(pat, a, b) => {
                match self.eval_expr(env, a)? {
                    Flow::Value(v) => {
                        Self::bind(env, pat, v)?;
                        match self.eval_expr(env, b)? {
                            Flow::Jump(l) if Self::contains_save(a, &l) => {
                                // A backward jump to a label in the already
                                // evaluated part of the sequence: re-enter it
                                // seeking the label.
                                self.eval_seeking(env, a, &l)
                            }
                            other => Ok(other),
                        }
                    }
                    Flow::Jump(l) => {
                        if Self::contains_save(b, &l) {
                            self.eval_seeking(env, b, &l)
                        } else {
                            Ok(Flow::Jump(l))
                        }
                    }
                    Flow::Return(v) => Ok(Flow::Return(v)),
                }
            }
            Expr::Indet(body) => {
                // The body (a called function's execution) is indeterminately
                // sequenced with respect to the surrounding expression, not
                // unsequenced: its accesses do not form unsequenced races with
                // the siblings, so they are hidden from the active collectors.
                let saved = std::mem::take(&mut self.footprints);
                let result = self.eval_expr(env, body);
                self.footprints = saved;
                result
            }
            Expr::Bound(body) => self.eval_expr(env, body),
            Expr::Nd(items) => {
                if items.is_empty() {
                    return Ok(Flow::Value(Value::Unit));
                }
                let idx = if items.len() == 1 {
                    0
                } else {
                    self.oracle.choose(items.len())
                };
                self.eval_expr(env, &items[idx])
            }
            Expr::Save(label, body) => self.eval_save(env, label, body),
            Expr::Exit(label, body) => match self.eval_expr(env, body)? {
                Flow::Jump(l) if &l == label => Ok(Flow::Value(Value::Unit)),
                other => Ok(other),
            },
            Expr::Run(label) => Ok(Flow::Jump(label.clone())),
            Expr::Return(value) => {
                let v = self.eval_pexpr(env, value)?;
                Ok(Flow::Return(v))
            }
            Expr::Par(items) => {
                // Restricted concurrency: the threads are run to completion in
                // an oracle-chosen order (data-race detection for interleaved
                // executions lives in cerberus-conc).
                let mut order: Vec<usize> = (0..items.len()).collect();
                let mut results = vec![Value::Unit; items.len()];
                while !order.is_empty() {
                    let k = if order.len() == 1 {
                        0
                    } else {
                        self.oracle.choose(order.len())
                    };
                    let idx = order.remove(k);
                    match self.eval_expr(env, &items[idx])? {
                        Flow::Value(v) => results[idx] = v,
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Value(Value::Tuple(results)))
            }
        }
    }

    fn eval_unseq(&mut self, env: &mut Env, items: &[Expr]) -> EResult {
        let n = items.len();
        if n == 0 {
            return Ok(Flow::Value(Value::Tuple(Vec::new())));
        }
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut results: Vec<Value> = vec![Value::Unit; n];
        let mut footprints: Vec<Vec<Access>> = vec![Vec::new(); n];
        while !remaining.is_empty() {
            let k = if remaining.len() == 1 {
                0
            } else {
                self.oracle.choose(remaining.len())
            };
            let idx = remaining.remove(k);
            self.footprints.push(Vec::new());
            let flow = self.eval_expr(env, &items[idx]);
            let fp = self.footprints.pop().unwrap_or_default();
            footprints[idx] = fp;
            match flow? {
                Flow::Value(v) => results[idx] = v,
                other => return Ok(other),
            }
        }
        // Unsequenced race detection (6.5p2): conflicting accesses between
        // unsequenced siblings are undefined behaviour on every schedule.
        for i in 0..n {
            for j in i + 1..n {
                if conflicts(&footprints[i], &footprints[j]) {
                    return Err(Stop::Undef {
                        ub: UbKind::UnsequencedRace,
                        detail: "conflicting unsequenced accesses to the same object".into(),
                    });
                }
            }
        }
        Ok(Flow::Value(Value::Tuple(results)))
    }
}
