//! Runtime values of the Core operational semantics.

use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_memory::value::{IntegerValue, MemValue, PointerValue};

/// A runtime Core value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer value (mathematical integer plus provenance).
    Integer(IntegerValue),
    /// A pointer value.
    Pointer(PointerValue),
    /// A C type as a value.
    Ctype(Ctype),
    /// A tuple of values (the result of `unseq`).
    Tuple(Vec<Value>),
    /// A composite object value (struct/union/array), kept in memory-value
    /// form.
    Object(MemValue),
    /// A loaded, specified value.
    Specified(Box<Value>),
    /// A loaded, unspecified value of the recorded C type.
    Unspecified(Ctype),
}

impl Value {
    /// A specified integer.
    pub fn specified_int(v: i128) -> Value {
        Value::Specified(Box::new(Value::Integer(IntegerValue::pure(v))))
    }

    /// The integer inside (possibly wrapped in `Specified`), if any.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Integer(iv) => Some(iv.value),
            Value::Specified(inner) => inner.as_int(),
            Value::Bool(b) => Some(i128::from(*b)),
            _ => None,
        }
    }

    /// The integer value (with provenance), unwrapping `Specified`.
    pub fn as_integer_value(&self) -> Option<IntegerValue> {
        match self {
            Value::Integer(iv) => Some(*iv),
            Value::Specified(inner) => inner.as_integer_value(),
            _ => None,
        }
    }

    /// The pointer value, unwrapping `Specified`.
    pub fn as_pointer(&self) -> Option<PointerValue> {
        match self {
            Value::Pointer(p) => Some(p.clone()),
            Value::Specified(inner) => inner.as_pointer(),
            _ => None,
        }
    }

    /// Whether the value is a loaded unspecified value.
    pub fn is_unspecified(&self) -> bool {
        matches!(self, Value::Unspecified(_))
    }

    /// The boolean interpretation of a scalar value (non-zero / non-null).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Integer(iv) => Some(iv.value != 0),
            Value::Pointer(p) => Some(!p.is_null()),
            Value::Specified(inner) => inner.truthiness(),
            _ => None,
        }
    }

    /// Convert a memory value (the result of a load) into a *loaded* runtime
    /// value.
    pub fn loaded_from_mem(mv: MemValue) -> Value {
        match mv {
            MemValue::Unspecified(ty) => Value::Unspecified(ty),
            other => Value::Specified(Box::new(Value::from_mem(other))),
        }
    }

    /// Convert a memory value into a plain runtime value.
    pub fn from_mem(mv: MemValue) -> Value {
        match mv {
            MemValue::Unspecified(ty) => Value::Unspecified(ty),
            MemValue::Integer(_, iv) => Value::Integer(iv),
            MemValue::Pointer(_, pv) => Value::Pointer(pv),
            composite => Value::Object(composite),
        }
    }

    /// Convert a runtime value into a memory value for a store at C type
    /// `ty`.
    pub fn to_mem(&self, ty: &Ctype) -> MemValue {
        match self {
            Value::Specified(inner) => inner.to_mem(ty),
            Value::Unspecified(t) => MemValue::Unspecified(t.clone()),
            Value::Integer(iv) => match ty {
                Ctype::Integer(it) => MemValue::Integer(*it, *iv),
                Ctype::Pointer(_, pointee) => MemValue::Pointer(
                    (**pointee).clone(),
                    cerberus_memory::value::PointerValue::object(iv.prov, iv.value as u64),
                ),
                _ => MemValue::Integer(IntegerType::LongLong, *iv),
            },
            Value::Pointer(pv) => match ty {
                Ctype::Pointer(_, pointee) => MemValue::Pointer((**pointee).clone(), pv.clone()),
                Ctype::Integer(it) => {
                    MemValue::Integer(*it, IntegerValue::with_prov(pv.addr as i128, pv.prov))
                }
                _ => MemValue::Pointer(Ctype::Void, pv.clone()),
            },
            Value::Object(mv) => mv.clone(),
            Value::Bool(b) => MemValue::int(IntegerType::Bool, i128::from(*b)),
            Value::Unit | Value::Ctype(_) | Value::Tuple(_) => MemValue::Unspecified(ty.clone()),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Unit => write!(f, "Unit"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Integer(iv) => write!(f, "{iv}"),
            Value::Pointer(p) => write!(f, "{p}"),
            Value::Ctype(ty) => write!(f, "'{ty}'"),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Object(mv) => write!(f, "{mv}"),
            Value::Specified(inner) => write!(f, "Specified({inner})"),
            Value::Unspecified(ty) => write!(f, "Unspecified('{ty}')"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_memory::value::Provenance;

    #[test]
    fn loaded_round_trips() {
        let mv = MemValue::int(IntegerType::Int, 42);
        let v = Value::loaded_from_mem(mv.clone());
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.to_mem(&Ctype::integer(IntegerType::Int)), mv);
    }

    #[test]
    fn unspecified_is_preserved() {
        let ty = Ctype::integer(IntegerType::Int);
        let v = Value::loaded_from_mem(MemValue::Unspecified(ty.clone()));
        assert!(v.is_unspecified());
        assert_eq!(v.to_mem(&ty), MemValue::Unspecified(ty));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::specified_int(0).truthiness(), Some(false));
        assert_eq!(Value::specified_int(3).truthiness(), Some(true));
        let null = Value::Pointer(PointerValue::null());
        assert_eq!(null.truthiness(), Some(false));
        assert_eq!(Value::Unit.truthiness(), None);
    }

    #[test]
    fn integer_stored_at_pointer_type_becomes_an_address() {
        let v = Value::Integer(IntegerValue::with_prov(0x1234, Provenance::Alloc(1)));
        let mv = v.to_mem(&Ctype::pointer(Ctype::integer(IntegerType::Int)));
        let p = mv.as_pointer().unwrap();
        assert_eq!(p.addr, 0x1234);
        assert_eq!(p.prov, Provenance::Alloc(1));
    }
}
