//! The worker pool: threads pulling jobs from the work-stealing scheduler,
//! executing them through the shared session, and recording outcomes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cerberus::pipeline::Session;

use crate::scheduler::Scheduler;
use crate::{
    Job, JobEntry, JobId, JobOutcome, JobStatus, JobTable, QueueStats, ResultCache, WorkerStats,
};

/// State shared between the [`JobQueue`] handle and its worker threads.
#[derive(Debug)]
struct Inner {
    scheduler: Scheduler,
    table: JobTable,
    cache: ResultCache,
    session: Session,
    /// Parking lot for idle workers: submissions notify `wake` under `sleep`.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
}

impl Inner {
    /// Execute one job on worker `w`: answer from the result cache when the
    /// exact (source × models × mode × budget) has been run before, otherwise
    /// run it and memoise the outcome.
    fn execute(&self, w: usize, id: JobId) {
        let job = {
            let mut entries = self.table.entries.lock().expect("job table");
            let entry = entries.get_mut(&id).expect("taken job is in the table");
            entry.status = JobStatus::Running;
            Arc::clone(&entry.job)
        };
        let key = job.cache_key();
        let outcome = match self.cache.lookup(&key) {
            Some(hit) => hit,
            None => {
                let outcome = crate::run_job(&self.session, &job);
                self.cache.insert(key, outcome.clone());
                outcome
            }
        };
        {
            let mut entries = self.table.entries.lock().expect("job table");
            let entry = entries.get_mut(&id).expect("running job is in the table");
            entry.status = outcome.status();
            entry.outcome = Some(outcome);
        }
        self.scheduler.counters[w]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.table.finished.notify_all();
    }

    /// The worker loop: drain the scheduler; when it runs dry either exit (a
    /// draining shutdown leaves nothing behind) or park until the next
    /// submission. The park re-checks emptiness under the sleep mutex — and
    /// submitters notify under it — so a wakeup can never be lost; the
    /// timeout is only a belt-and-braces backstop.
    fn worker_loop(&self, w: usize) {
        loop {
            match self.scheduler.take(w) {
                Some(id) => self.execute(w, id),
                None => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let guard = self.sleep.lock().expect("sleep mutex");
                    if self.scheduler.depth() == 0 && !self.shutdown.load(Ordering::SeqCst) {
                        let _ = self
                            .wake
                            .wait_timeout(guard, Duration::from_millis(50))
                            .expect("sleep mutex");
                    }
                }
            }
        }
    }

    /// Register a job as queued and return its id (the caller still has to
    /// place the id on a queue and wake a worker).
    fn admit(&self, job: Job) -> JobId {
        assert!(
            !self.shutdown.load(Ordering::SeqCst),
            "submit on a shut-down JobQueue"
        );
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.table.entries.lock().expect("job table").insert(
            id,
            JobEntry {
                job: Arc::new(job),
                status: JobStatus::Queued,
                outcome: None,
            },
        );
        self.submitted.fetch_add(1, Ordering::Relaxed);
        id
    }

    fn notify_workers(&self) {
        let _guard = self.sleep.lock().expect("sleep mutex");
        self.wake.notify_all();
    }
}

/// A running job queue: a work-stealing scheduler plus a pool of worker
/// threads executing submitted [`Job`]s (see the crate docs for the full
/// contract). Cheap to share: the handle is a thin wrapper over `Arc`-shared
/// state, and all methods take `&self`.
///
/// Dropping the handle (or calling [`JobQueue::shutdown`]) drains the queue —
/// every job submitted before the shutdown still runs to completion — and
/// joins the workers.
#[derive(Debug)]
pub struct JobQueue {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobQueue {
    /// Start a pool of `workers` threads (at least one).
    pub fn start(workers: usize) -> Self {
        JobQueue::start_with_session(workers, Session::default())
    }

    /// Start a pool whose workers elaborate through `session` — pass a
    /// pre-warmed session to share its artifact memo with other harnesses.
    pub fn start_with_session(workers: usize, session: Session) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            scheduler: Scheduler::new(workers),
            table: JobTable::default(),
            cache: ResultCache::default(),
            session,
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cerberus-job-worker-{w}"))
                    .spawn(move || inner.worker_loop(w))
                    .expect("spawning a job-queue worker")
            })
            .collect();
        JobQueue {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// The number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.inner.scheduler.counters.len()
    }

    /// The session the workers elaborate through (its artifact memo is shared
    /// across all jobs).
    pub fn session(&self) -> &Session {
        &self.inner.session
    }

    /// Submit one job on the shared injector queue; any worker picks it up.
    ///
    /// # Panics
    /// Panics if the queue has been shut down.
    pub fn submit(&self, job: Job) -> JobId {
        let id = self.inner.admit(job);
        self.inner.scheduler.inject(id);
        self.inner.notify_workers();
        id
    }

    /// Submit a batch, dealing the jobs round-robin onto the per-worker
    /// deques: the batch starts out evenly spread, and idle workers steal
    /// from any worker that falls behind a slow job. Returns the ids in
    /// submission order.
    ///
    /// # Panics
    /// Panics if the queue has been shut down.
    pub fn submit_batch(&self, jobs: impl IntoIterator<Item = Job>) -> Vec<JobId> {
        let ids: Vec<JobId> = jobs
            .into_iter()
            .map(|job| {
                let id = self.inner.admit(job);
                self.inner.scheduler.deal(id);
                id
            })
            .collect();
        self.inner.notify_workers();
        ids
    }

    /// The status of a job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.inner
            .table
            .entries
            .lock()
            .expect("job table")
            .get(&id)
            .map(|entry| entry.status)
    }

    /// The outcome of a finished job; `None` while it is queued or running
    /// (or for an unknown id — distinguish via [`JobQueue::status`]).
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        self.inner
            .table
            .entries
            .lock()
            .expect("job table")
            .get(&id)
            .and_then(|entry| entry.outcome.clone())
    }

    /// Block until `id` finishes and return its outcome.
    ///
    /// # Panics
    /// Panics if `id` was never submitted to this queue.
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut entries = self.inner.table.entries.lock().expect("job table");
        loop {
            match entries.get(&id) {
                None => panic!("wait on unknown job id {id}"),
                Some(entry) => {
                    if let Some(outcome) = &entry.outcome {
                        return outcome.clone();
                    }
                }
            }
            entries = self.inner.table.finished.wait(entries).expect("job table");
        }
    }

    /// Block until every id finishes; outcomes come back in argument order
    /// (deterministic regardless of how the pool interleaved the jobs).
    pub fn wait_all(&self, ids: &[JobId]) -> Vec<JobOutcome> {
        ids.iter().map(|&id| self.wait(id)).collect()
    }

    /// Submit a batch and wait for all of it, returning outcomes in
    /// submission order.
    pub fn run_batch(&self, jobs: impl IntoIterator<Item = Job>) -> Vec<JobOutcome> {
        let ids = self.submit_batch(jobs);
        self.wait_all(&ids)
    }

    /// A point-in-time snapshot of queue depth, lifetime counters, cache
    /// statistics and per-worker activity.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            depth: self.inner.scheduler.depth(),
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            result_cache: self.inner.cache.stats(),
            elaboration_cache: self.inner.session.cache_stats(),
            workers: self
                .inner
                .scheduler
                .counters
                .iter()
                .map(|c| WorkerStats {
                    executed: c.executed.load(Ordering::Relaxed),
                    stolen: c.stolen.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Drain and stop: refuse new submissions, let the workers finish every
    /// queued job, and join them. Idempotent; results stay queryable through
    /// [`JobQueue::outcome`] afterwards.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.notify_workers();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Job;
    use cerberus::DifferentialRunner;
    use cerberus_memory::config::ModelConfig;
    use cerberus_memory::limits::ResourceLimits;

    fn return_n(n: usize) -> String {
        format!("int main(void) {{ return {n}; }}")
    }

    #[test]
    fn batch_results_are_deterministic_and_bit_identical_to_sequential_runs() {
        let queue = JobQueue::start(4);
        let models = || vec![ModelConfig::concrete(), ModelConfig::symbolic()];
        let sources: Vec<String> = (0..12).map(|i| return_n(i % 7)).collect();
        let outcomes = queue.run_batch(sources.iter().map(|src| Job::new(src.clone(), models())));
        let session = Session::default();
        for (source, outcome) in sources.iter().zip(outcomes) {
            let expected = DifferentialRunner::new(models())
                .run_sequential(&session.elaborate(source).unwrap());
            assert_eq!(outcome.into_matrix().unwrap(), expected, "source {source}");
        }
        queue.shutdown();
    }

    #[test]
    fn shutdown_drains_every_submitted_job() {
        let queue = JobQueue::start(2);
        let ids = queue
            .submit_batch((0..16).map(|i| Job::new(return_n(i), vec![ModelConfig::concrete()])));
        // Shut down immediately: the pool must finish the backlog first.
        queue.shutdown();
        for (i, id) in ids.iter().enumerate() {
            let outcome = queue.outcome(*id).expect("job drained before shutdown");
            let matrix = outcome.into_matrix().unwrap();
            assert_eq!(
                matrix.outcome_for("concrete").unwrap().exit_value(),
                Some(i as i128)
            );
        }
        assert_eq!(queue.stats().completed, 16);
        assert_eq!(queue.stats().depth, 0);
    }

    #[test]
    #[should_panic(expected = "submit on a shut-down JobQueue")]
    fn submitting_after_shutdown_is_refused() {
        let queue = JobQueue::start(1);
        queue.shutdown();
        queue.submit(Job::new(return_n(0), vec![ModelConfig::concrete()]));
    }

    #[test]
    fn identical_resubmission_is_a_result_cache_hit() {
        let queue = JobQueue::start(2);
        let job = || Job::new(return_n(42), vec![ModelConfig::concrete()]);
        let first = queue.wait(queue.submit(job()));
        assert_eq!(queue.stats().result_cache.hits, 0);
        let second = queue.wait(queue.submit(job()));
        assert_eq!(first, second);
        let stats = queue.stats();
        assert_eq!(stats.result_cache.hits, 1);
        assert_eq!(stats.result_cache.misses, 1);
        assert_eq!(stats.result_cache.entries, 1);
        // A different budget is a different job: no false sharing.
        let other = job().with_limits(ResourceLimits::with_steps(77));
        queue.wait(queue.submit(other));
        assert_eq!(queue.stats().result_cache.hits, 1);
        assert_eq!(queue.stats().result_cache.misses, 2);
        queue.shutdown();
    }

    #[test]
    fn one_elaboration_serves_all_rows_and_resubmissions() {
        let queue = JobQueue::start(2);
        let source = return_n(5);
        // Same source under two model sets: the second job's elaboration is a
        // session-memo hit even though its result-cache key differs.
        queue.wait(queue.submit(Job::new(source.clone(), vec![ModelConfig::concrete()])));
        queue.wait(queue.submit(Job::new(source.clone(), vec![ModelConfig::symbolic()])));
        let elab = queue.stats().elaboration_cache;
        assert_eq!((elab.hits, elab.misses), (1, 1));
        queue.shutdown();
    }

    #[test]
    fn a_slow_job_does_not_block_the_rest_of_the_batch() {
        // Worker 0 gets a job that spins its full (wall-clock-bounded)
        // budget; the fast jobs dealt behind it are stolen and finish. This
        // also exercises per-job budget isolation: only the hog times out.
        let queue = JobQueue::start(2);
        let hog = Job::new(
            "int main(void) { unsigned long i = 0; while (1) i++; return 0; }",
            vec![ModelConfig::concrete()],
        )
        .with_limits(ResourceLimits::with_steps(u64::MAX).with_wall_clock_ms(1_500));
        let fast: Vec<Job> = (0..8)
            .map(|i| Job::new(return_n(i), vec![ModelConfig::concrete()]))
            .collect();
        let mut jobs = vec![hog];
        jobs.extend(fast);
        let outcomes = queue.run_batch(jobs);
        assert!(outcomes[0]
            .matrix()
            .unwrap()
            .outcome_for("concrete")
            .unwrap()
            .any_budget_exhaustion());
        for (i, outcome) in outcomes[1..].iter().enumerate() {
            assert_eq!(
                outcome
                    .matrix()
                    .unwrap()
                    .outcome_for("concrete")
                    .unwrap()
                    .exit_value(),
                Some(i as i128)
            );
        }
        queue.shutdown();
    }

    #[test]
    fn statuses_progress_to_a_terminal_state() {
        let queue = JobQueue::start(1);
        let good = queue.submit(Job::new(return_n(0), vec![ModelConfig::concrete()]));
        let bad = queue.submit(Job::new(
            "int main(void) { return zz; }",
            vec![ModelConfig::concrete()],
        ));
        assert_eq!(queue.wait(good).status(), JobStatus::Completed);
        assert_eq!(queue.wait(bad).status(), JobStatus::Failed);
        assert_eq!(queue.status(good), Some(JobStatus::Completed));
        assert_eq!(queue.status(bad), Some(JobStatus::Failed));
        assert_eq!(queue.status(JobId(999)), None);
        assert!(queue.outcome(JobId(999)).is_none());
        queue.shutdown();
    }
}
