//! The work-stealing scheduler: a global injector plus one deque per worker.
//!
//! The shape is crossbeam's (`Injector` + per-worker `Worker`/`Stealer`
//! deques), implemented std-only: each deque is a `Mutex<VecDeque>` whose
//! owner pushes and pops at the *back* (LIFO — freshly dealt work stays warm)
//! while thieves and the injector drain from the *front* (FIFO — the oldest
//! backlog moves first, which is what keeps a suite draining in roughly
//! submission order even when one worker is stuck behind a slow job).
//!
//! The scheduler is deliberately thread-free: it only moves [`JobId`]s
//! between queues under short critical sections, so its stealing and
//! draining semantics are unit-testable without spawning a single thread
//! (the worker pool in [`crate::pool`] provides the threads).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::JobId;

/// One worker's deque. The owner treats it as a LIFO stack; everyone else
/// steals the oldest entry.
#[derive(Debug, Default)]
struct WorkDeque {
    jobs: Mutex<VecDeque<JobId>>,
}

impl WorkDeque {
    fn push(&self, id: JobId) {
        self.jobs.lock().expect("worker deque").push_back(id);
    }

    /// Owner pop: newest first.
    fn pop(&self) -> Option<JobId> {
        self.jobs.lock().expect("worker deque").pop_back()
    }

    /// Thief pop: oldest first.
    fn steal(&self) -> Option<JobId> {
        self.jobs.lock().expect("worker deque").pop_front()
    }
}

/// Per-worker activity counters, exported through
/// [`crate::QueueStats::workers`].
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    /// Jobs this worker ran to completion (including result-cache hits).
    pub(crate) executed: AtomicU64,
    /// Jobs this worker stole from another worker's deque.
    pub(crate) stolen: AtomicU64,
}

/// The queue layer of the job system: a FIFO injector for external
/// submissions plus one work-stealing deque per worker.
#[derive(Debug)]
pub(crate) struct Scheduler {
    /// External submissions land here (FIFO).
    injector: Mutex<VecDeque<JobId>>,
    /// One deque per worker, for pre-dealt batches.
    deques: Vec<WorkDeque>,
    /// Round-robin cursor for dealing batches across the deques.
    deal_cursor: AtomicUsize,
    /// Jobs queued (injector + deques) and not yet taken by any worker.
    pending: AtomicUsize,
    /// Per-worker counters, indexed like `deques`.
    pub(crate) counters: Vec<WorkerCounters>,
}

impl Scheduler {
    pub(crate) fn new(workers: usize) -> Self {
        Scheduler {
            injector: Mutex::default(),
            deques: (0..workers).map(|_| WorkDeque::default()).collect(),
            deal_cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Number of jobs queued and not yet picked up by a worker.
    pub(crate) fn depth(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Enqueue one external submission on the shared injector.
    pub(crate) fn inject(&self, id: JobId) {
        self.injector.lock().expect("injector").push_back(id);
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Deal one job of a batch onto the next worker's deque (round-robin), so
    /// a suite submission starts out evenly spread and stealing only has to
    /// correct the imbalance slow jobs introduce.
    pub(crate) fn deal(&self, id: JobId) {
        let slot = self.deal_cursor.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[slot].push(id);
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Take the next job for `worker`: its own deque first (LIFO), then the
    /// injector (FIFO), then a steal sweep over the other workers' deques
    /// starting at its right-hand neighbour (FIFO per victim). Updates the
    /// steal counter when the job came from a victim.
    pub(crate) fn take(&self, worker: usize) -> Option<JobId> {
        let found = self.deques[worker].pop().or_else(|| {
            self.injector
                .lock()
                .expect("injector")
                .pop_front()
                .or_else(|| {
                    let n = self.deques.len();
                    (1..n)
                        .map(|offset| (worker + offset) % n)
                        .find_map(|victim| self.deques[victim].steal())
                        .inspect(|_| {
                            self.counters[worker].stolen.fetch_add(1, Ordering::Relaxed);
                        })
                })
        });
        if found.is_some() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(ids: &[u64]) -> Vec<JobId> {
        ids.iter().copied().map(JobId).collect()
    }

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let s = Scheduler::new(2);
        for id in ids(&[1, 2, 3]) {
            s.deques[0].push(id);
        }
        s.pending.store(3, Ordering::SeqCst);
        // Owner sees the newest job first...
        assert_eq!(s.take(0), Some(JobId(3)));
        // ...while the thief drains the victim's oldest backlog.
        assert_eq!(s.take(1), Some(JobId(1)));
        assert_eq!(s.counters[1].stolen.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters[0].stolen.load(Ordering::Relaxed), 0);
        assert_eq!(s.take(0), Some(JobId(2)));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.take(0), None);
        assert_eq!(s.take(1), None);
    }

    #[test]
    fn injector_serves_all_workers_fifo_without_counting_as_theft() {
        let s = Scheduler::new(3);
        for id in ids(&[10, 11, 12]) {
            s.inject(id);
        }
        assert_eq!(s.depth(), 3);
        assert_eq!(s.take(2), Some(JobId(10)));
        assert_eq!(s.take(0), Some(JobId(11)));
        assert_eq!(s.take(1), Some(JobId(12)));
        for counters in &s.counters {
            assert_eq!(counters.stolen.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn dealing_spreads_round_robin_and_own_work_wins_over_stealing() {
        let s = Scheduler::new(2);
        for id in ids(&[1, 2, 3, 4]) {
            s.deal(id);
        }
        // Round-robin: worker 0 holds {1, 3}, worker 1 holds {2, 4}.
        assert_eq!(s.depth(), 4);
        // Each worker prefers its own (newest) job over stealing.
        assert_eq!(s.take(0), Some(JobId(3)));
        assert_eq!(s.take(1), Some(JobId(4)));
        assert_eq!(s.take(0), Some(JobId(1)));
        assert_eq!(s.take(1), Some(JobId(2)));
        assert_eq!(s.counters[0].stolen.load(Ordering::Relaxed), 0);
        assert_eq!(s.counters[1].stolen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn steal_sweep_starts_at_the_right_hand_neighbour() {
        let s = Scheduler::new(3);
        s.deques[1].push(JobId(21));
        s.deques[2].push(JobId(22));
        s.pending.store(2, Ordering::SeqCst);
        // Worker 0 sweeps victims 1 then 2.
        assert_eq!(s.take(0), Some(JobId(21)));
        assert_eq!(s.take(0), Some(JobId(22)));
        assert_eq!(s.counters[0].stolen.load(Ordering::Relaxed), 2);
    }
}
