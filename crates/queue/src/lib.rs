//! A program-level work-stealing job queue for differential UB exploration.
//!
//! The differential runner parallelises the rows of *one* outcome matrix;
//! real workloads — the litmus catalogue, `cerberus-gen` fuzz corpora, HTTP
//! submissions from many users — are many *(program × model-set)* pairs. This
//! crate turns each pair into a [`Job`] and fans whole suites out across a
//! pool of worker threads pulling from a work-stealing queue
//! ([`JobQueue::start`]):
//!
//! * **one elaboration per source** — workers share one memoising
//!   [`Session`], so every model row (and every re-submission) of a source
//!   reuses the same `Arc`-shared `Elaborated` artifact;
//! * **a bounded result cache** — completed jobs are memoised by
//!   (source × models × mode × budget), so identical submissions are a
//!   lookup, not a run ([`JobQueue::stats`] reports the hit/miss counters);
//! * **fault containment and resource budgets per job** — every row executes
//!   under the job's [`ResourceLimits`] with engine panics contained to
//!   [`ExecResult::EngineFault`](cerberus_exec::driver::ExecResult) rows and
//!   front-end panics contained to [`JobOutcome::FrontendFault`], so a
//!   hostile submission can never take down the pool;
//! * **deterministic results** — outcomes are recorded per [`JobId`], so a
//!   batch read back in submission order is bit-identical to running the
//!   jobs sequentially, regardless of how stealing interleaved them.
//!
//! ```
//! use cerberus_queue::{Job, JobQueue};
//!
//! let queue = JobQueue::start(2);
//! let id = queue.submit(Job::differential("int main(void) { return 42; }"));
//! let matrix = queue.wait(id).into_matrix().expect("well-formed program");
//! assert!(matrix.all_agree());
//! queue.shutdown();
//! ```
//!
//! The HTTP service in `cerberus-server` exposes this queue over versioned
//! routes; `cerberus-litmus` (`run_suite_queued`) and `cerberus-gen`
//! (`run_differential_queued`) re-route the existing suite and fuzz paths
//! through it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cerberus::pipeline::{CacheStats, Config, Session};
use cerberus::{DifferentialRunner, OutcomeMatrix, PipelineError};
use cerberus_exec::driver::ExecMode;
use cerberus_memory::config::ModelConfig;
use cerberus_memory::limits::ResourceLimits;

mod pool;
mod scheduler;

pub use pool::JobQueue;

/// Identifier of a submitted job, unique within one [`JobQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One unit of work: run one C program under a set of memory models with an
/// exploration mode and a per-execution resource budget.
#[derive(Debug, Clone)]
pub struct Job {
    /// The C source to run.
    pub source: String,
    /// The memory models to execute under (one matrix row each).
    pub models: Vec<ModelConfig>,
    /// The exploration mode for every row.
    pub mode: ExecMode,
    /// The per-execution resource budget for every row.
    pub limits: ResourceLimits,
}

impl Job {
    /// A job over the given models, with the default exploration mode and
    /// resource budget of [`Config::default`] — the same parameters the
    /// sequential suite and differential paths use, which is what keeps the
    /// queued paths bit-identical to them.
    pub fn new(source: impl Into<String>, models: Vec<ModelConfig>) -> Self {
        let defaults = Config::default();
        Job {
            source: source.into(),
            models,
            mode: defaults.mode,
            limits: defaults.limits,
        }
    }

    /// A job over every named model ([`ModelConfig::all_named`]).
    pub fn differential(source: impl Into<String>) -> Self {
        Job::new(source, ModelConfig::all_named())
    }

    /// Replace the per-execution resource budget.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replace the exploration mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The result-cache key: the exact run parameters, so two jobs share a
    /// cached result only when nothing about them could make the outcomes
    /// differ. The source string is the same key the [`Session`] elaboration
    /// memo uses; models contribute their full configuration (not just the
    /// name), mode and budget their exact values.
    pub(crate) fn cache_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::with_capacity(self.source.len() + 64);
        key.push_str(&self.source);
        for model in &self.models {
            let _ = write!(key, "\u{0}{model:?}");
        }
        let _ = write!(key, "\u{0}{:?}\u{0}{:?}", self.mode, self.limits);
        key
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Picked up by a worker and executing.
    Running,
    /// Finished with an outcome matrix ([`JobOutcome::Matrix`]).
    Completed,
    /// Finished without a matrix: the front end rejected the program
    /// ([`JobOutcome::Rejected`]) or panicked ([`JobOutcome::FrontendFault`]).
    Failed,
}

impl JobStatus {
    /// Whether the job has finished (successfully or not).
    pub fn is_finished(self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Failed)
    }

    /// The lowercase wire label used by the HTTP service.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
        }
    }
}

/// The result of a finished job.
///
/// Program-level verdicts — undefined behaviour, budget exhaustion, even
/// contained *engine* panics — all live inside the
/// [`OutcomeMatrix`] rows of the `Matrix` variant; the other variants are
/// reserved for programs that never reached execution.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The program elaborated and every model row executed (row outcomes may
    /// still be UB verdicts, timeouts, or contained engine faults).
    Matrix(OutcomeMatrix),
    /// The front end rejected the program with structured diagnostics.
    Rejected(PipelineError),
    /// The front end panicked (a pipeline defect, not a program verdict);
    /// the panic was contained and its payload captured.
    FrontendFault(String),
}

impl JobOutcome {
    /// The status this outcome implies.
    pub fn status(&self) -> JobStatus {
        match self {
            JobOutcome::Matrix(_) => JobStatus::Completed,
            JobOutcome::Rejected(_) | JobOutcome::FrontendFault(_) => JobStatus::Failed,
        }
    }

    /// The outcome matrix, if the job completed.
    pub fn into_matrix(self) -> Option<OutcomeMatrix> {
        match self {
            JobOutcome::Matrix(matrix) => Some(matrix),
            _ => None,
        }
    }

    /// The outcome matrix, if the job completed (by reference).
    pub fn matrix(&self) -> Option<&OutcomeMatrix> {
        match self {
            JobOutcome::Matrix(matrix) => Some(matrix),
            _ => None,
        }
    }
}

/// Activity counters of one pool worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker finished (cache hits included).
    pub executed: u64,
    /// Jobs this worker stole from another worker's deque.
    pub stolen: u64,
}

/// A point-in-time snapshot of the queue, exposed over `GET /api/v0/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs queued and not yet picked up by a worker.
    pub depth: usize,
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs ever finished (completed or failed).
    pub completed: u64,
    /// The bounded (job → result) cache: identical submissions resolved
    /// without a run.
    pub result_cache: CacheStats,
    /// The shared session's (source → artifact) elaboration memo.
    pub elaboration_cache: CacheStats,
    /// Per-worker counters, in worker order.
    pub workers: Vec<WorkerStats>,
}

/// The shared mutable state of one job: status plus (eventually) the
/// outcome. Completion is broadcast on the owning table's condvar.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub(crate) job: Arc<Job>,
    pub(crate) status: JobStatus,
    pub(crate) outcome: Option<JobOutcome>,
}

/// The (job id → entry) table plus the completion broadcast.
#[derive(Debug, Default)]
pub(crate) struct JobTable {
    pub(crate) entries: Mutex<std::collections::HashMap<JobId, JobEntry>>,
    pub(crate) finished: Condvar,
}

/// The bounded result cache. Like the session's elaboration memo it rolls
/// over generationally once full, so an endless stream of distinct
/// submissions (a fuzz corpus) stays bounded.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    entries: Mutex<std::collections::HashMap<String, JobOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Upper bound on memoised results; the next insert past it clears the
    /// cache (cheap generational eviction, mirroring
    /// [`Session::CACHE_CAPACITY`]).
    pub(crate) const CAPACITY: usize = 256;

    pub(crate) fn lookup(&self, key: &str) -> Option<JobOutcome> {
        let found = self.entries.lock().expect("result cache").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    pub(crate) fn insert(&self, key: String, outcome: JobOutcome) {
        let mut entries = self.entries.lock().expect("result cache");
        if entries.len() >= Self::CAPACITY {
            entries.clear();
        }
        entries.insert(key, outcome);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("result cache").len(),
            ..CacheStats::default()
        }
    }
}

/// Run one job to its outcome on the calling thread: elaborate through the
/// shared session (memoised per source), then execute every model row
/// sequentially — pool parallelism comes from running many *jobs* at once,
/// and keeping a job's rows on one worker keeps the per-job work footprint
/// predictable. Front-end panics are contained here; engine panics are
/// contained per row by the differential runner.
pub(crate) fn run_job(session: &Session, job: &Job) -> JobOutcome {
    let elaborated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.elaborate(&job.source)
    }));
    let elaborated = match elaborated {
        Ok(Ok(program)) => program,
        Ok(Err(error)) => return JobOutcome::Rejected(error),
        Err(panic) => return JobOutcome::FrontendFault(cerberus::panic_payload(&*panic)),
    };
    let runner = DifferentialRunner::new(job.models.clone())
        .with_mode(job.mode)
        .with_limits(job.limits.clone());
    JobOutcome::Matrix(runner.run_sequential(&elaborated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_exec::driver::ExecResult;

    fn return_n(n: u32) -> String {
        format!("int main(void) {{ return {n}; }}")
    }

    #[test]
    fn jobs_carry_the_sequential_defaults() {
        let job = Job::new(return_n(0), vec![ModelConfig::concrete()]);
        let defaults = Config::default();
        assert_eq!(job.mode, defaults.mode);
        assert_eq!(job.limits, defaults.limits);
        assert_eq!(Job::differential(return_n(0)).models.len(), 10);
    }

    #[test]
    fn cache_keys_separate_every_run_parameter() {
        let base = Job::new(return_n(1), vec![ModelConfig::concrete()]);
        assert_eq!(base.cache_key(), base.clone().cache_key());
        let other_source = Job::new(return_n(2), vec![ModelConfig::concrete()]);
        let other_models = Job::new(return_n(1), vec![ModelConfig::symbolic()]);
        let other_mode = base.clone().with_mode(ExecMode::Random { seed: 9 });
        let other_limits = base.clone().with_limits(ResourceLimits::with_steps(7));
        for different in [&other_source, &other_models, &other_mode, &other_limits] {
            assert_ne!(base.cache_key(), different.cache_key());
        }
    }

    #[test]
    fn run_job_produces_a_matrix_in_model_order() {
        let session = Session::default();
        let job = Job::new(
            return_n(42),
            vec![ModelConfig::concrete(), ModelConfig::symbolic()],
        );
        let outcome = run_job(&session, &job);
        assert_eq!(outcome.status(), JobStatus::Completed);
        let matrix = outcome.into_matrix().unwrap();
        let names: Vec<_> = matrix.rows().iter().map(|r| r.model).collect();
        assert_eq!(names, vec!["concrete", "symbolic"]);
        assert_eq!(
            matrix.outcome_for("concrete").unwrap().exit_value(),
            Some(42)
        );
    }

    #[test]
    fn run_job_reports_frontend_rejection_with_diagnostics() {
        let session = Session::default();
        let job = Job::new(
            "int main(void) { return zz; }",
            vec![ModelConfig::concrete()],
        );
        let outcome = run_job(&session, &job);
        assert_eq!(outcome.status(), JobStatus::Failed);
        match outcome {
            JobOutcome::Rejected(error) => assert!(error.diagnostic_count() >= 1),
            other => panic!("expected a rejection, got {other:?}"),
        }
    }

    #[test]
    fn run_job_contains_engine_panics_as_fault_rows() {
        let session = Session::default();
        let job = Job::new(
            return_n(1),
            vec![ModelConfig::panicking(), ModelConfig::concrete()],
        );
        let outcome = run_job(&session, &job);
        // An engine fault is still a *completed* job: the matrix carries the
        // structured fault row next to the healthy rows.
        assert_eq!(outcome.status(), JobStatus::Completed);
        let matrix = outcome.into_matrix().unwrap();
        assert_eq!(matrix.faulted_models(), vec!["panicking"]);
        assert_eq!(
            matrix.outcome_for("concrete").unwrap().exit_value(),
            Some(1)
        );
    }

    #[test]
    fn run_job_surfaces_budget_exhaustion_as_structured_rows() {
        let session = Session::default();
        let job = Job::new(
            "int main(void) { int i = 0; while (i < 100000) i++; return 0; }",
            vec![ModelConfig::concrete()],
        )
        .with_limits(ResourceLimits::with_steps(64));
        let matrix = run_job(&session, &job).into_matrix().unwrap();
        let row = matrix.outcome_for("concrete").unwrap();
        assert!(matches!(row.outcomes[0].result, ExecResult::Timeout(_)));
    }

    #[test]
    fn the_result_cache_is_bounded_and_counts_lookups() {
        let cache = ResultCache::default();
        let make = |i: usize| {
            (
                format!("key-{i}"),
                JobOutcome::FrontendFault(format!("payload-{i}")),
            )
        };
        for i in 0..ResultCache::CAPACITY + 3 {
            let (key, outcome) = make(i);
            assert!(cache.lookup(&key).is_none());
            cache.insert(key, outcome);
            assert!(cache.stats().entries <= ResultCache::CAPACITY);
        }
        // The generational clear fired; the survivors are the post-rollover
        // entries.
        assert_eq!(cache.stats().entries, 3);
        let (key, _) = make(ResultCache::CAPACITY + 2);
        assert!(cache.lookup(&key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, (ResultCache::CAPACITY + 3) as u64);
    }
}
