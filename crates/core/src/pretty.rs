//! Pretty printer for Core, producing the concrete syntax used in the paper's
//! Fig. 2/Fig. 3 (`let weak`, `unseq(...)`, `undef(...)`, `case ... with`).
//!
//! The printer is used by the reproduction of the Fig. 3 left-shift excerpt
//! (experiment E14) and when reporting elaborated programs for debugging.

use std::fmt::Write as _;

use crate::syntax::{Binop, BuiltinFn, Expr, MemAction, PExpr, Pattern, Polarity, PtrOp};

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Render a pattern.
pub fn pattern_to_string(p: &Pattern) -> String {
    match p {
        Pattern::Wildcard => "_".to_owned(),
        Pattern::Sym(s) => s.to_string(),
        Pattern::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(pattern_to_string).collect();
            format!("({})", inner.join(", "))
        }
        Pattern::Specified(inner) => format!("Specified({})", pattern_to_string(inner)),
        Pattern::Unspecified(inner) => format!("Unspecified({})", pattern_to_string(inner)),
    }
}

fn binop_str(op: Binop) -> &'static str {
    match op {
        Binop::Add => "+",
        Binop::Sub => "-",
        Binop::Mul => "*",
        Binop::Div => "/",
        Binop::RemT => "rem_t",
        Binop::Exp => "^",
        Binop::BitAnd => "band",
        Binop::BitOr => "bor",
        Binop::BitXor => "bxor",
        Binop::Eq => "=",
        Binop::Ne => "!=",
        Binop::Lt => "<",
        Binop::Le => "<=",
        Binop::Gt => ">",
        Binop::Ge => ">=",
        Binop::And => "/\\",
        Binop::Or => "\\/",
    }
}

fn builtin_str(f: BuiltinFn) -> &'static str {
    match f {
        BuiltinFn::IntegerPromotion => "integer_promotion",
        BuiltinFn::ConvInt => "conv_int",
        BuiltinFn::IsRepresentable => "is_representable",
        BuiltinFn::CtypeWidth => "ctype_width",
        BuiltinFn::Ivmax => "Ivmax",
        BuiltinFn::Ivmin => "Ivmin",
        BuiltinFn::SizeOf => "sizeof",
        BuiltinFn::AlignOf => "alignof",
        BuiltinFn::IsSigned => "is_signed",
        BuiltinFn::IsUnsigned => "is_unsigned",
        BuiltinFn::IsInteger => "is_integer",
        BuiltinFn::IsScalar => "is_scalar",
    }
}

/// Render a pure expression on one line.
pub fn pexpr_to_string(pe: &PExpr) -> String {
    match pe {
        PExpr::Sym(s) => s.to_string(),
        PExpr::Unit => "Unit".to_owned(),
        PExpr::Boolean(true) => "True".to_owned(),
        PExpr::Boolean(false) => "False".to_owned(),
        PExpr::Integer(v) => v.to_string(),
        PExpr::CtypeConst(ty) => format!("'{ty}'"),
        PExpr::NullPtr(ty) => format!("NULL('{ty}')"),
        PExpr::FunctionPtr(name) => format!("cfunction({name})"),
        PExpr::Undef(ub) => format!("undef({})", ub.core_name()),
        PExpr::Error(msg) => format!("error({msg:?})"),
        PExpr::Specified(inner) => format!("Specified({})", pexpr_to_string(inner)),
        PExpr::Unspecified(ty) => format!("Unspecified('{ty}')"),
        PExpr::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(pexpr_to_string).collect();
            format!("({})", inner.join(", "))
        }
        PExpr::ArrayVal(items) => {
            let inner: Vec<String> = items.iter().map(pexpr_to_string).collect();
            format!("array({})", inner.join(", "))
        }
        PExpr::StructVal(tag, members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(name, value)| format!(".{name} = {}", pexpr_to_string(value)))
                .collect();
            format!("(struct {tag}){{{}}}", inner.join(", "))
        }
        PExpr::UnionVal(tag, member, value) => {
            format!("(union {tag}){{.{member} = {}}}", pexpr_to_string(value))
        }
        PExpr::Not(inner) => format!("not({})", pexpr_to_string(inner)),
        PExpr::Binop(op, l, r) => {
            format!(
                "({} {} {})",
                pexpr_to_string(l),
                binop_str(*op),
                pexpr_to_string(r)
            )
        }
        PExpr::If(c, t, f) => format!(
            "if {} then {} else {}",
            pexpr_to_string(c),
            pexpr_to_string(t),
            pexpr_to_string(f)
        ),
        PExpr::Case(scrutinee, arms) => {
            let mut out = format!("case {} with", pexpr_to_string(scrutinee));
            for (pat, body) in arms {
                let _ = write!(
                    out,
                    " | {} => {}",
                    pattern_to_string(pat),
                    pexpr_to_string(body)
                );
            }
            out.push_str(" end");
            out
        }
        PExpr::Let(pat, value, body) => format!(
            "let {} = {} in {}",
            pattern_to_string(pat),
            pexpr_to_string(value),
            pexpr_to_string(body)
        ),
        PExpr::Builtin(f, args) => {
            let inner: Vec<String> = args.iter().map(pexpr_to_string).collect();
            format!("{}({})", builtin_str(*f), inner.join(", "))
        }
        PExpr::ArrayShift {
            ptr,
            elem_ty,
            index,
        } => format!(
            "array_shift({}, '{elem_ty}', {})",
            pexpr_to_string(ptr),
            pexpr_to_string(index)
        ),
        PExpr::MemberShift { ptr, tag, member } => {
            format!("member_shift({}, {tag}.{member})", pexpr_to_string(ptr))
        }
    }
}

fn ptrop_str(op: PtrOp) -> &'static str {
    match op {
        PtrOp::Eq => "eq",
        PtrOp::Ne => "ne",
        PtrOp::Lt => "lt",
        PtrOp::Gt => "gt",
        PtrOp::Le => "le",
        PtrOp::Ge => "ge",
        PtrOp::Diff => "ptrdiff",
        PtrOp::IntFromPtr => "intFromPtr",
        PtrOp::PtrFromInt => "ptrFromInt",
        PtrOp::ValidForDeref => "ptrValidForDeref",
    }
}

fn action_to_string(a: &MemAction) -> String {
    match a {
        MemAction::Create { align, ty } => {
            format!(
                "create({}, {})",
                pexpr_to_string(align),
                pexpr_to_string(ty)
            )
        }
        MemAction::Alloc { align, size } => {
            format!(
                "alloc({}, {})",
                pexpr_to_string(align),
                pexpr_to_string(size)
            )
        }
        MemAction::Kill(ptr) => format!("kill({})", pexpr_to_string(ptr)),
        MemAction::Store { ty, ptr, value, .. } => format!(
            "store({}, {}, {})",
            pexpr_to_string(ty),
            pexpr_to_string(ptr),
            pexpr_to_string(value)
        ),
        MemAction::Load { ty, ptr, .. } => {
            format!("load({}, {})", pexpr_to_string(ty), pexpr_to_string(ptr))
        }
    }
}

fn write_expr(out: &mut String, e: &Expr, level: usize) {
    match e {
        Expr::Pure(pe) => {
            indent(out, level);
            let _ = writeln!(out, "pure({})", pexpr_to_string(pe));
        }
        Expr::Memop(op, args) => {
            indent(out, level);
            let inner: Vec<String> = args.iter().map(pexpr_to_string).collect();
            let _ = writeln!(out, "ptrop({}, {})", ptrop_str(*op), inner.join(", "));
        }
        Expr::Action(polarity, a) => {
            indent(out, level);
            match polarity {
                Polarity::Positive => {
                    let _ = writeln!(out, "{}", action_to_string(a));
                }
                Polarity::Negative => {
                    let _ = writeln!(out, "neg({})", action_to_string(a));
                }
            }
        }
        Expr::Case(scrutinee, arms) => {
            indent(out, level);
            let _ = writeln!(out, "case {} with", pexpr_to_string(scrutinee));
            for (pat, body) in arms {
                indent(out, level);
                let _ = writeln!(out, "| {} =>", pattern_to_string(pat));
                write_expr(out, body, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Expr::Let(pat, value, body) => {
            indent(out, level);
            let _ = writeln!(
                out,
                "let {} = {} in",
                pattern_to_string(pat),
                pexpr_to_string(value)
            );
            write_expr(out, body, level + 1);
        }
        Expr::If(c, t, f) => {
            indent(out, level);
            let _ = writeln!(out, "if {} then", pexpr_to_string(c));
            write_expr(out, t, level + 1);
            indent(out, level);
            out.push_str("else\n");
            write_expr(out, f, level + 1);
        }
        Expr::Skip => {
            indent(out, level);
            out.push_str("skip\n");
        }
        Expr::Ccall(f, args) => {
            indent(out, level);
            let inner: Vec<String> = args.iter().map(pexpr_to_string).collect();
            let _ = writeln!(out, "ccall({}, {})", pexpr_to_string(f), inner.join(", "));
        }
        Expr::Unseq(items) => {
            indent(out, level);
            out.push_str("unseq(\n");
            for item in items {
                write_expr(out, item, level + 1);
            }
            indent(out, level);
            out.push_str(")\n");
        }
        Expr::Wseq(pat, first, second) => {
            indent(out, level);
            let _ = writeln!(out, "let weak {} =", pattern_to_string(pat));
            write_expr(out, first, level + 1);
            indent(out, level);
            out.push_str("in\n");
            write_expr(out, second, level + 1);
        }
        Expr::Sseq(pat, first, second) => {
            indent(out, level);
            let _ = writeln!(out, "let strong {} =", pattern_to_string(pat));
            write_expr(out, first, level + 1);
            indent(out, level);
            out.push_str("in\n");
            write_expr(out, second, level + 1);
        }
        Expr::Indet(inner) => {
            indent(out, level);
            out.push_str("indet(\n");
            write_expr(out, inner, level + 1);
            indent(out, level);
            out.push_str(")\n");
        }
        Expr::Bound(inner) => {
            indent(out, level);
            out.push_str("bound(\n");
            write_expr(out, inner, level + 1);
            indent(out, level);
            out.push_str(")\n");
        }
        Expr::Nd(items) => {
            indent(out, level);
            out.push_str("nd(\n");
            for item in items {
                write_expr(out, item, level + 1);
            }
            indent(out, level);
            out.push_str(")\n");
        }
        Expr::Save(label, body) => {
            indent(out, level);
            let _ = writeln!(out, "save {label}() in");
            write_expr(out, body, level + 1);
        }
        Expr::Exit(label, body) => {
            indent(out, level);
            let _ = writeln!(out, "exit {label}() in");
            write_expr(out, body, level + 1);
        }
        Expr::Run(label) => {
            indent(out, level);
            let _ = writeln!(out, "run {label}()");
        }
        Expr::Return(value) => {
            indent(out, level);
            let _ = writeln!(out, "return({})", pexpr_to_string(value));
        }
        Expr::Par(items) => {
            indent(out, level);
            out.push_str("par(\n");
            for item in items {
                write_expr(out, item, level + 1);
            }
            indent(out, level);
            out.push_str(")\n");
        }
    }
}

/// Render an effectful Core expression as indented concrete syntax.
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::MemOrder;
    use cerberus_ast::ctype::{Ctype, IntegerType};
    use cerberus_ast::ident::Ident;
    use cerberus_ast::ub::UbKind;

    #[test]
    fn pure_expressions_render() {
        let pe = PExpr::Binop(
            Binop::Mul,
            Box::new(PExpr::sym("sym_prm1")),
            Box::new(PExpr::Binop(
                Binop::Exp,
                Box::new(PExpr::Integer(2)),
                Box::new(PExpr::sym("sym_prm2")),
            )),
        );
        assert_eq!(pexpr_to_string(&pe), "(sym_prm1 * (2 ^ sym_prm2))");
    }

    #[test]
    fn undef_renders_with_core_name() {
        assert_eq!(
            pexpr_to_string(&PExpr::Undef(UbKind::NegativeShift)),
            "undef(Negative_shift)"
        );
        assert_eq!(
            pexpr_to_string(&PExpr::Undef(UbKind::ShiftTooLarge)),
            "undef(Shift_too_large)"
        );
    }

    #[test]
    fn sequencing_renders_like_the_paper() {
        let e = Expr::Wseq(
            Pattern::Tuple(vec![Pattern::sym("e1"), Pattern::sym("e2")]),
            Box::new(Expr::Unseq(vec![Expr::Skip, Expr::Skip])),
            Box::new(Expr::Pure(PExpr::Unit)),
        );
        let s = expr_to_string(&e);
        assert!(s.contains("let weak (e1, e2) ="));
        assert!(s.contains("unseq("));
    }

    #[test]
    fn actions_render() {
        let store = Expr::Action(
            Polarity::Negative,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(Ctype::integer(IntegerType::Int))),
                ptr: Box::new(PExpr::sym("p")),
                value: Box::new(PExpr::Integer(7)),
                order: MemOrder::NA,
            },
        );
        let s = expr_to_string(&store);
        assert!(s.contains("neg(store('int', p, 7))"));
    }

    #[test]
    fn save_run_render() {
        let e = Expr::Save(Ident::new("l"), Box::new(Expr::Run(Ident::new("l"))));
        let s = expr_to_string(&e);
        assert!(s.contains("save l() in"));
        assert!(s.contains("run l()"));
    }

    #[test]
    fn specified_and_unspecified_render() {
        assert_eq!(pexpr_to_string(&PExpr::specified_int(3)), "Specified(3)");
        assert_eq!(
            pexpr_to_string(&PExpr::Unspecified(Ctype::integer(IntegerType::Int))),
            "Unspecified('int')"
        );
    }
}
