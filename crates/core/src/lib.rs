//! The **Core** calculus of Cerberus (§5.2, Fig. 2 of the paper).
//!
//! Core is "intended to be as minimal as possible while remaining a suitable
//! target for the elaboration, and with the behaviour of Core programs made as
//! explicit as possible": a typed call-by-value language of procedures and
//! expressions with mathematical integers, explicit memory actions, and novel
//! sequencing constructs (`unseq`, weak/strong sequencing, nondeterminism,
//! `save`/`run`) that make the C evaluation order explicit.
//!
//! This crate defines the Core abstract syntax, a pretty printer (used to
//! reproduce the Fig. 3 elaboration excerpt), and Core-to-Core simplification
//! transforms. The operational semantics lives in `cerberus-exec` and the
//! memory object models in `cerberus-memory`, mirroring the paper's
//! factorisation.
//!
//! ## Deviations from the paper's Core
//!
//! * `let atomic` (needed only to pin postfix increment/decrement between
//!   other indeterminately-sequenced actions) is not modelled; postfix
//!   operators use weak sequencing with a negative-polarity store.
//! * `save`/`run` is complemented by an explicit `exit` delimiter so that
//!   `break`, `switch` dispatch and forward `goto`s can be expressed without a
//!   CPS transformation; `run l` jumps to the innermost enclosing `save l`
//!   (re-executing its body) or `exit l` (terminating it normally).

pub mod pretty;
pub mod program;
pub mod syntax;
pub mod transform;

pub use program::{CoreGlobal, CoreProc, CoreProgram};
pub use syntax::{
    Binop, BuiltinFn, CoreBaseType, Expr, MemAction, MemOrder, PExpr, Pattern, Polarity, PtrOp,
};
pub use transform::simplify_expr;
