//! Core-to-Core transformations.
//!
//! The paper's pipeline includes an optional Core-to-Core simplification pass
//! (Fig. 1, "Core-to-Core transformation"). The pass implemented here performs
//! effect-preserving simplifications: folding of pure conditionals with
//! literal tests, elimination of `skip` in strong sequences whose result is
//! discarded, flattening of single-element `unseq`/`nd`, and removal of the
//! advisory `indet`/`bound` markers (their information has already been used
//! to insert the appropriate sequencing).

use crate::syntax::{Expr, PExpr, Pattern};

/// Simplify a pure expression (constant-fold literal boolean tests and
/// not-of-literal).
pub fn simplify_pexpr(pe: PExpr) -> PExpr {
    match pe {
        PExpr::Not(inner) => match simplify_pexpr(*inner) {
            PExpr::Boolean(b) => PExpr::Boolean(!b),
            other => PExpr::Not(Box::new(other)),
        },
        PExpr::If(c, t, f) => {
            let c = simplify_pexpr(*c);
            match c {
                PExpr::Boolean(true) => simplify_pexpr(*t),
                PExpr::Boolean(false) => simplify_pexpr(*f),
                other => PExpr::If(
                    Box::new(other),
                    Box::new(simplify_pexpr(*t)),
                    Box::new(simplify_pexpr(*f)),
                ),
            }
        }
        PExpr::Specified(inner) => PExpr::Specified(Box::new(simplify_pexpr(*inner))),
        PExpr::Tuple(items) => PExpr::Tuple(items.into_iter().map(simplify_pexpr).collect()),
        other => other,
    }
}

/// Simplify an effectful Core expression while preserving its memory actions,
/// nondeterminism, and control flow.
pub fn simplify_expr(e: Expr) -> Expr {
    match e {
        Expr::Pure(pe) => Expr::Pure(simplify_pexpr(pe)),
        Expr::If(c, t, f) => {
            let c = simplify_pexpr(c);
            match c {
                PExpr::Boolean(true) => simplify_expr(*t),
                PExpr::Boolean(false) => simplify_expr(*f),
                other => Expr::If(
                    other,
                    Box::new(simplify_expr(*t)),
                    Box::new(simplify_expr(*f)),
                ),
            }
        }
        Expr::Let(pat, value, body) => {
            Expr::Let(pat, simplify_pexpr(value), Box::new(simplify_expr(*body)))
        }
        Expr::Case(scrutinee, arms) => Expr::Case(
            simplify_pexpr(scrutinee),
            arms.into_iter()
                .map(|(p, e)| (p, simplify_expr(e)))
                .collect(),
        ),
        Expr::Unseq(mut items) => {
            if items.len() == 1 {
                simplify_expr(items.remove(0))
            } else {
                Expr::Unseq(items.into_iter().map(simplify_expr).collect())
            }
        }
        Expr::Nd(mut items) => {
            if items.len() == 1 {
                simplify_expr(items.remove(0))
            } else {
                Expr::Nd(items.into_iter().map(simplify_expr).collect())
            }
        }
        Expr::Wseq(pat, first, second) => {
            let first = simplify_expr(*first);
            let second = simplify_expr(*second);
            if matches!(pat, Pattern::Wildcard) && first == Expr::Skip {
                second
            } else {
                Expr::Wseq(pat, Box::new(first), Box::new(second))
            }
        }
        Expr::Sseq(pat, first, second) => {
            let first = simplify_expr(*first);
            let second = simplify_expr(*second);
            if matches!(pat, Pattern::Wildcard) && first == Expr::Skip {
                second
            } else {
                Expr::Sseq(pat, Box::new(first), Box::new(second))
            }
        }
        Expr::Indet(inner) | Expr::Bound(inner) => simplify_expr(*inner),
        Expr::Save(label, body) => Expr::Save(label, Box::new(simplify_expr(*body))),
        Expr::Exit(label, body) => Expr::Exit(label, Box::new(simplify_expr(*body))),
        Expr::Par(items) => Expr::Par(items.into_iter().map(simplify_expr).collect()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{MemAction, MemOrder, Polarity};
    use cerberus_ast::ctype::{Ctype, IntegerType};

    fn a_store() -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(Ctype::integer(IntegerType::Int))),
                ptr: Box::new(PExpr::sym("p")),
                value: Box::new(PExpr::Integer(1)),
                order: MemOrder::NA,
            },
        )
    }

    #[test]
    fn literal_conditionals_fold() {
        let e = Expr::If(
            PExpr::Boolean(true),
            Box::new(a_store()),
            Box::new(Expr::Skip),
        );
        assert_eq!(simplify_expr(e), a_store());
        let e = Expr::If(
            PExpr::Boolean(false),
            Box::new(a_store()),
            Box::new(Expr::Skip),
        );
        assert_eq!(simplify_expr(e), Expr::Skip);
    }

    #[test]
    fn skip_sequences_collapse() {
        let e = Expr::seq(Expr::Skip, a_store());
        assert_eq!(simplify_expr(e), a_store());
    }

    #[test]
    fn effects_are_never_dropped() {
        let e = Expr::seq(a_store(), Expr::Skip);
        let s = simplify_expr(e);
        assert!(s.has_effects());
    }

    #[test]
    fn indet_bound_markers_are_erased() {
        let e = Expr::Indet(Box::new(Expr::Bound(Box::new(a_store()))));
        assert_eq!(simplify_expr(e), a_store());
    }

    #[test]
    fn singleton_unseq_flattens() {
        let e = Expr::Unseq(vec![a_store()]);
        assert_eq!(simplify_expr(e), a_store());
        let e2 = Expr::Unseq(vec![a_store(), Expr::Skip]);
        assert!(matches!(simplify_expr(e2), Expr::Unseq(items) if items.len() == 2));
    }

    #[test]
    fn pure_not_folds() {
        assert_eq!(
            simplify_pexpr(PExpr::Not(Box::new(PExpr::Boolean(false)))),
            PExpr::Boolean(true)
        );
    }
}
