//! Core abstract syntax (the paper's Fig. 2, with the deviations documented
//! at the crate root).

use cerberus_ast::ctype::{Ctype, TagId};
use cerberus_ast::ident::Ident;
use cerberus_ast::ub::UbKind;

/// Core base types, used by the lightweight Core type checker and by the
/// pretty printer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreBaseType {
    /// The unit type.
    Unit,
    /// Booleans.
    Boolean,
    /// First-class representations of C type expressions.
    CtypeTy,
    /// Mathematical integers (Core arithmetic is unbounded; C-level wrapping
    /// is made explicit by the elaboration).
    Integer,
    /// C pointer values.
    Pointer,
    /// A loaded value: either a specified object value or an unspecified
    /// value of a recorded C type.
    Loaded(Box<CoreBaseType>),
    /// Tuples.
    Tuple(Vec<CoreBaseType>),
    /// A C object value of the given type.
    Object(Ctype),
}

/// Polarity of a memory action (§5.6): negative actions are not part of a
/// value computation and are only ordered by strong sequencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Part of the value computation; ordered by both weak and strong
    /// sequencing.
    Positive,
    /// A side effect outside the value computation (e.g. the store of a
    /// postfix increment); ordered only by strong sequencing.
    Negative,
}

/// C11 memory orders, used when Core is linked against the operational
/// concurrency model; `NA` is the non-atomic order used by the sequential
/// memory object models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOrder {
    /// Non-atomic.
    NA,
    /// `memory_order_seq_cst`.
    SeqCst,
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire`.
    Acquire,
    /// `memory_order_release`.
    Release,
}

/// Binary operators of Core, over mathematical integers and booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binop {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Remainder (truncated, `rem_t` in the paper).
    RemT,
    /// Exponentiation (used by the shift elaboration: `E1 * 2^E2`).
    Exp,
    /// Bitwise AND over the two's-complement representation (an extension of
    /// the paper's Core binop set so `&`, `|`, `^` need no auxiliary
    /// procedures).
    BitAnd,
    /// Bitwise inclusive OR.
    BitOr,
    /// Bitwise exclusive OR.
    BitXor,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

/// The pointer operations that involve the memory state (`ptrop` in Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrOp {
    /// Pointer equality (`==`).
    Eq,
    /// Pointer inequality (`!=`).
    Ne,
    /// Relational `<`.
    Lt,
    /// Relational `>`.
    Gt,
    /// Relational `<=`.
    Le,
    /// Relational `>=`.
    Ge,
    /// Pointer subtraction (`ptrdiff`).
    Diff,
    /// Cast of a pointer value to an integer value (`intFromPtr`).
    IntFromPtr,
    /// Cast of an integer value to a pointer value (`ptrFromInt`).
    PtrFromInt,
    /// Dereferencing-validity predicate (`ptrValidForDeref`).
    ValidForDeref,
}

/// The builtin pure functions of the Core standard library used by the
/// elaboration (the paper's `integer_promotion`, `ctype_width`,
/// `is_representable`, `Ivmax`, … auxiliaries, provided here as primitives and
/// interpreted against the implementation-defined environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFn {
    /// The integer promotion of a C integer type applied to a value
    /// (6.3.1.1p2); arguments: ctype, integer.
    IntegerPromotion,
    /// Conversion of an integer value to a C integer type (6.3.1.3);
    /// arguments: ctype, integer.
    ConvInt,
    /// Whether an integer value is representable in a C type; arguments:
    /// ctype, integer.
    IsRepresentable,
    /// The width in bits of a C integer type; argument: ctype.
    CtypeWidth,
    /// The maximum value of a C integer type; argument: ctype.
    Ivmax,
    /// The minimum value of a C integer type; argument: ctype.
    Ivmin,
    /// `sizeof`; argument: ctype.
    SizeOf,
    /// `_Alignof`; argument: ctype.
    AlignOf,
    /// Whether a C type is a signed integer type; argument: ctype.
    IsSigned,
    /// Whether a C type is an unsigned integer type; argument: ctype.
    IsUnsigned,
    /// Whether a C type is an integer type; argument: ctype.
    IsInteger,
    /// Whether a C type is a scalar type; argument: ctype.
    IsScalar,
}

/// Patterns, used by Core `let` and `case`.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `_`.
    Wildcard,
    /// An identifier binding.
    Sym(Ident),
    /// A tuple pattern.
    Tuple(Vec<Pattern>),
    /// `Specified(p)` — a loaded value that is not unspecified.
    Specified(Box<Pattern>),
    /// `Unspecified(p)` — an unspecified loaded value; the sub-pattern binds
    /// the recorded C type.
    Unspecified(Box<Pattern>),
}

impl Pattern {
    /// Shorthand for a single-identifier pattern.
    pub fn sym(name: impl Into<String>) -> Self {
        Pattern::Sym(Ident::new(name))
    }
}

/// Memory actions (`a` in Fig. 2); operands are pure expressions because the
/// elaboration always evaluates them first.
#[derive(Debug, Clone, PartialEq)]
pub enum MemAction {
    /// Create an object for a C type (static or automatic storage): alignment
    /// and type.
    Create { align: Box<PExpr>, ty: Box<PExpr> },
    /// Allocate a dynamic region (malloc-style): alignment and size in bytes.
    Alloc { align: Box<PExpr>, size: Box<PExpr> },
    /// End the lifetime of the object a pointer refers to.
    Kill(Box<PExpr>),
    /// Store a value through a pointer at a C type.
    Store {
        ty: Box<PExpr>,
        ptr: Box<PExpr>,
        value: Box<PExpr>,
        order: MemOrder,
    },
    /// Load a value through a pointer at a C type.
    Load {
        ty: Box<PExpr>,
        ptr: Box<PExpr>,
        order: MemOrder,
    },
}

/// Pure (effect-free) Core expressions (`pe` in Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// A Core identifier.
    Sym(Ident),
    /// The unit value.
    Unit,
    /// A boolean literal.
    Boolean(bool),
    /// A mathematical integer literal.
    Integer(i128),
    /// A C type expression as a first-class value.
    CtypeConst(Ctype),
    /// The null pointer of a given referenced type.
    NullPtr(Ctype),
    /// A C function designator used as a value (function pointer).
    FunctionPtr(Ident),
    /// Undefined behaviour: evaluating this terminates the execution with the
    /// recorded UB (§5.4).
    Undef(UbKind),
    /// An implementation-defined static error (e.g. an unsupported construct
    /// reached at runtime).
    Error(String),
    /// `Specified(pe)` — a non-unspecified loaded value.
    Specified(Box<PExpr>),
    /// `Unspecified(τ)` — an unspecified loaded value of C type τ.
    Unspecified(Ctype),
    /// A tuple.
    Tuple(Vec<PExpr>),
    /// An array value (used by aggregate initialisation).
    ArrayVal(Vec<PExpr>),
    /// A struct value: tag and member values in declaration order.
    StructVal(TagId, Vec<(Ident, PExpr)>),
    /// A union value: tag, active member and its value.
    UnionVal(TagId, Ident, Box<PExpr>),
    /// Boolean negation.
    Not(Box<PExpr>),
    /// A binary operation over mathematical integers / booleans.
    Binop(Binop, Box<PExpr>, Box<PExpr>),
    /// Pure conditional (the test must be pure).
    If(Box<PExpr>, Box<PExpr>, Box<PExpr>),
    /// Pure pattern match.
    Case(Box<PExpr>, Vec<(Pattern, PExpr)>),
    /// Pure let.
    Let(Pattern, Box<PExpr>, Box<PExpr>),
    /// A call to a builtin pure function of the Core standard library.
    Builtin(BuiltinFn, Vec<PExpr>),
    /// Pointer array shift: `array_shift(ptr, τ, index)` advances a pointer by
    /// `index` elements of type τ (no memory access).
    ArrayShift {
        ptr: Box<PExpr>,
        elem_ty: Ctype,
        index: Box<PExpr>,
    },
    /// Pointer member shift: `member_shift(ptr, tag.member)` moves a pointer
    /// to a struct/union member (no memory access).
    MemberShift {
        ptr: Box<PExpr>,
        tag: TagId,
        member: Ident,
    },
}

impl PExpr {
    /// Shorthand for an identifier use.
    pub fn sym(name: impl Into<String>) -> Self {
        PExpr::Sym(Ident::new(name))
    }

    /// Shorthand for a `Specified` integer literal.
    pub fn specified_int(v: i128) -> Self {
        PExpr::Specified(Box::new(PExpr::Integer(v)))
    }

    /// Whether the expression is a literal value (no free symbols, no
    /// computation).
    pub fn is_value(&self) -> bool {
        match self {
            PExpr::Unit
            | PExpr::Boolean(_)
            | PExpr::Integer(_)
            | PExpr::CtypeConst(_)
            | PExpr::NullPtr(_)
            | PExpr::FunctionPtr(_)
            | PExpr::Unspecified(_) => true,
            PExpr::Specified(inner) => inner.is_value(),
            PExpr::Tuple(items) | PExpr::ArrayVal(items) => items.iter().all(PExpr::is_value),
            PExpr::StructVal(_, members) => members.iter().all(|(_, v)| v.is_value()),
            PExpr::UnionVal(_, _, v) => v.is_value(),
            _ => false,
        }
    }
}

/// Effectful Core expressions (`e` in Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A pure expression.
    Pure(PExpr),
    /// A pointer operation that involves the memory state.
    Memop(PtrOp, Vec<PExpr>),
    /// A memory action with its polarity.
    Action(Polarity, MemAction),
    /// Effectful pattern match.
    Case(PExpr, Vec<(Pattern, Expr)>),
    /// `let pat = pe in e` — bind a pure value in an effectful continuation.
    Let(Pattern, PExpr, Box<Expr>),
    /// Effectful conditional (the test is pure).
    If(PExpr, Box<Expr>, Box<Expr>),
    /// `skip`.
    Skip,
    /// Call of a C function (by designator value) with already-evaluated
    /// arguments.
    Ccall(Box<PExpr>, Vec<PExpr>),
    /// Unsequenced evaluation of several expressions; reduces to the tuple of
    /// their values. Conflicting accesses between siblings are an unsequenced
    /// race (6.5p2).
    Unseq(Vec<Expr>),
    /// Weak sequencing: only the *positive* actions of the first expression
    /// are sequenced before the second.
    Wseq(Pattern, Box<Expr>, Box<Expr>),
    /// Strong sequencing: all actions of the first expression are sequenced
    /// before the second.
    Sseq(Pattern, Box<Expr>, Box<Expr>),
    /// Marks a subexpression as indeterminately sequenced w.r.t. its context
    /// (function bodies in expressions).
    Indet(Box<Expr>),
    /// Delimits the context of indeterminate sequencing (the original full
    /// expression).
    Bound(Box<Expr>),
    /// Nondeterministic choice between alternatives.
    Nd(Vec<Expr>),
    /// `save l in e` — a label whose body is `e`; `run l` within re-executes
    /// the body (loop/backward-jump semantics).
    Save(Ident, Box<Expr>),
    /// `exit l in e` — a delimiter; `run l` within terminates `e` normally
    /// with unit (break/forward-jump semantics).
    Exit(Ident, Box<Expr>),
    /// Jump to the innermost enclosing `save`/`exit` for the label.
    Run(Ident),
    /// Return from the current C function with a (loaded) value.
    Return(Box<PExpr>),
    /// Spawn threads evaluating the expressions in parallel (restricted C11
    /// concurrency instantiation).
    Par(Vec<Expr>),
}

impl Expr {
    /// Strong-sequence two expressions, discarding the first value.
    pub fn seq(first: Expr, second: Expr) -> Expr {
        Expr::Sseq(Pattern::Wildcard, Box::new(first), Box::new(second))
    }

    /// Strong-sequence a list of expressions, discarding intermediate values;
    /// an empty list is `skip`.
    pub fn seq_all(items: Vec<Expr>) -> Expr {
        let mut iter = items.into_iter().rev();
        match iter.next() {
            None => Expr::Skip,
            Some(last) => iter.fold(last, |acc, e| Expr::seq(e, acc)),
        }
    }

    /// Whether the expression contains any memory action (used by tests and
    /// by the simplifier to preserve effects).
    pub fn has_effects(&self) -> bool {
        match self {
            Expr::Pure(_) | Expr::Skip | Expr::Run(_) => false,
            Expr::Memop(..) | Expr::Action(..) | Expr::Ccall(..) | Expr::Return(_) => true,
            Expr::Case(_, arms) => arms.iter().any(|(_, e)| e.has_effects()),
            Expr::Let(_, _, e)
            | Expr::Indet(e)
            | Expr::Bound(e)
            | Expr::Save(_, e)
            | Expr::Exit(_, e) => e.has_effects(),
            Expr::If(_, a, b) => a.has_effects() || b.has_effects(),
            Expr::Unseq(es) | Expr::Nd(es) | Expr::Par(es) => es.iter().any(Expr::has_effects),
            Expr::Wseq(_, a, b) | Expr::Sseq(_, a, b) => a.has_effects() || b.has_effects(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ctype::IntegerType;

    #[test]
    fn pexpr_value_detection() {
        assert!(PExpr::Integer(3).is_value());
        assert!(PExpr::specified_int(3).is_value());
        assert!(PExpr::Unspecified(Ctype::integer(IntegerType::Int)).is_value());
        assert!(!PExpr::sym("x").is_value());
        assert!(!PExpr::Binop(
            Binop::Add,
            Box::new(PExpr::Integer(1)),
            Box::new(PExpr::Integer(2))
        )
        .is_value());
        assert!(PExpr::Tuple(vec![PExpr::Unit, PExpr::Boolean(true)]).is_value());
    }

    #[test]
    fn seq_all_builds_right_nested_sequences() {
        let e = Expr::seq_all(vec![Expr::Skip, Expr::Skip, Expr::Pure(PExpr::Unit)]);
        match e {
            Expr::Sseq(_, first, rest) => {
                assert_eq!(*first, Expr::Skip);
                assert!(matches!(*rest, Expr::Sseq(..)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert_eq!(Expr::seq_all(vec![]), Expr::Skip);
    }

    #[test]
    fn effect_detection() {
        let store = Expr::Action(
            Polarity::Positive,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(Ctype::integer(IntegerType::Int))),
                ptr: Box::new(PExpr::sym("p")),
                value: Box::new(PExpr::Integer(1)),
                order: MemOrder::NA,
            },
        );
        assert!(store.has_effects());
        assert!(!Expr::Pure(PExpr::Integer(1)).has_effects());
        assert!(Expr::seq(Expr::Skip, store).has_effects());
        assert!(!Expr::seq(Expr::Skip, Expr::Skip).has_effects());
    }

    #[test]
    fn pattern_shorthand() {
        assert_eq!(Pattern::sym("x"), Pattern::Sym(Ident::new("x")));
    }
}
