//! Whole Core programs: "a set of Core declarations together with the name of
//! the startup (main) function; a set of struct and union type definitions; a
//! set of names, core types, and allocation/initialisation expressions for C
//! objects with static storage duration" (Fig. 2's closing description).

use std::collections::HashMap;

use cerberus_ast::ctype::Ctype;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::TagRegistry;

use crate::syntax::Expr;

/// A Core procedure: the elaboration of a C function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreProc {
    /// The C function name.
    pub name: Ident,
    /// Parameter symbols and their C types; the body begins by creating one
    /// object per parameter and storing the incoming argument value into it.
    pub params: Vec<(Ident, Ctype)>,
    /// The C return type.
    pub return_ty: Ctype,
    /// The elaborated body.
    pub body: Expr,
}

/// A C object with static storage duration, with its initialisation
/// expression (evaluated before `main`, in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreGlobal {
    /// The object name.
    pub name: Ident,
    /// The object's C type.
    pub ty: Ctype,
    /// The elaborated initialisation expression; objects without an explicit
    /// initialiser are zero-initialised (6.7.9p10), expressed here by an
    /// expression storing the zero value.
    pub init: Expr,
}

/// A complete elaborated program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreProgram {
    /// Struct/union definitions carried over from the front end.
    pub tags: TagRegistry,
    /// Static-storage objects in declaration order.
    pub globals: Vec<CoreGlobal>,
    /// String-literal objects: a generated name and the bytes (including the
    /// terminating NUL).
    pub string_literals: Vec<(Ident, Vec<u8>)>,
    /// Core procedures, keyed by C function name.
    pub procs: HashMap<String, CoreProc>,
    /// The startup function name, if the program defines `main`.
    pub main: Option<Ident>,
}

impl CoreProgram {
    /// Look up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&CoreProc> {
        self.procs.get(name)
    }

    /// Total number of procedures.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::PExpr;
    use cerberus_ast::ctype::IntegerType;

    #[test]
    fn program_lookup() {
        let mut p = CoreProgram::default();
        p.procs.insert(
            "main".to_owned(),
            CoreProc {
                name: Ident::new("main"),
                params: vec![],
                return_ty: Ctype::integer(IntegerType::Int),
                body: Expr::Pure(PExpr::Integer(0)),
            },
        );
        p.main = Some(Ident::new("main"));
        assert!(p.proc("main").is_some());
        assert!(p.proc("absent").is_none());
        assert_eq!(p.proc_count(), 1);
    }
}
