//! The de facto standards surveys (§1–§2 of the paper), encoded as data with
//! the analysis that reproduces every number the paper quotes.
//!
//! The paper ran two surveys: an in-depth 2013 expert survey (42 questions)
//! and a simplified 2015 survey of 15 questions distributed to a technically
//! expert audience, which received 323 responses. This crate encodes the
//! published response counts (the expertise table and the per-question
//! splits quoted in §2) and recomputes the percentages, so the survey tables
//! of the paper (experiments E1, E3, E4, E6–E10) can be regenerated.

/// One row of the respondent-expertise table (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertiseRow {
    /// The expertise category as printed in the paper.
    pub category: &'static str,
    /// The number of respondents reporting it.
    pub count: u32,
}

/// The respondent-expertise table of §2 (323 responses total; respondents
/// could report several kinds of expertise).
pub fn respondent_expertise() -> Vec<ExpertiseRow> {
    let rows = [
        ("C applications programming", 255),
        ("C systems programming", 230),
        ("Linux developer", 160),
        ("Other OS developer", 111),
        ("C embedded systems programming", 135),
        ("C standard", 70),
        ("C or C++ standards committee member", 8),
        ("Compiler internals", 64),
        ("GCC developer", 15),
        ("Clang developer", 26),
        ("Other C compiler developer", 22),
        ("Program analysis tools", 44),
        ("Formal semantics", 18),
        ("no response", 6),
        ("other", 18),
    ];
    rows.iter()
        .map(|&(category, count)| ExpertiseRow { category, count })
        .collect()
}

/// The total number of responses to the 2015 survey.
pub const TOTAL_RESPONSES: u32 = 323;

/// The number of questions in the two survey versions.
pub const QUESTIONS_2013: u32 = 42;
/// The number of questions in the simplified 2015 survey.
pub const QUESTIONS_2015: u32 = 15;

/// One answer option of a survey question with its response count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerCount {
    /// The answer text (abbreviated as in the paper).
    pub answer: &'static str,
    /// Number of respondents choosing it.
    pub count: u32,
}

impl AnswerCount {
    /// The percentage of the total 2015 responses, rounded to the nearest
    /// integer (as the paper prints them).
    pub fn percentage(&self) -> u32 {
        ((f64::from(self.count) / f64::from(TOTAL_RESPONSES)) * 100.0).round() as u32
    }
}

/// A survey question with its published response counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyQuestion {
    /// The index in the 2015 survey, `[n/15]`.
    pub index: u8,
    /// The paper's design-space question number it corresponds to, if stated.
    pub design_question: Option<u32>,
    /// A short statement of the question.
    pub statement: &'static str,
    /// The response counts (only the splits the paper publishes).
    pub answers: Vec<AnswerCount>,
}

/// The survey questions whose response counts the paper publishes, with those
/// counts.
pub fn published_questions() -> Vec<SurveyQuestion> {
    vec![
        SurveyQuestion {
            index: 2,
            design_question: Some(43),
            statement: "What happens when reading an uninitialised variable or struct member?",
            answers: vec![
                AnswerCount { answer: "undefined behaviour", count: 139 },
                AnswerCount { answer: "unpredictable result of any expression involving it", count: 42 },
                AnswerCount { answer: "arbitrary and unstable value", count: 21 },
                AnswerCount { answer: "arbitrary but stable value", count: 112 },
            ],
        },
        SurveyQuestion {
            index: 5,
            design_question: Some(13),
            statement: "Can one make a usable copy of a pointer by copying its representation bytes?",
            answers: vec![
                AnswerCount { answer: "yes", count: 216 },
                AnswerCount { answer: "only sometimes", count: 50 },
                AnswerCount { answer: "no", count: 18 },
                AnswerCount { answer: "don't know", count: 24 },
            ],
        },
        SurveyQuestion {
            index: 7,
            design_question: Some(25),
            statement: "Can one do relational comparison of two pointers to separately allocated objects? (will it work)",
            answers: vec![
                AnswerCount { answer: "yes", count: 191 },
                AnswerCount { answer: "only sometimes", count: 52 },
                AnswerCount { answer: "no", count: 31 },
                AnswerCount { answer: "don't know", count: 38 },
                AnswerCount { answer: "don't know what the question is asking", count: 3 },
            ],
        },
        SurveyQuestion {
            index: 7,
            design_question: Some(25),
            statement: "Do you know of real code that relies on relational comparison across objects?",
            answers: vec![
                AnswerCount { answer: "yes", count: 101 },
                AnswerCount { answer: "yes, but it shouldn't", count: 37 },
                AnswerCount { answer: "no, but there might well be", count: 89 },
                AnswerCount { answer: "no, that would be crazy", count: 50 },
                AnswerCount { answer: "don't know", count: 27 },
            ],
        },
        SurveyQuestion {
            index: 9,
            design_question: Some(31),
            statement: "Can one transiently construct out-of-bounds pointers (brought back in bounds before use)?",
            answers: vec![
                AnswerCount { answer: "yes", count: 230 },
                AnswerCount { answer: "only sometimes", count: 43 },
                AnswerCount { answer: "no", count: 13 },
                AnswerCount { answer: "don't know", count: 27 },
            ],
        },
        SurveyQuestion {
            index: 11,
            design_question: Some(75),
            statement: "Can a character array (static or automatic) be used like a malloc'd region to hold other types? (will it work)",
            answers: vec![AnswerCount { answer: "yes", count: 243 }],
        },
        SurveyQuestion {
            index: 11,
            design_question: Some(75),
            statement: "Do you know of real code that relies on character-array reuse?",
            answers: vec![AnswerCount { answer: "yes", count: 201 }],
        },
    ]
}

/// The percentages the paper quotes for a question, recomputed from the
/// counts.
pub fn percentages(question: &SurveyQuestion) -> Vec<(&'static str, u32)> {
    question
        .answers
        .iter()
        .map(|a| (a.answer, a.percentage()))
        .collect()
}

/// Aggregate statistics used by experiment E3 (from
/// `cerberus_ast::questions`-style classification): re-exported constants
/// of the paper's headline claims about the question catalogue.
pub mod aggregates {
    /// Total number of design-space questions.
    pub const TOTAL_QUESTIONS: usize = 85;
    /// Questions where the ISO standard is unclear.
    pub const ISO_UNCLEAR: usize = 38;
    /// Questions where the de facto standards are unclear.
    pub const DE_FACTO_UNCLEAR: usize = 28;
    /// Questions where ISO and de facto standards differ significantly.
    pub const ISO_DE_FACTO_DIFFER: usize = 26;
    /// Number of hand-written semantic test cases accompanying the questions.
    pub const SEMANTIC_TESTS: usize = 196;
    /// Codebases examined by Chisnall et al. in which transient out-of-bounds
    /// pointer construction was found (Q31): 7 of 13.
    pub const OOB_CODEBASES: (usize, usize) = (7, 13);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expertise_table_matches_the_paper() {
        let table = respondent_expertise();
        assert_eq!(table.len(), 15);
        let get = |name: &str| table.iter().find(|r| r.category == name).unwrap().count;
        assert_eq!(get("C applications programming"), 255);
        assert_eq!(get("C systems programming"), 230);
        assert_eq!(get("Linux developer"), 160);
        assert_eq!(get("C or C++ standards committee member"), 8);
        assert_eq!(get("Formal semantics"), 18);
    }

    #[test]
    fn q7_percentages_match_the_paper() {
        // "yes: 191 (60%) only sometimes: 52 (16%), no: 31 (9%), don't know:
        // 38 (12%)".
        let qs = published_questions();
        let q7 = qs
            .iter()
            .find(|q| q.index == 7 && q.statement.contains("will it work"))
            .unwrap();
        let p = percentages(q7);
        assert_eq!(p[0].0, "yes");
        // The paper rounds 191/323 to 60%; allow either rounding.
        assert!(p[0].1 == 59 || p[0].1 == 60);
        assert_eq!(p[1].1, 16);
        assert!(p[2].1 == 9 || p[2].1 == 10);
        assert_eq!(p[3].1, 12);
    }

    #[test]
    fn q2_is_bimodal() {
        let qs = published_questions();
        let q2 = qs.iter().find(|q| q.index == 2).unwrap();
        let p = percentages(q2);
        assert_eq!(p[0].1, 43); // undefined behaviour: 43%
        assert_eq!(p[3].1, 35); // arbitrary but stable: 35%
                                // The two modes together dominate.
        assert!(p[0].1 + p[3].1 > 70);
    }

    #[test]
    fn q9_oob_pointers_are_widely_expected_to_work() {
        let qs = published_questions();
        let q9 = qs.iter().find(|q| q.index == 9).unwrap();
        let p = percentages(q9);
        assert!(p[0].1 >= 70, "the paper reports 73% yes");
    }

    #[test]
    fn q11_char_array_reuse() {
        let qs = published_questions();
        let q11 = qs
            .iter()
            .find(|q| q.index == 11 && q.statement.contains("will it work"))
            .unwrap();
        assert!(percentages(q11)[0].1 >= 75, "the paper reports 76%");
    }

    #[test]
    fn q5_pointer_copying() {
        let qs = published_questions();
        let q5 = qs.iter().find(|q| q.index == 5).unwrap();
        let p = percentages(q5);
        assert!(
            p[0].1 >= 66 && p[0].1 <= 68,
            "the paper reports 68%: {}",
            p[0].1
        );
    }

    #[test]
    fn aggregates_match() {
        assert_eq!(aggregates::TOTAL_QUESTIONS, 85);
        assert_eq!(aggregates::ISO_UNCLEAR, 38);
        assert_eq!(aggregates::DE_FACTO_UNCLEAR, 28);
        assert_eq!(aggregates::ISO_DE_FACTO_DIFFER, 26);
        assert_eq!(aggregates::SEMANTIC_TESTS, 196);
    }

    #[test]
    fn counts_do_not_exceed_total_responses() {
        for q in published_questions() {
            for a in &q.answers {
                assert!(a.count <= TOTAL_RESPONSES);
            }
            let sum: u32 = q.answers.iter().map(|a| a.count).sum();
            assert!(sum <= TOTAL_RESPONSES);
        }
    }
}
