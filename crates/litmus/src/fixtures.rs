//! The golden-file fixture corpus: discovery, metadata parsing, expectation
//! loading and expectation-document building.
//!
//! Each litmus test is a pair of files under the fixture root (by default
//! `tests/fixtures/` at the workspace root, overridable with the
//! `CERBERUS_FIXTURES` environment variable):
//!
//! * `<group>/<name>.c` — the program, with a metadata header of
//!   line comments (`// @question: 11`, `// @category: provenance-basics`);
//! * `<group>/<name>.expect` — the per-model verdict matrix as deterministic
//!   JSON: `{"matrix": {"<model>": <program outcome>, ...}}`, where each cell
//!   is exactly [`cerberus_wire::outcome::program_outcome_to_json`]'s shape —
//!   the same document a `/api/v0/jobs/{id}` row or `reproduce --json` emits
//!   for that execution.
//!
//! Adding a test is data entry: drop a `.c` file in a group directory and run
//! the harness with `CERBERUS_UPDATE_FIXTURES=1` to materialise its `.expect`
//! file (then review the recorded verdicts like any other diff). A missing
//! `.expect` file loads as a test with no recorded expectations, which is what
//! lets regeneration bootstrap.

use std::path::{Path, PathBuf};

use cerberus::memory::config::ModelConfig;
use cerberus::OutcomeMatrix;
use cerberus_ast::questions::QuestionCategory;
use cerberus_ast::ub::UbKind;
use cerberus_wire::json::Json;

use crate::{Expected, LitmusTest};

/// The fixture corpus root: `$CERBERUS_FIXTURES` if set, otherwise
/// `tests/fixtures/` at the workspace root (resolved at compile time, so the
/// suite is independent of the working directory).
pub fn fixtures_root() -> PathBuf {
    std::env::var_os("CERBERUS_FIXTURES")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures"))
        })
}

/// One discovered fixture: its group directory, test name, and file paths.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FixtureEntry {
    /// The group directory name (organisational only; the semantic category
    /// comes from the `@category` header).
    pub group: String,
    /// The test name (the `.c` file stem).
    pub name: String,
    /// Path to the C source file.
    pub source_path: PathBuf,
    /// Path of the sibling `.expect` file (which may not exist yet).
    pub expect_path: PathBuf,
}

/// Discover every fixture under `root`, sorted by `(group, name)` so every
/// traversal of the corpus is deterministic. Entries whose name starts with
/// `_` (for example the `_snapshots` directory) are not fixtures.
pub fn discover(root: &Path) -> Vec<FixtureEntry> {
    let mut entries = Vec::new();
    let groups = std::fs::read_dir(root)
        .unwrap_or_else(|e| panic!("cannot read fixture root {}: {e}", root.display()));
    for group in groups.flatten() {
        let group_name = group.file_name().to_string_lossy().into_owned();
        if group_name.starts_with('_') || !group.path().is_dir() {
            continue;
        }
        for file in std::fs::read_dir(group.path())
            .unwrap_or_else(|e| panic!("cannot read fixture group {group_name}: {e}"))
            .flatten()
        {
            let path = file.path();
            if path.extension().is_some_and(|ext| ext == "c") {
                let name = path
                    .file_stem()
                    .expect("a .c file has a stem")
                    .to_string_lossy()
                    .into_owned();
                if name.starts_with('_') {
                    continue;
                }
                entries.push(FixtureEntry {
                    group: group_name.clone(),
                    expect_path: path.with_extension("expect"),
                    source_path: path,
                    name,
                });
            }
        }
    }
    entries.sort();
    entries
}

/// Parse the `// @question:` / `// @category:` metadata header of a fixture
/// source. The category is required; the question number is optional.
fn parse_metadata(name: &str, source: &str) -> (Option<u32>, QuestionCategory) {
    let mut question = None;
    let mut category = None;
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else {
            // The metadata header is the leading comment block; stop at the
            // first non-comment line.
            if line.trim().is_empty() {
                continue;
            }
            break;
        };
        let rest = rest.trim();
        if let Some(value) = rest.strip_prefix("@question:") {
            question =
                Some(value.trim().parse::<u32>().unwrap_or_else(|e| {
                    panic!("fixture {name}: malformed @question {value:?}: {e}")
                }));
        } else if let Some(value) = rest.strip_prefix("@category:") {
            let slug = value.trim();
            category = Some(
                QuestionCategory::from_slug(slug)
                    .unwrap_or_else(|| panic!("fixture {name}: unknown @category slug {slug:?}")),
            );
        }
    }
    let category =
        category.unwrap_or_else(|| panic!("fixture {name}: missing `// @category: <slug>` header"));
    (question, category)
}

/// Parse one expectation cell — a rendered program outcome — into the
/// [`Expected`] verdict used by the suite runners.
fn expected_from_cell(name: &str, model: &str, cell: &Json) -> Expected {
    let kind = cell
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("fixture {name}: cell for {model} has no \"kind\""));
    match kind {
        "return" => Expected::Defined {
            value: cell
                .get("value")
                .and_then(Json::as_int)
                .unwrap_or_else(|| panic!("fixture {name}: return cell for {model} needs value")),
            stdout: cell
                .get("stdout")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        },
        "undef" => {
            let ub = cell
                .get("ub")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("fixture {name}: undef cell for {model} needs ub"));
            Expected::Undef(UbKind::from_core_name(ub).unwrap_or_else(|| {
                panic!("fixture {name}: unknown undefined behaviour {ub:?} for {model}")
            }))
        }
        other => Expected::Abnormal(other.to_owned()),
    }
}

/// Load one fixture into a [`LitmusTest`]. A missing `.expect` file yields a
/// test with no recorded expectations (regeneration bootstraps from that);
/// a malformed one panics — the corpus is well-formed by construction.
pub fn load(entry: &FixtureEntry) -> LitmusTest {
    let source = std::fs::read_to_string(&entry.source_path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", entry.source_path.display()));
    let (question, category) = parse_metadata(&entry.name, &source);
    let expectations = match std::fs::read_to_string(&entry.expect_path) {
        Err(_) => Vec::new(),
        Ok(text) => {
            let document = Json::parse(&text).unwrap_or_else(|e| {
                panic!(
                    "malformed expectation file {}: {e}",
                    entry.expect_path.display()
                )
            });
            let Some(Json::Obj(matrix)) = document.get("matrix").cloned() else {
                panic!(
                    "expectation file {} has no \"matrix\" object",
                    entry.expect_path.display()
                )
            };
            // Keep expectations in `all_named` order (the matrix row order),
            // not the JSON object's alphabetical one, and intern the model
            // name through its configuration.
            let mut expectations = Vec::with_capacity(matrix.len());
            for config in ModelConfig::all_named() {
                if let Some(cell) = matrix.get(config.name) {
                    expectations.push((
                        config.name,
                        expected_from_cell(&entry.name, config.name, cell),
                    ));
                }
            }
            for model in matrix.keys() {
                assert!(
                    ModelConfig::by_name(model).is_some(),
                    "expectation file {} names unknown model {model:?}",
                    entry.expect_path.display()
                );
            }
            expectations
        }
    };
    LitmusTest {
        name: entry.name.clone(),
        question,
        category,
        source,
        expectations,
    }
}

/// Load the whole corpus under `root`, sorted by `(group, name)`.
pub fn catalogue_from(root: &Path) -> Vec<LitmusTest> {
    discover(root).iter().map(load).collect()
}

/// Build the expectation document for an observed outcome matrix — the exact
/// content of a `.expect` file: one rendered program outcome per model row.
pub fn expectation_document(matrix: &OutcomeMatrix) -> Json {
    let cells = matrix.rows().iter().map(|row| {
        let cell = match row.outcome.outcomes.first() {
            Some(outcome) => cerberus_wire::outcome::program_outcome_to_json(outcome),
            None => Json::Null,
        };
        (row.model, cell)
    });
    Json::obj([("matrix", Json::obj(cells))])
}

/// One disagreeing cell between an expected and an actual verdict matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// The model whose cell disagrees.
    pub model: String,
    /// The recorded expectation (`None`: the model has no recorded cell).
    pub expected: Option<Json>,
    /// The observed outcome (`None`: the model was not run).
    pub actual: Option<Json>,
}

impl std::fmt::Display for CellDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let render = |cell: &Option<Json>| match cell {
            Some(json) => json.encode(),
            None => "<absent>".to_owned(),
        };
        write!(
            f,
            "[{}]\n    expected: {}\n    actual:   {}",
            self.model,
            render(&self.expected),
            render(&self.actual)
        )
    }
}

/// Diff two expectation documents per model cell. Returns one [`CellDiff`]
/// per disagreeing model, in model-name order; an empty result means the
/// matrices agree exactly.
pub fn diff_expectations(expected: &Json, actual: &Json) -> Vec<CellDiff> {
    let cells = |doc: &Json| match doc.get("matrix") {
        Some(Json::Obj(members)) => members.clone(),
        _ => Default::default(),
    };
    let expected = cells(expected);
    let actual = cells(actual);
    let mut models: Vec<&String> = expected.keys().chain(actual.keys()).collect();
    models.sort_unstable();
    models.dedup();
    models
        .into_iter()
        .filter(|m| expected.get(*m) != actual.get(*m))
        .map(|m| CellDiff {
            model: m.clone(),
            expected: expected.get(m).cloned(),
            actual: actual.get(m).cloned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_root_discovers_a_sorted_corpus() {
        let entries = discover(&fixtures_root());
        assert!(
            entries.len() >= 60,
            "fixture corpus has shrunk: {} entries",
            entries.len()
        );
        let mut sorted = entries.clone();
        sorted.sort();
        assert_eq!(entries, sorted);
        // Names are unique across groups (the suite is keyed by name).
        let mut names: Vec<_> = entries.iter().map(|e| &e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate fixture names");
    }

    #[test]
    fn metadata_headers_parse() {
        let (question, category) = parse_metadata(
            "t",
            "// @question: 11\n// @category: provenance-basics\nint main(void) { return 0; }\n",
        );
        assert_eq!(question, Some(11));
        assert_eq!(category, QuestionCategory::ProvenanceBasics);
        // No question, category later in the header block.
        let (question, category) =
            parse_metadata("t", "// a comment\n// @category: padding\nint x;\n");
        assert_eq!(question, None);
        assert_eq!(category, QuestionCategory::Padding);
    }

    #[test]
    #[should_panic(expected = "missing `// @category:")]
    fn a_missing_category_header_is_rejected() {
        parse_metadata("t", "int main(void) { return 0; }\n");
    }

    #[test]
    fn expectation_cells_parse_to_verdicts() {
        let cell = Json::parse(r#"{"kind":"return","value":7,"stdout":"x\n"}"#).unwrap();
        assert_eq!(
            expected_from_cell("t", "concrete", &cell),
            Expected::Defined {
                value: 7,
                stdout: "x\n".into()
            }
        );
        let cell =
            Json::parse(r#"{"kind":"undef","ub":"Null_pointer_dereference","clause":"6.5.3.2p4","detail":"","stdout":""}"#)
                .unwrap();
        assert_eq!(
            expected_from_cell("t", "concrete", &cell),
            Expected::Undef(UbKind::NullPointerDeref)
        );
        let cell = Json::parse(r#"{"kind":"timeout","budget":"steps","stdout":""}"#).unwrap();
        assert_eq!(
            expected_from_cell("t", "concrete", &cell),
            Expected::Abnormal("timeout".into())
        );
    }

    #[test]
    fn diffs_cover_changed_missing_and_extra_cells() {
        let expected = Json::parse(
            r#"{"matrix":{"concrete":{"kind":"return","stdout":"","value":1},"de-facto":{"kind":"return","stdout":"","value":1}}}"#,
        )
        .unwrap();
        let actual = Json::parse(
            r#"{"matrix":{"concrete":{"kind":"return","stdout":"","value":2},"symbolic":{"kind":"return","stdout":"","value":1}}}"#,
        )
        .unwrap();
        let diffs = diff_expectations(&expected, &actual);
        let models: Vec<_> = diffs.iter().map(|d| d.model.as_str()).collect();
        assert_eq!(models, ["concrete", "de-facto", "symbolic"]);
        assert!(diffs[0].to_string().contains("expected"));
        assert!(diff_expectations(&expected, &expected).is_empty());
    }

    #[test]
    fn every_fixture_loads_with_a_complete_expectation_matrix() {
        // The corpus invariant behind experiment E11/E17: every fixture's
        // expectation file covers all named models (the symbolic backfill).
        for test in catalogue_from(&fixtures_root()) {
            assert_eq!(
                test.expectations.len(),
                ModelConfig::all_named().len(),
                "{} does not cover every named model",
                test.name
            );
        }
    }
}
