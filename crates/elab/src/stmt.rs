//! Statement elaboration: blocks and object lifetimes (§5.7), loops, `goto`
//! and `switch` via Core labels (§5.8), and global initialisation.

use cerberus_ail::ail::{AilInit, AilStmt, FunctionDef, GlobalDef, ObjectDecl};
use cerberus_ast::ctype::Ctype;
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::TagRegistry;
use cerberus_ast::ub::UbKind;
use cerberus_core::syntax::{Expr, MemAction, MemOrder, PExpr, Pattern, Polarity};

/// The elaboration context: the implementation-defined environment, the tag
/// registry (for member offsets and layout queries during elaboration), the
/// string-literal table, and the label stacks for `break`/`continue`.
#[derive(Debug)]
pub struct Elaborator {
    pub(crate) env: ImplEnv,
    pub(crate) tags: TagRegistry,
    string_literals: Vec<(Ident, Vec<u8>)>,
    break_stack: Vec<Ident>,
    continue_stack: Vec<Ident>,
    switch_stack: Vec<u64>,
    switch_counter: u64,
}

impl Elaborator {
    /// A fresh elaborator.
    pub fn new(env: ImplEnv, tags: TagRegistry) -> Self {
        Elaborator {
            env,
            tags,
            string_literals: Vec::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            switch_stack: Vec::new(),
            switch_counter: 0,
        }
    }

    /// Take the string-literal objects registered while elaborating.
    pub fn take_string_literals(&mut self) -> Vec<(Ident, Vec<u8>)> {
        std::mem::take(&mut self.string_literals)
    }

    /// Register a string literal and return the symbol its object is bound to.
    pub(crate) fn register_string_literal(&mut self, bytes: &[u8]) -> Ident {
        let name = Ident::fresh("strlit");
        self.string_literals.push((name.clone(), bytes.to_vec()));
        name
    }

    // ----- memory action helpers ---------------------------------------------

    pub(crate) fn action_create(&self, ty: &Ctype) -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Create {
                align: Box::new(PExpr::Builtin(
                    cerberus_core::syntax::BuiltinFn::AlignOf,
                    vec![PExpr::CtypeConst(ty.clone())],
                )),
                ty: Box::new(PExpr::CtypeConst(ty.clone())),
            },
        )
    }

    pub(crate) fn action_store(&self, ty: &Ctype, ptr: PExpr, value: PExpr) -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(ty.clone())),
                ptr: Box::new(ptr),
                value: Box::new(value),
                order: MemOrder::NA,
            },
        )
    }

    pub(crate) fn action_store_neg(&self, ty: &Ctype, ptr: PExpr, value: PExpr) -> Expr {
        Expr::Action(
            Polarity::Negative,
            MemAction::Store {
                ty: Box::new(PExpr::CtypeConst(ty.clone())),
                ptr: Box::new(ptr),
                value: Box::new(value),
                order: MemOrder::NA,
            },
        )
    }

    pub(crate) fn action_load(&self, ty: &Ctype, ptr: PExpr) -> Expr {
        Expr::Action(
            Polarity::Positive,
            MemAction::Load {
                ty: Box::new(PExpr::CtypeConst(ty.clone())),
                ptr: Box::new(ptr),
                order: MemOrder::NA,
            },
        )
    }

    pub(crate) fn action_kill(&self, ptr: PExpr) -> Expr {
        Expr::Action(Polarity::Positive, MemAction::Kill(Box::new(ptr)))
    }

    // ----- initialisation -----------------------------------------------------

    /// Elaborate the stores that realise an initialiser for the object at
    /// `ptr` of type `ty`.
    pub(crate) fn elab_init_into(&mut self, ptr: PExpr, ty: &Ctype, init: &AilInit) -> Expr {
        match init {
            AilInit::Expr(e) => {
                let v = Ident::fresh("init");
                let rv = self.elab_rvalue(e);
                let converted = self.convert_loaded(ty, &e.ty.decay(), PExpr::Sym(v.clone()));
                Expr::Sseq(
                    Pattern::Sym(v),
                    Box::new(rv),
                    Box::new(self.action_store(ty, ptr, converted)),
                )
            }
            AilInit::List(items) => match ty {
                Ctype::Array(elem, _) => {
                    let mut stores = Vec::new();
                    for (i, item) in items.iter().enumerate() {
                        let elem_ptr = PExpr::ArrayShift {
                            ptr: Box::new(ptr.clone()),
                            elem_ty: (**elem).clone(),
                            index: Box::new(PExpr::Integer(i as i128)),
                        };
                        stores.push(self.elab_init_into(elem_ptr, elem, item));
                    }
                    Expr::seq_all(stores)
                }
                Ctype::Struct(tag) => {
                    let members: Vec<_> = match self.tags.get(*tag) {
                        Some(def) => def.members.clone(),
                        None => {
                            return Expr::Pure(PExpr::Error("incomplete struct initialiser".into()))
                        }
                    };
                    let mut stores = Vec::new();
                    for (member, item) in members.iter().zip(items.iter()) {
                        let mptr = PExpr::MemberShift {
                            ptr: Box::new(ptr.clone()),
                            tag: *tag,
                            member: member.name.clone(),
                        };
                        stores.push(self.elab_init_into(mptr, &member.ty, item));
                    }
                    Expr::seq_all(stores)
                }
                Ctype::Union(tag) => {
                    let first = match self.tags.get(*tag).and_then(|d| d.members.first().cloned()) {
                        Some(m) => m,
                        None => {
                            return Expr::Pure(PExpr::Error("incomplete union initialiser".into()))
                        }
                    };
                    match items.first() {
                        Some(item) => self.elab_init_into(ptr, &first.ty, item),
                        None => Expr::Skip,
                    }
                }
                // A brace-enclosed initialiser for a scalar: `int x = {3};`.
                _ => match items.first() {
                    Some(item) => self.elab_init_into(ptr, ty, item),
                    None => Expr::Skip,
                },
            },
        }
    }

    /// The initialisation expression of an object with static storage
    /// duration: evaluated before `main`, storing into the global's object
    /// (objects without initialiser are zero-initialised by the memory
    /// engine, so `skip` suffices).
    pub fn elaborate_global_init(&mut self, global: &GlobalDef) -> Expr {
        match &global.init {
            None => Expr::Skip,
            Some(init) => self.elab_init_into(PExpr::Sym(global.name.clone()), &global.ty, init),
        }
    }

    // ----- statements ----------------------------------------------------------

    fn bind_decls(&mut self, decls: &[ObjectDecl], inner: Expr) -> Expr {
        let mut result = inner;
        for decl in decls.iter().rev() {
            let init = match &decl.init {
                Some(init) => self.elab_init_into(PExpr::Sym(decl.name.clone()), &decl.ty, init),
                None => Expr::Skip,
            };
            result = Expr::Sseq(
                Pattern::Sym(decl.name.clone()),
                Box::new(self.action_create(&decl.ty)),
                Box::new(Expr::seq(init, result)),
            );
        }
        result
    }

    fn elab_stmt_list(&mut self, stmts: &[AilStmt]) -> Expr {
        // Collect the block's declarations so their lifetimes can be ended at
        // the end of the block (§5.7).
        let mut kills = Vec::new();
        for s in stmts {
            if let AilStmt::Decl(decls) = s {
                for d in decls {
                    kills.push(self.action_kill(PExpr::Sym(d.name.clone())));
                }
            }
        }
        let mut result = Expr::seq_all(kills);
        for s in stmts.iter().rev() {
            result = match s {
                AilStmt::Decl(decls) => self.bind_decls(decls, result),
                AilStmt::Label(..) | AilStmt::Case(..) | AilStmt::Default(..) => {
                    self.elab_labeled_into(s, result)
                }
                other => Expr::seq(self.elab_stmt(other), result),
            };
        }
        result
    }

    /// Elaborate a labelled statement so that the Core `save` label covers the
    /// *remainder of the block* (`rest`), giving `run label` the semantics of
    /// a C jump to that label: re-execution continues from the labelled
    /// statement through the rest of the block (§5.8).
    fn elab_labeled_into(&mut self, stmt: &AilStmt, rest: Expr) -> Expr {
        match stmt {
            AilStmt::Label(label, inner) => {
                let body = self.elab_labeled_into(inner, rest);
                Expr::Save(Ident::new(format!("label_{label}")), Box::new(body))
            }
            AilStmt::Case(value, inner) => {
                let switch_id = self.switch_stack.last().copied().unwrap_or(0);
                let label = self.switch_case_label(switch_id, *value);
                let body = self.elab_labeled_into(inner, rest);
                Expr::Save(label, Box::new(body))
            }
            AilStmt::Default(inner) => {
                let switch_id = self.switch_stack.last().copied().unwrap_or(0);
                let label = self.switch_default_label(switch_id);
                let body = self.elab_labeled_into(inner, rest);
                Expr::Save(label, Box::new(body))
            }
            other => Expr::seq(self.elab_stmt(other), rest),
        }
    }

    fn switch_case_label(&self, switch_id: u64, value: i128) -> Ident {
        let v = value.to_string().replace('-', "m");
        Ident::new(format!("case_{switch_id}_{v}"))
    }

    fn switch_default_label(&self, switch_id: u64) -> Ident {
        Ident::new(format!("default_{switch_id}"))
    }

    fn collect_cases(stmt: &AilStmt, values: &mut Vec<i128>, has_default: &mut bool) {
        match stmt {
            AilStmt::Case(v, inner) => {
                values.push(*v);
                Self::collect_cases(inner, values, has_default);
            }
            AilStmt::Default(inner) => {
                *has_default = true;
                Self::collect_cases(inner, values, has_default);
            }
            AilStmt::Block(items, _) => {
                for item in items {
                    Self::collect_cases(item, values, has_default);
                }
            }
            AilStmt::Label(_, inner) => Self::collect_cases(inner, values, has_default),
            AilStmt::If(_, t, f) => {
                Self::collect_cases(t, values, has_default);
                Self::collect_cases(f, values, has_default);
            }
            AilStmt::While(_, b) | AilStmt::DoWhile(b, _) | AilStmt::For(_, _, _, b) => {
                Self::collect_cases(b, values, has_default);
            }
            // Nested switches own their case labels.
            AilStmt::Switch(..) => {}
            _ => {}
        }
    }

    /// Elaborate a scalar-condition test: bind the loaded condition value and
    /// branch; an unspecified condition is a daemonic undefined behaviour
    /// (the Fig. 3 treatment of unspecified values in control positions).
    pub(crate) fn elab_condition(
        &mut self,
        cond: &cerberus_ail::ail::AilExpr,
        then: Expr,
        els: Expr,
    ) -> Expr {
        let c = Ident::fresh("cond");
        let v = Ident::fresh("v");
        let rv = self.elab_rvalue(cond);
        let test = self.scalar_is_nonzero(&cond.ty.decay(), PExpr::Sym(v.clone()));
        Expr::Sseq(
            Pattern::Sym(c.clone()),
            Box::new(rv),
            Box::new(Expr::Case(
                PExpr::Sym(c),
                vec![
                    (
                        Pattern::Specified(Box::new(Pattern::Sym(v))),
                        Expr::If(test, Box::new(then), Box::new(els)),
                    ),
                    (
                        Pattern::Wildcard,
                        Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                    ),
                ],
            )),
        )
    }

    /// Elaborate one statement.
    pub fn elab_stmt(&mut self, stmt: &AilStmt) -> Expr {
        match stmt {
            AilStmt::Skip => Expr::Skip,
            AilStmt::Expr(e) => {
                let rv = self.elab_rvalue(e);
                Expr::seq(rv, Expr::Skip)
            }
            AilStmt::Block(items, _) => self.elab_stmt_list(items),
            AilStmt::Decl(decls) => {
                // A declaration outside a block context (e.g. a `for` init
                // clause handled directly): scope it locally.
                self.bind_decls(decls, Expr::Skip)
            }
            AilStmt::If(c, t, f) => {
                let then = self.elab_stmt(t);
                let els = self.elab_stmt(f);
                self.elab_condition(c, then, els)
            }
            AilStmt::While(c, body) => {
                let brk = Ident::fresh("while_break");
                let cont = Ident::fresh("while_continue");
                let head = Ident::fresh("while_head");
                self.break_stack.push(brk.clone());
                self.continue_stack.push(cont.clone());
                let body = self.elab_stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                let iterate = Expr::seq(Expr::Exit(cont, Box::new(body)), Expr::Run(head.clone()));
                let guarded = self.elab_condition(c, iterate, Expr::Skip);
                Expr::Exit(brk, Box::new(Expr::Save(head, Box::new(guarded))))
            }
            AilStmt::DoWhile(body, c) => {
                let brk = Ident::fresh("do_break");
                let cont = Ident::fresh("do_continue");
                let head = Ident::fresh("do_head");
                self.break_stack.push(brk.clone());
                self.continue_stack.push(cont.clone());
                let body = self.elab_stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                let test = self.elab_condition(c, Expr::Run(head.clone()), Expr::Skip);
                let once = Expr::seq(Expr::Exit(cont, Box::new(body)), test);
                Expr::Exit(brk, Box::new(Expr::Save(head, Box::new(once))))
            }
            AilStmt::For(init, cond, step, body) => {
                let brk = Ident::fresh("for_break");
                let cont = Ident::fresh("for_continue");
                let head = Ident::fresh("for_head");
                self.break_stack.push(brk.clone());
                self.continue_stack.push(cont.clone());
                let body = self.elab_stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();

                let step_expr = match step {
                    Some(e) => Expr::seq(self.elab_rvalue(e), Expr::Skip),
                    None => Expr::Skip,
                };
                let iterate = Expr::seq(
                    Expr::Exit(cont, Box::new(body)),
                    Expr::seq(step_expr, Expr::Run(head.clone())),
                );
                let guarded = match cond {
                    Some(c) => self.elab_condition(c, iterate, Expr::Skip),
                    None => iterate,
                };
                let looped = Expr::Exit(brk, Box::new(Expr::Save(head, Box::new(guarded))));

                // The init clause scopes over the loop; declarations made
                // there are killed after the loop terminates.
                match &**init {
                    AilStmt::Decl(decls) => {
                        let kills: Vec<Expr> = decls
                            .iter()
                            .map(|d| self.action_kill(PExpr::Sym(d.name.clone())))
                            .collect();
                        let with_kills = Expr::seq(looped, Expr::seq_all(kills));
                        self.bind_decls(decls, with_kills)
                    }
                    AilStmt::Skip => looped,
                    other => Expr::seq(self.elab_stmt(other), looped),
                }
            }
            AilStmt::Switch(scrutinee, body) => {
                self.switch_counter += 1;
                let switch_id = self.switch_counter;
                let brk = Ident::fresh("switch_break");
                self.break_stack.push(brk.clone());
                self.switch_stack.push(switch_id);
                let body_core = self.elab_stmt(body);
                self.switch_stack.pop();
                self.break_stack.pop();

                let mut case_values = Vec::new();
                let mut has_default = false;
                Self::collect_cases(body, &mut case_values, &mut has_default);

                let v = Ident::fresh("switch_val");
                let mut dispatch = if has_default {
                    Expr::Run(self.switch_default_label(switch_id))
                } else {
                    Expr::Run(brk.clone())
                };
                for value in case_values.iter().rev() {
                    dispatch = Expr::If(
                        PExpr::Binop(
                            cerberus_core::syntax::Binop::Eq,
                            Box::new(PExpr::Sym(v.clone())),
                            Box::new(PExpr::Integer(*value)),
                        ),
                        Box::new(Expr::Run(self.switch_case_label(switch_id, *value))),
                        Box::new(dispatch),
                    );
                }

                let c = Ident::fresh("switch_cond");
                let rv = self.elab_rvalue(scrutinee);
                let dispatch_and_body = Expr::seq(dispatch, body_core);
                let cased = Expr::Case(
                    PExpr::Sym(c.clone()),
                    vec![
                        (
                            Pattern::Specified(Box::new(Pattern::Sym(v))),
                            dispatch_and_body,
                        ),
                        (
                            Pattern::Wildcard,
                            Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                        ),
                    ],
                );
                Expr::Exit(
                    brk,
                    Box::new(Expr::Sseq(Pattern::Sym(c), Box::new(rv), Box::new(cased))),
                )
            }
            AilStmt::Case(value, inner) => {
                let switch_id = self.switch_stack.last().copied().unwrap_or(0);
                let label = self.switch_case_label(switch_id, *value);
                let inner = self.elab_stmt(inner);
                Expr::Save(label, Box::new(inner))
            }
            AilStmt::Default(inner) => {
                let switch_id = self.switch_stack.last().copied().unwrap_or(0);
                let label = self.switch_default_label(switch_id);
                let inner = self.elab_stmt(inner);
                Expr::Save(label, Box::new(inner))
            }
            AilStmt::Break => match self.break_stack.last() {
                Some(label) => Expr::Run(label.clone()),
                None => Expr::Pure(PExpr::Error("break outside a loop or switch".into())),
            },
            AilStmt::Continue => match self.continue_stack.last() {
                Some(label) => Expr::Run(label.clone()),
                None => Expr::Pure(PExpr::Error("continue outside a loop".into())),
            },
            AilStmt::Return(None) => {
                Expr::Return(Box::new(PExpr::Specified(Box::new(PExpr::Unit))))
            }
            AilStmt::Return(Some(e)) => {
                let v = Ident::fresh("ret");
                let rv = self.elab_rvalue(e);
                Expr::Sseq(
                    Pattern::Sym(v.clone()),
                    Box::new(rv),
                    Box::new(Expr::Return(Box::new(PExpr::Sym(v)))),
                )
            }
            AilStmt::Goto(label) => Expr::Run(Ident::new(format!("label_{label}"))),
            AilStmt::Label(label, inner) => {
                let inner = self.elab_stmt(inner);
                Expr::Save(Ident::new(format!("label_{label}")), Box::new(inner))
            }
        }
    }

    /// Elaborate a function body: the statement body followed by the implicit
    /// return (0 for `main`, 6.9.1p12's unspecified value otherwise, unit for
    /// `void`).
    pub fn elaborate_function_body(&mut self, f: &FunctionDef) -> Expr {
        let body = self.elab_stmt(&f.body);
        let fallthrough = if f.name.as_str() == "main" {
            Expr::Return(Box::new(PExpr::specified_int(0)))
        } else if f.return_ty == Ctype::Void {
            Expr::Return(Box::new(PExpr::Specified(Box::new(PExpr::Unit))))
        } else {
            Expr::Return(Box::new(PExpr::Unspecified(f.return_ty.clone())))
        };
        Expr::seq(body, fallthrough)
    }
}
