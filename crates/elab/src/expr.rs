//! Expression elaboration (§5.3, §5.5, §5.6): evaluation order via
//! `unseq`/weak sequencing, integer promotions and conversions via explicit
//! builtins over mathematical integers, and explicit `undef(...)` tests for
//! every arithmetic undefined behaviour — the Fig. 3 left-shift clause is
//! reproduced structurally by `Elaborator::specified_shift`.

use cerberus_ail::ail::{AilExpr, AilExprKind, BinOp, IdentKind, UnOp};
use cerberus_ast::ctype::{Ctype, IntegerType};
use cerberus_ast::ident::Ident;
use cerberus_ast::ub::UbKind;
use cerberus_core::syntax::{Binop, BuiltinFn, Expr, PExpr, Pattern, PtrOp};

use crate::stmt::Elaborator;

impl Elaborator {
    // ----- small pure helpers -------------------------------------------------

    fn ctype_pe(ty: &Ctype) -> PExpr {
        PExpr::CtypeConst(ty.clone())
    }

    fn conv_int(ty: IntegerType, v: PExpr) -> PExpr {
        PExpr::Builtin(
            BuiltinFn::ConvInt,
            vec![PExpr::CtypeConst(Ctype::integer(ty)), v],
        )
    }

    fn is_representable(v: PExpr, ty: IntegerType) -> PExpr {
        PExpr::Builtin(
            BuiltinFn::IsRepresentable,
            vec![PExpr::CtypeConst(Ctype::integer(ty)), v],
        )
    }

    fn binop(op: Binop, a: PExpr, b: PExpr) -> PExpr {
        PExpr::Binop(op, Box::new(a), Box::new(b))
    }

    /// A pure test for "this scalar value is non-zero" (pointer operands are
    /// compared against the null pointer by the evaluator's `Ne`).
    pub(crate) fn scalar_is_nonzero(&self, _ty: &Ctype, v: PExpr) -> PExpr {
        Self::binop(Binop::Ne, v, PExpr::Integer(0))
    }

    /// Convert a *loaded* value from one C type to another where the
    /// conversion is an integer conversion; other conversions are handled by
    /// the typed store or by dedicated cast elaboration.
    pub(crate) fn convert_loaded(&self, to: &Ctype, from: &Ctype, pe: PExpr) -> PExpr {
        match (to.as_integer(), from.as_integer()) {
            (Some(to_it), Some(_)) if to != from => {
                let x = Ident::fresh("cv");
                PExpr::Case(
                    Box::new(pe),
                    vec![
                        (
                            Pattern::Specified(Box::new(Pattern::Sym(x.clone()))),
                            PExpr::Specified(Box::new(Self::conv_int(to_it, PExpr::Sym(x)))),
                        ),
                        (Pattern::Wildcard, PExpr::Unspecified(to.clone())),
                    ],
                )
            }
            _ => pe,
        }
    }

    // ----- integer arithmetic (the Fig. 3 style case splits) -------------------

    /// The pure computation of a binary arithmetic/bitwise/comparison
    /// operator on two *specified* integer operand values, including the
    /// explicit undefined-behaviour tests of 6.5.5–6.5.14.
    fn specified_int_arith(
        &self,
        op: BinOp,
        lt: IntegerType,
        rt: IntegerType,
        x: PExpr,
        y: PExpr,
    ) -> PExpr {
        let env = &self.env;
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let promoted = env.integer_promotion(lt);
            return self.specified_shift(op, promoted, rt, x, y);
        }
        let common = env.usual_arithmetic_conversion(lt, rt);
        let signed = env.is_signed(common);
        let cx = Self::conv_int(common, x);
        let cy = Self::conv_int(common, y);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let core_op = match op {
                    BinOp::Add => Binop::Add,
                    BinOp::Sub => Binop::Sub,
                    _ => Binop::Mul,
                };
                let math = Self::binop(core_op, cx, cy);
                if signed {
                    PExpr::If(
                        Box::new(Self::is_representable(math.clone(), common)),
                        Box::new(PExpr::Specified(Box::new(math))),
                        Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                    )
                } else {
                    PExpr::Specified(Box::new(Self::conv_int(common, math)))
                }
            }
            BinOp::Div | BinOp::Mod => {
                let core_op = if op == BinOp::Div {
                    Binop::Div
                } else {
                    Binop::RemT
                };
                let math = Self::binop(core_op, cx, cy.clone());
                let ok = if signed {
                    PExpr::If(
                        Box::new(Self::is_representable(math.clone(), common)),
                        Box::new(PExpr::Specified(Box::new(math))),
                        Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                    )
                } else {
                    PExpr::Specified(Box::new(math))
                };
                PExpr::If(
                    Box::new(Self::binop(Binop::Eq, cy, PExpr::Integer(0))),
                    Box::new(PExpr::Undef(UbKind::DivisionByZero)),
                    Box::new(ok),
                )
            }
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                let core_op = match op {
                    BinOp::BitAnd => Binop::BitAnd,
                    BinOp::BitOr => Binop::BitOr,
                    _ => Binop::BitXor,
                };
                let math = Self::binop(core_op, cx, cy);
                PExpr::Specified(Box::new(Self::conv_int(common, math)))
            }
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let core_op = match op {
                    BinOp::Lt => Binop::Lt,
                    BinOp::Gt => Binop::Gt,
                    BinOp::Le => Binop::Le,
                    BinOp::Ge => Binop::Ge,
                    BinOp::Eq => Binop::Eq,
                    _ => Binop::Ne,
                };
                let test = Self::binop(core_op, cx, cy);
                PExpr::Specified(Box::new(PExpr::If(
                    Box::new(test),
                    Box::new(PExpr::Integer(1)),
                    Box::new(PExpr::Integer(0)),
                )))
            }
            BinOp::Shl | BinOp::Shr | BinOp::LogicalAnd | BinOp::LogicalOr => {
                PExpr::Error("operator handled elsewhere".into())
            }
        }
    }

    /// The elaboration of the shift operators, structurally following the
    /// paper's Fig. 3: promote, test for a negative or too-large shift
    /// amount, wrap for unsigned left operands, and flag signed overflow.
    fn specified_shift(
        &self,
        op: BinOp,
        promoted: IntegerType,
        rt: IntegerType,
        x: PExpr,
        y: PExpr,
    ) -> PExpr {
        let env = &self.env;
        let result_ty = Ctype::integer(promoted);
        let px = Self::conv_int(promoted, x);
        let py = Self::conv_int(env.integer_promotion(rt), y);
        let width = PExpr::Builtin(BuiltinFn::CtypeWidth, vec![Self::ctype_pe(&result_ty)]);
        let pow = Self::binop(Binop::Exp, PExpr::Integer(2), py.clone());
        let raw = if op == BinOp::Shl {
            Self::binop(Binop::Mul, px.clone(), pow)
        } else {
            Self::binop(Binop::Div, px.clone(), pow)
        };
        let body = if env.is_signed(promoted) {
            if op == BinOp::Shl {
                // 6.5.7p4: E1 negative, or the result not representable, is
                // undefined behaviour.
                PExpr::If(
                    Box::new(Self::binop(Binop::Lt, px.clone(), PExpr::Integer(0))),
                    Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                    Box::new(PExpr::If(
                        Box::new(Self::is_representable(raw.clone(), promoted)),
                        Box::new(PExpr::Specified(Box::new(raw.clone()))),
                        Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                    )),
                )
            } else {
                PExpr::Specified(Box::new(raw.clone()))
            }
        } else {
            // Unsigned: reduced modulo one more than the maximum value
            // representable in the result type (6.5.7p4).
            PExpr::Specified(Box::new(Self::conv_int(promoted, raw.clone())))
        };
        // 6.5.7p3: negative or too-large shift amounts are undefined.
        PExpr::If(
            Box::new(Self::binop(Binop::Lt, py.clone(), PExpr::Integer(0))),
            Box::new(PExpr::Undef(UbKind::NegativeShift)),
            Box::new(PExpr::If(
                Box::new(Self::binop(Binop::Le, width, py)),
                Box::new(PExpr::Undef(UbKind::ShiftTooLarge)),
                Box::new(body),
            )),
        )
    }

    /// Bind the two operands of a binary operator by unsequenced evaluation
    /// (6.5p2-3: "value computations of the operands … are sequenced before
    /// the value computation of the result"; the operand evaluations
    /// themselves are unsequenced).
    fn bind_operands(
        &mut self,
        lhs: &AilExpr,
        rhs: &AilExpr,
        cont: impl FnOnce(Ident, Ident) -> Expr,
    ) -> Expr {
        let s1 = Ident::fresh("e1");
        let s2 = Ident::fresh("e2");
        let e1 = self.elab_rvalue(lhs);
        let e2 = self.elab_rvalue(rhs);
        let body = cont(s1.clone(), s2.clone());
        Expr::Wseq(
            Pattern::Tuple(vec![Pattern::Sym(s1), Pattern::Sym(s2)]),
            Box::new(Expr::Unseq(vec![e1, e2])),
            Box::new(body),
        )
    }

    // ----- lvalue elaboration ---------------------------------------------------

    /// Elaborate an expression in lvalue position: the result is the pointer
    /// value of the designated object.
    pub fn elab_lvalue(&mut self, e: &AilExpr) -> Expr {
        match &e.kind {
            AilExprKind::Ident(name, IdentKind::Local | IdentKind::Global) => {
                Expr::Pure(PExpr::Sym(name.clone()))
            }
            AilExprKind::Ident(name, IdentKind::Function) => {
                Expr::Pure(PExpr::FunctionPtr(name.clone()))
            }
            AilExprKind::StringLit(bytes) => {
                let name = self.register_string_literal(bytes);
                Expr::Pure(PExpr::Sym(name))
            }
            AilExprKind::Unary(UnOp::Deref, inner) => {
                let s = Ident::fresh("ptr");
                let p = Ident::fresh("p");
                let rv = self.elab_rvalue(inner);
                Expr::Sseq(
                    Pattern::Sym(s.clone()),
                    Box::new(rv),
                    Box::new(Expr::Case(
                        PExpr::Sym(s),
                        vec![
                            (
                                Pattern::Specified(Box::new(Pattern::Sym(p.clone()))),
                                Expr::Pure(PExpr::Sym(p)),
                            ),
                            (
                                Pattern::Wildcard,
                                Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                            ),
                        ],
                    )),
                )
            }
            AilExprKind::Member(base, member) => {
                let tag = match &base.ty {
                    Ctype::Struct(tag) | Ctype::Union(tag) => *tag,
                    _ => {
                        return Expr::Pure(PExpr::Error("member access on a non-aggregate".into()))
                    }
                };
                let p = Ident::fresh("base");
                let base_lv = self.elab_lvalue(base);
                Expr::Sseq(
                    Pattern::Sym(p.clone()),
                    Box::new(base_lv),
                    Box::new(Expr::Pure(PExpr::MemberShift {
                        ptr: Box::new(PExpr::Sym(p)),
                        tag,
                        member: member.clone(),
                    })),
                )
            }
            _ => Expr::Pure(PExpr::Error(format!(
                "expression is not an lvalue: {:?}",
                e.kind
            ))),
        }
    }

    // ----- rvalue elaboration ----------------------------------------------------

    /// Elaborate an expression in rvalue position: the result is a *loaded*
    /// value (`Specified`/`Unspecified`).
    pub fn elab_rvalue(&mut self, e: &AilExpr) -> Expr {
        // Lvalue conversion (6.3.2.1p2-3): lvalue-evaluate and load, with
        // array-to-pointer decay yielding the object pointer itself.
        if e.is_lvalue {
            let p = Ident::fresh("lv");
            let lv = self.elab_lvalue(e);
            let rest = if matches!(e.ty, Ctype::Array(..)) {
                Expr::Pure(PExpr::Specified(Box::new(PExpr::Sym(p.clone()))))
            } else {
                self.action_load(&e.ty, PExpr::Sym(p.clone()))
            };
            return Expr::Sseq(Pattern::Sym(p), Box::new(lv), Box::new(rest));
        }
        match &e.kind {
            AilExprKind::Constant(v) => Expr::Pure(PExpr::specified_int(*v)),
            AilExprKind::FloatConstant(_) => Expr::Pure(PExpr::Error(
                "floating-point arithmetic is unsupported".into(),
            )),
            AilExprKind::Ident(name, IdentKind::Function) => {
                Expr::Pure(PExpr::Specified(Box::new(PExpr::FunctionPtr(name.clone()))))
            }
            AilExprKind::Ident(..) | AilExprKind::StringLit(_) | AilExprKind::Member(..) => {
                // Already covered by the lvalue path above.
                Expr::Pure(PExpr::Error(
                    "unexpected lvalue kind in rvalue elaboration".into(),
                ))
            }
            AilExprKind::Unary(op, inner) => self.elab_unary(e, *op, inner),
            AilExprKind::Binary(op, lhs, rhs) => self.elab_binary(e, *op, lhs, rhs),
            AilExprKind::Assign(lhs, rhs) => self.elab_assign(lhs, rhs),
            AilExprKind::CompoundAssign(op, lhs, rhs) => self.elab_compound_assign(*op, lhs, rhs),
            AilExprKind::Conditional(c, t, f) => {
                let result_ty = e.ty.clone();
                let then_ty = t.ty.decay();
                let else_ty = f.ty.decay();
                let tb = {
                    let v = Ident::fresh("tv");
                    let inner = self.elab_rvalue(t);
                    let conv = self.convert_loaded(&result_ty, &then_ty, PExpr::Sym(v.clone()));
                    Expr::Sseq(Pattern::Sym(v), Box::new(inner), Box::new(Expr::Pure(conv)))
                };
                let fb = {
                    let v = Ident::fresh("fv");
                    let inner = self.elab_rvalue(f);
                    let conv = self.convert_loaded(&result_ty, &else_ty, PExpr::Sym(v.clone()));
                    Expr::Sseq(Pattern::Sym(v), Box::new(inner), Box::new(Expr::Pure(conv)))
                };
                self.elab_condition(c, tb, fb)
            }
            AilExprKind::Cast(target, inner) => self.elab_cast(target, inner),
            AilExprKind::Call(callee, args) => self.elab_call(callee, args),
            AilExprKind::Comma(a, b) => {
                let first = self.elab_rvalue(a);
                let second = self.elab_rvalue(b);
                Expr::seq(first, second)
            }
        }
    }

    fn elab_unary(&mut self, e: &AilExpr, op: UnOp, inner: &AilExpr) -> Expr {
        match op {
            UnOp::AddressOf => {
                if let AilExprKind::Ident(name, IdentKind::Function) = &inner.kind {
                    return Expr::Pure(PExpr::Specified(Box::new(PExpr::FunctionPtr(
                        name.clone(),
                    ))));
                }
                let p = Ident::fresh("addr");
                let lv = self.elab_lvalue(inner);
                Expr::Sseq(
                    Pattern::Sym(p.clone()),
                    Box::new(lv),
                    Box::new(Expr::Pure(PExpr::Specified(Box::new(PExpr::Sym(p))))),
                )
            }
            UnOp::Deref => {
                // A non-lvalue deref result only arises when the pointee is a
                // function (calling through a pointer) — produce the function
                // designator value.
                let s = Ident::fresh("fp");
                let rv = self.elab_rvalue(inner);
                Expr::Sseq(
                    Pattern::Sym(s.clone()),
                    Box::new(rv),
                    Box::new(Expr::Pure(PExpr::Sym(s))),
                )
            }
            UnOp::Plus | UnOp::Minus | UnOp::BitNot | UnOp::LogicalNot => {
                let result_ty = e.ty.clone();
                let s = Ident::fresh("u");
                let v = Ident::fresh("uv");
                let rv = self.elab_rvalue(inner);
                let operand_it = inner.ty.decay().as_integer();
                let pure = match (op, operand_it, result_ty.as_integer()) {
                    (UnOp::LogicalNot, _, _) => PExpr::Specified(Box::new(PExpr::If(
                        Box::new(Self::binop(
                            Binop::Eq,
                            PExpr::Sym(v.clone()),
                            PExpr::Integer(0),
                        )),
                        Box::new(PExpr::Integer(1)),
                        Box::new(PExpr::Integer(0)),
                    ))),
                    (UnOp::Plus, Some(_), Some(rt)) => {
                        PExpr::Specified(Box::new(Self::conv_int(rt, PExpr::Sym(v.clone()))))
                    }
                    (UnOp::Minus, Some(_), Some(rt)) => {
                        let negated = Self::binop(
                            Binop::Sub,
                            PExpr::Integer(0),
                            Self::conv_int(rt, PExpr::Sym(v.clone())),
                        );
                        if self.env.is_signed(rt) {
                            PExpr::If(
                                Box::new(Self::is_representable(negated.clone(), rt)),
                                Box::new(PExpr::Specified(Box::new(negated))),
                                Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                            )
                        } else {
                            PExpr::Specified(Box::new(Self::conv_int(rt, negated)))
                        }
                    }
                    (UnOp::BitNot, Some(_), Some(rt)) => {
                        let complement = Self::binop(
                            Binop::Sub,
                            Self::binop(
                                Binop::Sub,
                                PExpr::Integer(0),
                                Self::conv_int(rt, PExpr::Sym(v.clone())),
                            ),
                            PExpr::Integer(1),
                        );
                        PExpr::Specified(Box::new(Self::conv_int(rt, complement)))
                    }
                    _ => PExpr::Error("unary operator on a non-integer operand".into()),
                };
                Expr::Sseq(
                    Pattern::Sym(s.clone()),
                    Box::new(rv),
                    Box::new(Expr::Pure(PExpr::Case(
                        Box::new(PExpr::Sym(s)),
                        vec![
                            (Pattern::Specified(Box::new(Pattern::Sym(v))), pure),
                            (Pattern::Wildcard, PExpr::Unspecified(result_ty)),
                        ],
                    ))),
                )
            }
            UnOp::PostIncr | UnOp::PostDecr | UnOp::PreIncr | UnOp::PreDecr => {
                self.elab_incr_decr(e, op, inner)
            }
        }
    }

    fn elab_incr_decr(&mut self, e: &AilExpr, op: UnOp, inner: &AilExpr) -> Expr {
        let ty = e.ty.clone();
        let is_post = matches!(op, UnOp::PostIncr | UnOp::PostDecr);
        let delta: i128 = if matches!(op, UnOp::PostIncr | UnOp::PreIncr) {
            1
        } else {
            -1
        };
        let p = Ident::fresh("obj");
        let old = Ident::fresh("old");
        let ov = Ident::fresh("ov");
        let lv = self.elab_lvalue(inner);
        let load = self.action_load(&ty, PExpr::Sym(p.clone()));

        // The new value.
        let new_value: PExpr = match &ty {
            Ctype::Pointer(_, pointee) => PExpr::Specified(Box::new(PExpr::ArrayShift {
                ptr: Box::new(PExpr::Sym(ov.clone())),
                elem_ty: (**pointee).clone(),
                index: Box::new(PExpr::Integer(delta)),
            })),
            Ctype::Integer(it) => {
                let math = Self::binop(
                    Binop::Add,
                    Self::conv_int(*it, PExpr::Sym(ov.clone())),
                    PExpr::Integer(delta),
                );
                if self.env.is_signed(*it) {
                    PExpr::If(
                        Box::new(Self::is_representable(math.clone(), *it)),
                        Box::new(PExpr::Specified(Box::new(math))),
                        Box::new(PExpr::Undef(UbKind::ExceptionalCondition)),
                    )
                } else {
                    PExpr::Specified(Box::new(Self::conv_int(*it, math)))
                }
            }
            _ => PExpr::Error("increment of a non-scalar".into()),
        };

        let store = if is_post {
            // The incrementing store is not part of the value computation
            // (§5.6): a negative-polarity action under weak sequencing.
            self.action_store_neg(&ty, PExpr::Sym(p.clone()), new_value.clone())
        } else {
            self.action_store(&ty, PExpr::Sym(p.clone()), new_value.clone())
        };
        let result = if is_post {
            Expr::Pure(PExpr::Specified(Box::new(PExpr::Sym(ov.clone()))))
        } else {
            Expr::Pure(new_value)
        };
        let after_old = Expr::Case(
            PExpr::Sym(old.clone()),
            vec![
                (
                    Pattern::Specified(Box::new(Pattern::Sym(ov))),
                    if is_post {
                        Expr::Wseq(Pattern::Wildcard, Box::new(store), Box::new(result))
                    } else {
                        Expr::Sseq(Pattern::Wildcard, Box::new(store), Box::new(result))
                    },
                ),
                (
                    Pattern::Wildcard,
                    Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                ),
            ],
        );
        Expr::Sseq(
            Pattern::Sym(p),
            Box::new(lv),
            Box::new(Expr::Sseq(
                Pattern::Sym(old),
                Box::new(load),
                Box::new(after_old),
            )),
        )
    }

    fn elab_binary(&mut self, e: &AilExpr, op: BinOp, lhs: &AilExpr, rhs: &AilExpr) -> Expr {
        let result_ty = e.ty.clone();
        let lt = lhs.ty.decay();
        let rt = rhs.ty.decay();

        // Short-circuit logical operators (6.5.13/6.5.14): the second operand
        // is only evaluated if needed, with a sequence point in between.
        if op.is_logical() {
            let rhs_eval = {
                let s = Ident::fresh("rhs");
                let v = Ident::fresh("rv");
                let inner = self.elab_rvalue(rhs);
                Expr::Sseq(
                    Pattern::Sym(s.clone()),
                    Box::new(inner),
                    Box::new(Expr::Case(
                        PExpr::Sym(s),
                        vec![
                            (
                                Pattern::Specified(Box::new(Pattern::Sym(v.clone()))),
                                Expr::Pure(PExpr::Specified(Box::new(PExpr::If(
                                    Box::new(Self::binop(
                                        Binop::Ne,
                                        PExpr::Sym(v),
                                        PExpr::Integer(0),
                                    )),
                                    Box::new(PExpr::Integer(1)),
                                    Box::new(PExpr::Integer(0)),
                                )))),
                            ),
                            (
                                Pattern::Wildcard,
                                Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                            ),
                        ],
                    )),
                )
            };
            let (on_true, on_false) = if op == BinOp::LogicalAnd {
                (rhs_eval, Expr::Pure(PExpr::specified_int(0)))
            } else {
                (Expr::Pure(PExpr::specified_int(1)), rhs_eval)
            };
            return self.elab_condition(lhs, on_true, on_false);
        }

        let lt2 = lt.clone();
        let rt2 = rt.clone();

        // Pointer arithmetic: ptr ± integer and integer + ptr (6.5.6p8).
        if matches!(op, BinOp::Add | BinOp::Sub) && (lt.is_pointer() ^ rt.is_pointer()) {
            let (ptr_first, pointee) = if lt.is_pointer() {
                (true, lt.pointee().cloned().unwrap_or(Ctype::Void))
            } else {
                (false, rt.pointee().cloned().unwrap_or(Ctype::Void))
            };
            let negate = op == BinOp::Sub;
            return self.bind_operands(lhs, rhs, |s1, s2| {
                let v1 = Ident::fresh("v1");
                let v2 = Ident::fresh("v2");
                let (pv, iv) = if ptr_first {
                    (v1.clone(), v2.clone())
                } else {
                    (v2.clone(), v1.clone())
                };
                let index = if negate {
                    Self::binop(Binop::Sub, PExpr::Integer(0), PExpr::Sym(iv))
                } else {
                    PExpr::Sym(iv)
                };
                let shifted = PExpr::Specified(Box::new(PExpr::ArrayShift {
                    ptr: Box::new(PExpr::Sym(pv)),
                    elem_ty: pointee.clone(),
                    index: Box::new(index),
                }));
                Expr::Case(
                    PExpr::Tuple(vec![PExpr::Sym(s1), PExpr::Sym(s2)]),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::Sym(v1))),
                                Pattern::Specified(Box::new(Pattern::Sym(v2))),
                            ]),
                            Expr::Pure(shifted),
                        ),
                        (
                            Pattern::Wildcard,
                            Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                        ),
                    ],
                )
            });
        }

        // Pointer subtraction (6.5.6p9).
        if op == BinOp::Sub && lt.is_pointer() && rt.is_pointer() {
            let pointee = lt.pointee().cloned().unwrap_or(Ctype::Void);
            return self.bind_operands(lhs, rhs, move |s1, s2| {
                Expr::Case(
                    PExpr::Tuple(vec![PExpr::Sym(s1), PExpr::Sym(s2)]),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::sym("p1"))),
                                Pattern::Specified(Box::new(Pattern::sym("p2"))),
                            ]),
                            Expr::Memop(
                                PtrOp::Diff,
                                vec![
                                    PExpr::sym("p1"),
                                    PExpr::sym("p2"),
                                    PExpr::CtypeConst(pointee.clone()),
                                ],
                            ),
                        ),
                        (
                            Pattern::Wildcard,
                            Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                        ),
                    ],
                )
            });
        }

        // Pointer comparisons (6.5.8, 6.5.9) — including pointer vs null
        // constant; the memory model interprets integer operands.
        if op.is_comparison() && (lt.is_pointer() || rt.is_pointer()) {
            let ptr_op = match op {
                BinOp::Eq => PtrOp::Eq,
                BinOp::Ne => PtrOp::Ne,
                BinOp::Lt => PtrOp::Lt,
                BinOp::Gt => PtrOp::Gt,
                BinOp::Le => PtrOp::Le,
                _ => PtrOp::Ge,
            };
            return self.bind_operands(lhs, rhs, move |s1, s2| {
                Expr::Case(
                    PExpr::Tuple(vec![PExpr::Sym(s1), PExpr::Sym(s2)]),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::sym("p1"))),
                                Pattern::Specified(Box::new(Pattern::sym("p2"))),
                            ]),
                            Expr::Memop(ptr_op, vec![PExpr::sym("p1"), PExpr::sym("p2")]),
                        ),
                        (
                            Pattern::Wildcard,
                            Expr::Pure(PExpr::Undef(UbKind::IndeterminateValueUse)),
                        ),
                    ],
                )
            });
        }

        // Plain integer arithmetic: evaluate the operands unsequenced, then
        // compute the pure Fig. 3-style case split over the loaded values.
        let s1 = Ident::fresh("e1");
        let s2 = Ident::fresh("e2");
        let e1 = self.elab_rvalue(lhs);
        let e2 = self.elab_rvalue(rhs);
        let pure_arith = match (lt2.as_integer(), rt2.as_integer()) {
            (Some(li), Some(ri)) => {
                let v1 = Ident::fresh("v1");
                let v2 = Ident::fresh("v2");
                let arith = self.specified_int_arith(
                    op,
                    li,
                    ri,
                    PExpr::Sym(v1.clone()),
                    PExpr::Sym(v2.clone()),
                );
                Expr::Case(
                    PExpr::Tuple(vec![PExpr::Sym(s1.clone()), PExpr::Sym(s2.clone())]),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::Sym(v1))),
                                Pattern::Specified(Box::new(Pattern::Sym(v2))),
                            ]),
                            Expr::Pure(arith),
                        ),
                        (
                            Pattern::Wildcard,
                            Expr::Pure(PExpr::Unspecified(result_ty.clone())),
                        ),
                    ],
                )
            }
            _ => Expr::Pure(PExpr::Error("non-integer operands in arithmetic".into())),
        };
        Expr::Wseq(
            Pattern::Tuple(vec![Pattern::Sym(s1), Pattern::Sym(s2)]),
            Box::new(Expr::Unseq(vec![e1, e2])),
            Box::new(pure_arith),
        )
    }

    fn elab_assign(&mut self, lhs: &AilExpr, rhs: &AilExpr) -> Expr {
        let lty = lhs.ty.clone();
        let rty = rhs.ty.decay();
        let p = Ident::fresh("lhs");
        let v = Ident::fresh("rhs");
        let lv = self.elab_lvalue(lhs);
        let rv = self.elab_rvalue(rhs);
        let converted = self.convert_loaded(&lty, &rty, PExpr::Sym(v.clone()));
        let store = self.action_store(&lty, PExpr::Sym(p.clone()), converted.clone());
        Expr::Wseq(
            Pattern::Tuple(vec![Pattern::Sym(p), Pattern::Sym(v)]),
            Box::new(Expr::Unseq(vec![lv, rv])),
            Box::new(Expr::Sseq(
                Pattern::Wildcard,
                Box::new(store),
                Box::new(Expr::Pure(converted)),
            )),
        )
    }

    fn elab_compound_assign(&mut self, op: BinOp, lhs: &AilExpr, rhs: &AilExpr) -> Expr {
        let lty = lhs.ty.clone();
        let rty = rhs.ty.decay();
        let p = Ident::fresh("lhs");
        let old = Ident::fresh("old");
        let rvs = Ident::fresh("rhs");
        let lv = self.elab_lvalue(lhs);
        let rv = self.elab_rvalue(rhs);
        let load = self.action_load(&lty, PExpr::Sym(p.clone()));

        // The combined value: pointer += integer uses array_shift; integer
        // lvalues use the arithmetic case split, converted back to the
        // lvalue's type.
        let combined: PExpr = match (&lty, lty.as_integer(), rty.as_integer()) {
            (Ctype::Pointer(_, pointee), _, _) => {
                let ov = Ident::fresh("ov");
                let iv = Ident::fresh("iv");
                let delta = if op == BinOp::Sub {
                    Self::binop(Binop::Sub, PExpr::Integer(0), PExpr::Sym(iv.clone()))
                } else {
                    PExpr::Sym(iv.clone())
                };
                PExpr::Case(
                    Box::new(PExpr::Tuple(vec![
                        PExpr::Sym(old.clone()),
                        PExpr::Sym(rvs.clone()),
                    ])),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::Sym(ov.clone()))),
                                Pattern::Specified(Box::new(Pattern::Sym(iv))),
                            ]),
                            PExpr::Specified(Box::new(PExpr::ArrayShift {
                                ptr: Box::new(PExpr::Sym(ov)),
                                elem_ty: (**pointee).clone(),
                                index: Box::new(delta),
                            })),
                        ),
                        (
                            Pattern::Wildcard,
                            PExpr::Undef(UbKind::IndeterminateValueUse),
                        ),
                    ],
                )
            }
            (_, Some(li), Some(ri)) => {
                let ov = Ident::fresh("ov");
                let iv = Ident::fresh("iv");
                let arith = self.specified_int_arith(
                    op,
                    li,
                    ri,
                    PExpr::Sym(ov.clone()),
                    PExpr::Sym(iv.clone()),
                );
                let back = {
                    let res = Ident::fresh("res");
                    PExpr::Case(
                        Box::new(arith),
                        vec![
                            (
                                Pattern::Specified(Box::new(Pattern::Sym(res.clone()))),
                                PExpr::Specified(Box::new(Self::conv_int(li, PExpr::Sym(res)))),
                            ),
                            (Pattern::Wildcard, PExpr::Unspecified(lty.clone())),
                        ],
                    )
                };
                PExpr::Case(
                    Box::new(PExpr::Tuple(vec![
                        PExpr::Sym(old.clone()),
                        PExpr::Sym(rvs.clone()),
                    ])),
                    vec![
                        (
                            Pattern::Tuple(vec![
                                Pattern::Specified(Box::new(Pattern::Sym(ov))),
                                Pattern::Specified(Box::new(Pattern::Sym(iv))),
                            ]),
                            back,
                        ),
                        (Pattern::Wildcard, PExpr::Unspecified(lty.clone())),
                    ],
                )
            }
            _ => PExpr::Error("unsupported compound assignment".into()),
        };

        let result = Ident::fresh("newv");
        let store = self.action_store(&lty, PExpr::Sym(p.clone()), PExpr::Sym(result.clone()));
        Expr::Wseq(
            Pattern::Tuple(vec![Pattern::Sym(p.clone()), Pattern::Sym(rvs)]),
            Box::new(Expr::Unseq(vec![lv, rv])),
            Box::new(Expr::Sseq(
                Pattern::Sym(old),
                Box::new(load),
                Box::new(Expr::Let(
                    Pattern::Sym(result.clone()),
                    combined,
                    Box::new(Expr::Sseq(
                        Pattern::Wildcard,
                        Box::new(store),
                        Box::new(Expr::Pure(PExpr::Sym(result))),
                    )),
                )),
            )),
        )
    }

    fn elab_cast(&mut self, target: &Ctype, inner: &AilExpr) -> Expr {
        let from = inner.ty.decay();
        let s = Ident::fresh("castee");
        let v = Ident::fresh("cv");
        let rv = self.elab_rvalue(inner);

        let body: Expr = match (target, &from) {
            (Ctype::Void, _) => Expr::Pure(PExpr::Specified(Box::new(PExpr::Unit))),
            (Ctype::Integer(to_it), f) if f.is_integer() => Expr::Pure(PExpr::Case(
                Box::new(PExpr::Sym(s.clone())),
                vec![
                    (
                        Pattern::Specified(Box::new(Pattern::Sym(v.clone()))),
                        PExpr::Specified(Box::new(Self::conv_int(*to_it, PExpr::Sym(v.clone())))),
                    ),
                    (Pattern::Wildcard, PExpr::Unspecified(target.clone())),
                ],
            )),
            (Ctype::Integer(_), Ctype::Pointer(..)) => Expr::Case(
                PExpr::Sym(s.clone()),
                vec![
                    (
                        Pattern::Specified(Box::new(Pattern::Sym(v.clone()))),
                        Expr::Memop(
                            PtrOp::IntFromPtr,
                            vec![PExpr::Sym(v.clone()), PExpr::CtypeConst(target.clone())],
                        ),
                    ),
                    (
                        Pattern::Wildcard,
                        Expr::Pure(PExpr::Unspecified(target.clone())),
                    ),
                ],
            ),
            (Ctype::Pointer(..), f) if f.is_integer() => Expr::Case(
                PExpr::Sym(s.clone()),
                vec![
                    (
                        Pattern::Specified(Box::new(Pattern::Sym(v.clone()))),
                        Expr::Memop(
                            PtrOp::PtrFromInt,
                            vec![PExpr::Sym(v.clone()), PExpr::CtypeConst(target.clone())],
                        ),
                    ),
                    (
                        Pattern::Wildcard,
                        Expr::Pure(PExpr::Unspecified(target.clone())),
                    ),
                ],
            ),
            // Pointer-to-pointer casts reinterpret the referenced type but
            // keep the value (and its provenance).
            (Ctype::Pointer(..), Ctype::Pointer(..)) => Expr::Pure(PExpr::Sym(s.clone())),
            _ => Expr::Pure(PExpr::Error(format!(
                "unsupported cast from {from} to {target}"
            ))),
        };
        Expr::Sseq(Pattern::Sym(s), Box::new(rv), Box::new(body))
    }

    fn elab_call(&mut self, callee: &AilExpr, args: &[AilExpr]) -> Expr {
        let f = Ident::fresh("fn");
        let arg_syms: Vec<Ident> = (0..args.len())
            .map(|i| Ident::fresh(&format!("arg{i}")))
            .collect();
        let mut evals = Vec::with_capacity(args.len() + 1);
        evals.push(self.elab_rvalue(callee));
        for a in args {
            evals.push(self.elab_rvalue(a));
        }
        let mut pats = Vec::with_capacity(args.len() + 1);
        pats.push(Pattern::Sym(f.clone()));
        pats.extend(arg_syms.iter().cloned().map(Pattern::Sym));
        let call = Expr::Ccall(
            Box::new(PExpr::Sym(f)),
            arg_syms.into_iter().map(PExpr::Sym).collect(),
        );
        // The evaluations of the function designator and the arguments are
        // unsequenced with respect to each other; the call is sequenced after
        // all of them (6.5.2.2p10). The body of the callee is indeterminately
        // sequenced with respect to the rest of the calling expression.
        Expr::Wseq(
            Pattern::Tuple(pats),
            Box::new(Expr::Unseq(evals)),
            Box::new(Expr::Indet(Box::new(call))),
        )
    }
}
