//! The elaboration \[\[·\]\] from Typed Ail into Core (§5.3–§5.8 of the
//! paper).
//!
//! The elaboration is a compositional translation that makes the dynamic
//! intricacies of C explicit in Core: evaluation order (via `unseq` and
//! weak/strong sequencing), integer promotions and the usual arithmetic
//! conversions (via explicit `conv_int`/`integer_promotion` builtins),
//! arithmetic undefined behaviour (via explicit `undef(...)` tests, as in the
//! paper's Fig. 3 left-shift excerpt), object lifetimes (explicit
//! `create`/`kill` actions), and control flow (via `save`/`run`/`exit`
//! labels).
//!
//! # Example
//!
//! ```
//! use cerberus_ail::desugar::desugar;
//! use cerberus_ast::env::ImplEnv;
//! use cerberus_elab::elaborate_program;
//!
//! let env = ImplEnv::lp64();
//! let ail = desugar("int main(void) { return 1 << 3; }", &env).unwrap();
//! let core = elaborate_program(&ail, &env);
//! assert!(core.proc("main").is_some());
//! ```

pub mod expr;
pub mod stmt;

use cerberus_ail::ail::AilProgram;
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_core::program::{CoreGlobal, CoreProc, CoreProgram};

use crate::stmt::Elaborator;

/// Elaborate a whole desugared program into Core.
pub fn elaborate_program(program: &AilProgram, env: &ImplEnv) -> CoreProgram {
    let mut elab = Elaborator::new(env.clone(), program.tags.clone());
    let mut core = CoreProgram {
        tags: program.tags.clone(),
        ..CoreProgram::default()
    };

    for global in &program.globals {
        let init = elab.elaborate_global_init(global);
        core.globals.push(CoreGlobal {
            name: global.name.clone(),
            ty: global.ty.clone(),
            init,
        });
    }

    for f in &program.functions {
        let body = elab.elaborate_function_body(f);
        core.procs.insert(
            f.name.as_str().to_owned(),
            CoreProc {
                name: f.name.clone(),
                params: f.params.clone(),
                return_ty: f.return_ty.clone(),
                body,
            },
        );
    }

    core.string_literals = elab.take_string_literals();
    if program.has_main() {
        core.main = Some(Ident::new("main"));
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ail::desugar::desugar;
    use cerberus_core::pretty::expr_to_string;

    fn elaborate(src: &str) -> CoreProgram {
        let env = ImplEnv::lp64();
        let ail = desugar(src, &env).unwrap();
        elaborate_program(&ail, &env)
    }

    #[test]
    fn minimal_program_elaborates() {
        let core = elaborate("int main(void) { return 0; }");
        assert!(core.main.is_some());
        assert_eq!(core.proc_count(), 1);
    }

    #[test]
    fn globals_get_initialisation_expressions() {
        let core = elaborate("int y = 2, x = 1; int main(void) { return x + y; }");
        assert_eq!(core.globals.len(), 2);
        let rendered = expr_to_string(&core.globals[0].init);
        assert!(rendered.contains("store"));
    }

    #[test]
    fn shift_elaboration_contains_the_fig3_ub_tests() {
        // The Fig. 3 excerpt: the elaboration of << introduces explicit
        // undef() tests for negative shifts, too-large shifts and signed
        // overflow.
        let core = elaborate("int shift(int a, int b) { return a << b; }");
        let body = expr_to_string(&core.proc("shift").unwrap().body);
        assert!(body.contains("undef(Negative_shift)"), "{body}");
        assert!(body.contains("undef(Shift_too_large)"), "{body}");
        assert!(body.contains("undef(Exceptional_condition)"), "{body}");
        assert!(body.contains("unseq("), "{body}");
        assert!(body.contains("let weak"), "{body}");
    }

    #[test]
    fn division_elaboration_checks_for_zero() {
        let core = elaborate("int f(int a, int b) { return a / b; }");
        let body = expr_to_string(&core.proc("f").unwrap().body);
        assert!(body.contains("undef(Division_by_zero)"), "{body}");
    }

    #[test]
    fn string_literals_become_objects() {
        let core =
            elaborate("#include <stdio.h>\nint main(void) { printf(\"hello\\n\"); return 0; }");
        assert_eq!(core.string_literals.len(), 1);
        assert_eq!(core.string_literals[0].1, b"hello\n".to_vec());
    }

    #[test]
    fn loops_use_save_and_run() {
        let core = elaborate("int main(void) { int i; for (i = 0; i < 4; i++) {} return i; }");
        let body = expr_to_string(&core.proc("main").unwrap().body);
        assert!(body.contains("save "), "{body}");
        assert!(body.contains("run "), "{body}");
        assert!(body.contains("exit "), "{body}");
    }

    #[test]
    fn local_declarations_create_and_kill_objects() {
        let core = elaborate("int main(void) { int x = 3; return x; }");
        let body = expr_to_string(&core.proc("main").unwrap().body);
        assert!(body.contains("create("), "{body}");
        assert!(body.contains("kill("), "{body}");
        assert!(body.contains("store("), "{body}");
        assert!(body.contains("load("), "{body}");
    }

    #[test]
    fn postfix_increment_has_a_negative_store() {
        let core = elaborate("int main(void) { int x = 0; x++; return x; }");
        let body = expr_to_string(&core.proc("main").unwrap().body);
        assert!(body.contains("neg(store("), "{body}");
    }

    #[test]
    fn logical_and_is_short_circuiting() {
        let core = elaborate("int f(int a, int b) { return a && b; }");
        let body = expr_to_string(&core.proc("f").unwrap().body);
        // The second operand is under a conditional, not an unseq.
        assert!(body.contains("if"), "{body}");
    }
}
