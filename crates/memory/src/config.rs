//! Memory model configurations: the semantic choices that distinguish the
//! points in the design space the paper explores.
//!
//! Each [`ModelConfig`] fixes an answer to the §2 questions that the memory
//! engine consults at runtime: whether accesses are checked against
//! provenance (DR260), how uninitialised reads behave (Q43 / survey [2/15]),
//! what member stores do to padding (Q59 / [1/15]), whether effective types
//! are enforced (Q75 / [11/15]), whether relational comparison of pointers to
//! different objects is allowed (Q25 / [7/15]), and so on. The presets cover
//! the models discussed in the paper and the tool-emulation profiles of §3.

/// Semantics of reading an uninitialised object (§2.4, survey [2/15]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UninitSemantics {
    /// Option (1): undefined behaviour.
    Undefined,
    /// Options (2)/(3): an unspecified value that need not be stable.
    UnstableUnspecified,
    /// Option (4): an arbitrary but stable unspecified value.
    StableUnspecified,
}

/// Semantics of padding bytes after a member store (§2.5, survey [1/15]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaddingSemantics {
    /// Options (1)/(2): member writes make subsequent padding unspecified.
    MemberStoreClobbers,
    /// Option (3): member writes zero subsequent padding.
    MemberStoreZeroes,
    /// Option (4): member writes never touch padding.
    Preserved,
}

/// Semantics of casting an integer to a pointer (Q5, Q9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntToPtrSemantics {
    /// Track provenance through integers: the resulting pointer carries the
    /// integer's provenance (the candidate de facto model).
    TrackedProvenance,
    /// Give the result a wildcard provenance (most permissive).
    Wildcard,
    /// Forbidden: integer-to-pointer round trips are not given a usable
    /// provenance (abstract block models such as early CompCert).
    Forbidden,
}

/// Semantics of relational comparison of pointers to different objects
/// (Q25, survey [7/15]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationalSemantics {
    /// Compare the concrete addresses, ignoring provenance (the de facto
    /// expectation: global lock orderings, collection orderings).
    ByAddress,
    /// Undefined behaviour, as ISO 6.5.8p5 has it.
    Undefined,
}

/// Which engine implementation a [`ModelConfig`] instantiates (the two
/// [`crate::model::MemoryModel`] implementations shipped in-tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The concrete byte-representation engine ([`crate::state::MemState`]):
    /// one flat address space, eager access checks over representation bytes.
    #[default]
    Concrete,
    /// The symbolic provenance engine
    /// ([`crate::symbolic::SymbolicEngine`]): per-allocation address regions,
    /// typed cells, lazy constraint checking.
    Symbolic,
    /// The fault-injection engine ([`crate::fault::PanickingEngine`]): every
    /// execution panics. Used to drill the harness's panic containment; never
    /// part of [`ModelConfig::all_named`].
    Panicking,
}

/// The analysis tools of §3 whose detection envelopes the tool-emulation
/// configurations approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolProfile {
    /// The Clang address/memory/undefined-behaviour sanitisers (liberal on
    /// provenance and padding, catching gross spatial errors).
    Sanitizer,
    /// TrustInSoft tis-interpreter (strict on unspecified values, assumes a
    /// concrete zero null pointer, rejects representation games).
    TisInterpreter,
    /// KCC / RV-Match (strict on uninitialised reads, laxer on effective
    /// types).
    Kcc,
}

/// A complete memory-model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Human-readable name used in reports and benchmarks.
    pub name: &'static str,
    /// Which engine implementation realises this configuration (see
    /// [`ModelConfig::instantiate`]).
    pub engine: EngineKind,
    /// Check every access against the footprint of the allocation identified
    /// by the pointer's provenance (DR260); disabling this gives the fully
    /// concrete semantics.
    pub provenance_checking: bool,
    /// Permit construction of transiently out-of-bounds pointers (Q31): when
    /// `false`, pointer arithmetic that leaves [base, base+size] is immediate
    /// undefined behaviour (the strict ISO reading of 6.5.6p8).
    pub allow_oob_pointer_arith: bool,
    /// Relational comparison of pointers into different objects.
    pub relational: RelationalSemantics,
    /// Whether pointer equality takes provenance into account (Q2): `true`
    /// makes two pointers with equal addresses but different provenances
    /// compare unequal (observable GCC behaviour within one translation
    /// unit); `false` compares addresses only.
    pub equality_uses_provenance: bool,
    /// Semantics of uninitialised reads.
    pub uninit: UninitSemantics,
    /// Semantics of padding bytes around member stores.
    pub padding: PaddingSemantics,
    /// Enforce the effective-type (strict aliasing) rules of 6.5p6-7.
    pub effective_types: bool,
    /// Semantics of integer-to-pointer casts.
    pub int_to_ptr: IntToPtrSemantics,
    /// Use of a pointer value whose object's lifetime has ended is undefined
    /// behaviour (rather than comparing stale addresses).
    pub dangling_use_is_ub: bool,
    /// CHERI capability semantics: pointers carry bounds metadata, equality
    /// compares metadata, and non-`intptr_t` integers do not carry provenance.
    pub cheri: bool,
    /// Emulate the GCC-style provenance-based alias reasoning on the DR260
    /// example: a store through a pointer whose provenance footprint does not
    /// cover the target address is treated as not affecting the object that
    /// actually lives there (the store is redirected to the one-past shadow of
    /// its provenance allocation), so later loads of the overlapping object
    /// still see its old value — reproducing GCC's `x=1 y=2 *p=11 *q=2`.
    pub provenance_optimising_stores: bool,
}

impl ModelConfig {
    /// The fully concrete semantics: pointers are plain addresses, accesses
    /// are checked only against *some* live allocation, uninitialised reads
    /// give stable unspecified values. This plays the role of the "what the
    /// hardware would do" baseline in §2.1 ("in a concrete semantics we would
    /// expect to see x=1 y=11 *p=11 *q=11").
    pub fn concrete() -> Self {
        ModelConfig {
            name: "concrete",
            engine: EngineKind::Concrete,
            provenance_checking: false,
            allow_oob_pointer_arith: true,
            relational: RelationalSemantics::ByAddress,
            equality_uses_provenance: false,
            uninit: UninitSemantics::StableUnspecified,
            padding: PaddingSemantics::Preserved,
            effective_types: false,
            int_to_ptr: IntToPtrSemantics::Wildcard,
            dangling_use_is_ub: false,
            cheri: false,
            provenance_optimising_stores: false,
        }
    }

    /// The candidate de facto memory object model of §5.9: provenance-checked
    /// accesses, transient out-of-bounds pointers permitted, relational
    /// comparison by address, provenance tracked through integers, effective
    /// types off (systems code compiled with `-fno-strict-aliasing`).
    pub fn de_facto() -> Self {
        ModelConfig {
            name: "de-facto",
            engine: EngineKind::Concrete,
            provenance_checking: true,
            allow_oob_pointer_arith: true,
            relational: RelationalSemantics::ByAddress,
            equality_uses_provenance: false,
            uninit: UninitSemantics::StableUnspecified,
            padding: PaddingSemantics::Preserved,
            effective_types: false,
            int_to_ptr: IntToPtrSemantics::TrackedProvenance,
            dangling_use_is_ub: true,
            cheri: false,
            provenance_optimising_stores: false,
        }
    }

    /// A strict reading of the ISO standard: provenance-checked accesses,
    /// out-of-bounds pointer arithmetic undefined immediately, relational
    /// comparison across objects undefined, uninitialised reads undefined,
    /// effective types enforced.
    pub fn strict_iso() -> Self {
        ModelConfig {
            name: "strict-iso",
            engine: EngineKind::Concrete,
            provenance_checking: true,
            allow_oob_pointer_arith: false,
            relational: RelationalSemantics::Undefined,
            equality_uses_provenance: false,
            uninit: UninitSemantics::Undefined,
            padding: PaddingSemantics::MemberStoreClobbers,
            effective_types: true,
            int_to_ptr: IntToPtrSemantics::TrackedProvenance,
            dangling_use_is_ub: true,
            cheri: false,
            provenance_optimising_stores: false,
        }
    }

    /// A GCC-like optimising interpretation: like the de facto model but with
    /// provenance-aware equality (Q2) and provenance-based alias reasoning on
    /// stores (the §2.1 DR260 example).
    pub fn gcc_like() -> Self {
        ModelConfig {
            name: "gcc-like",
            equality_uses_provenance: true,
            provenance_optimising_stores: true,
            ..ModelConfig::de_facto()
        }
    }

    /// A CompCert-style abstract block model: no usable integer/pointer round
    /// trips, no relational comparison across blocks.
    pub fn block() -> Self {
        ModelConfig {
            name: "block",
            engine: EngineKind::Concrete,
            provenance_checking: true,
            allow_oob_pointer_arith: false,
            relational: RelationalSemantics::Undefined,
            equality_uses_provenance: false,
            uninit: UninitSemantics::Undefined,
            padding: PaddingSemantics::MemberStoreClobbers,
            effective_types: false,
            int_to_ptr: IntToPtrSemantics::Forbidden,
            dangling_use_is_ub: true,
            cheri: false,
            provenance_optimising_stores: false,
        }
    }

    /// The CHERI C model of §4: dynamically enforced spatial safety with
    /// capability metadata on pointers.
    pub fn cheri() -> Self {
        ModelConfig {
            name: "cheri",
            engine: EngineKind::Concrete,
            provenance_checking: true,
            allow_oob_pointer_arith: true,
            relational: RelationalSemantics::ByAddress,
            equality_uses_provenance: true,
            uninit: UninitSemantics::StableUnspecified,
            padding: PaddingSemantics::Preserved,
            effective_types: false,
            int_to_ptr: IntToPtrSemantics::TrackedProvenance,
            dangling_use_is_ub: true,
            cheri: true,
            provenance_optimising_stores: false,
        }
    }

    /// The tool-emulation profile for one of the §3 analysis tools.
    pub fn tool(profile: ToolProfile) -> Self {
        match profile {
            // The sanitisers adopt "a liberal semantics to accommodate the de
            // facto standards": padding and unspecified-value tests pass, and
            // only gross spatial violations are flagged.
            ToolProfile::Sanitizer => ModelConfig {
                name: "sanitizer",
                engine: EngineKind::Concrete,
                provenance_checking: false,
                allow_oob_pointer_arith: true,
                relational: RelationalSemantics::ByAddress,
                equality_uses_provenance: false,
                uninit: UninitSemantics::StableUnspecified,
                padding: PaddingSemantics::Preserved,
                effective_types: false,
                int_to_ptr: IntToPtrSemantics::Wildcard,
                dangling_use_is_ub: true,
                cheri: false,
                provenance_optimising_stores: false,
            },
            // tis-interpreter "aims for a tight semantics", flagging most
            // unspecified-value tests and representation games.
            ToolProfile::TisInterpreter => ModelConfig {
                name: "tis-interpreter",
                engine: EngineKind::Concrete,
                provenance_checking: true,
                allow_oob_pointer_arith: false,
                relational: RelationalSemantics::Undefined,
                equality_uses_provenance: false,
                uninit: UninitSemantics::Undefined,
                padding: PaddingSemantics::MemberStoreClobbers,
                effective_types: false,
                int_to_ptr: IntToPtrSemantics::TrackedProvenance,
                dangling_use_is_ub: true,
                cheri: false,
                provenance_optimising_stores: false,
            },
            // KCC: "a very strict semantics for reading uninitialised values
            // (but not for padding bytes), and permitted some tests that ISO
            // effective types forbid".
            ToolProfile::Kcc => ModelConfig {
                name: "kcc",
                engine: EngineKind::Concrete,
                provenance_checking: true,
                allow_oob_pointer_arith: false,
                relational: RelationalSemantics::Undefined,
                equality_uses_provenance: false,
                uninit: UninitSemantics::Undefined,
                padding: PaddingSemantics::Preserved,
                effective_types: false,
                int_to_ptr: IntToPtrSemantics::TrackedProvenance,
                dangling_use_is_ub: true,
                cheri: false,
                provenance_optimising_stores: false,
            },
        }
    }

    /// The symbolic provenance model: realised by
    /// [`crate::symbolic::SymbolicEngine`] rather than by a configuration of
    /// the concrete engine. Allocations live in disjoint symbolic address
    /// regions (so one-past pointers never alias a neighbour), storage is
    /// typed cells rather than representation bytes, and footprint/lifetime
    /// constraints are checked lazily at use. The flags below record the
    /// semantics the engine realises; only `uninit`, `int_to_ptr` and
    /// `allow_oob_pointer_arith` are consulted at runtime.
    pub fn symbolic() -> Self {
        ModelConfig {
            name: "symbolic",
            engine: EngineKind::Symbolic,
            provenance_checking: true,
            allow_oob_pointer_arith: true,
            relational: RelationalSemantics::Undefined,
            equality_uses_provenance: true,
            uninit: UninitSemantics::StableUnspecified,
            padding: PaddingSemantics::Preserved,
            effective_types: false,
            int_to_ptr: IntToPtrSemantics::TrackedProvenance,
            dangling_use_is_ub: true,
            cheri: false,
            provenance_optimising_stores: false,
        }
    }

    /// The always-panicking fault-injection model
    /// ([`crate::fault::PanickingEngine`]): every execution under it panics,
    /// exercising the differential harness's panic containment. Deliberately
    /// *not* part of [`ModelConfig::all_named`] — it only enters a matrix
    /// when injected explicitly by a test or a fault drill.
    pub fn panicking() -> Self {
        ModelConfig {
            name: "panicking",
            engine: EngineKind::Panicking,
            ..ModelConfig::de_facto()
        }
    }

    /// All the named model configurations, in a stable order (used by the
    /// experiment harness).
    pub fn all_named() -> Vec<ModelConfig> {
        vec![
            ModelConfig::concrete(),
            ModelConfig::de_facto(),
            ModelConfig::strict_iso(),
            ModelConfig::gcc_like(),
            ModelConfig::block(),
            ModelConfig::cheri(),
            ModelConfig::tool(ToolProfile::Sanitizer),
            ModelConfig::tool(ToolProfile::TisInterpreter),
            ModelConfig::tool(ToolProfile::Kcc),
            ModelConfig::symbolic(),
        ]
    }

    /// Look up a named configuration (the names of [`ModelConfig::all_named`],
    /// e.g. for a command-line `--models concrete,symbolic` selection).
    pub fn by_name(name: &str) -> Option<ModelConfig> {
        ModelConfig::all_named()
            .into_iter()
            .find(|m| m.name == name)
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::de_facto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names() {
        let mut names: Vec<_> = ModelConfig::all_named().iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        assert_eq!(before, 10);
    }

    #[test]
    fn by_name_round_trips_every_preset() {
        for config in ModelConfig::all_named() {
            assert_eq!(ModelConfig::by_name(config.name), Some(config.clone()));
        }
        assert_eq!(ModelConfig::by_name("no-such-model"), None);
    }

    #[test]
    fn symbolic_is_the_only_non_concrete_engine() {
        let engines: Vec<_> = ModelConfig::all_named()
            .into_iter()
            .filter(|m| m.engine == EngineKind::Symbolic)
            .map(|m| m.name)
            .collect();
        assert_eq!(engines, vec!["symbolic"]);
    }

    #[test]
    fn the_panicking_model_is_never_named() {
        assert_eq!(ModelConfig::panicking().engine, EngineKind::Panicking);
        assert_eq!(ModelConfig::by_name("panicking"), None);
    }

    #[test]
    fn de_facto_permits_what_iso_forbids() {
        let df = ModelConfig::de_facto();
        let iso = ModelConfig::strict_iso();
        assert!(df.allow_oob_pointer_arith);
        assert!(!iso.allow_oob_pointer_arith);
        assert_eq!(df.relational, RelationalSemantics::ByAddress);
        assert_eq!(iso.relational, RelationalSemantics::Undefined);
        assert!(!df.effective_types);
        assert!(iso.effective_types);
    }

    #[test]
    fn gcc_like_extends_de_facto() {
        let g = ModelConfig::gcc_like();
        assert!(g.provenance_checking);
        assert!(g.equality_uses_provenance);
        assert!(g.provenance_optimising_stores);
    }

    #[test]
    fn sanitizer_is_liberal_tis_is_strict() {
        let san = ModelConfig::tool(ToolProfile::Sanitizer);
        let tis = ModelConfig::tool(ToolProfile::TisInterpreter);
        assert_eq!(san.uninit, UninitSemantics::StableUnspecified);
        assert_eq!(tis.uninit, UninitSemantics::Undefined);
        assert!(!san.provenance_checking);
        assert!(tis.provenance_checking);
    }

    #[test]
    fn kcc_is_strict_on_uninit_but_not_padding() {
        let kcc = ModelConfig::tool(ToolProfile::Kcc);
        assert_eq!(kcc.uninit, UninitSemantics::Undefined);
        assert_eq!(kcc.padding, PaddingSemantics::Preserved);
    }

    #[test]
    fn default_is_the_candidate_model() {
        assert_eq!(ModelConfig::default().name, "de-facto");
    }
}
