//! Memory object models for Cerberus-rs.
//!
//! The paper's central observation is that the semantics of pointers and
//! memory is where the ISO and de facto standards diverge most (§2), and its
//! candidate *de facto memory object model* (§5.9) gives pointer and integer
//! values a **provenance** — empty, a single allocation ID, or a wildcard —
//! used at access time to decide whether an access is defined.
//!
//! This crate provides:
//!
//! * the abstract memory object model interface ([`model::MemoryModel`]):
//!   the §5.9 signature (create/kill, typed load/store, the ptrops, the
//!   intptr casts, relational operations, UB reporting) that the executor in
//!   `cerberus-exec` is generic over;
//! * the value representations ([`value`]): integer and pointer values
//!   carrying provenance, and structured memory values;
//! * a configurable memory engine ([`state::MemState`], exported as
//!   [`model::ConcreteEngine`] — the first `MemoryModel` implementation)
//!   implementing object creation/kill, typed loads and stores over
//!   representation bytes, padding semantics, effective types, and the
//!   pointer operations (`ptrop`s);
//! * a second, genuinely different implementation: the **symbolic provenance
//!   engine** ([`symbolic::SymbolicEngine`]), which places each allocation in
//!   its own symbolic address region, stores typed cells instead of
//!   representation bytes, and checks footprint/lifetime constraints lazily
//!   at use (twin-allocation-style resolution of one-past pointers and
//!   intptr round trips);
//! * closed-world dispatch between the two ([`model::AnyEngine`], what
//!   [`config::ModelConfig::instantiate`] returns);
//! * a family of model configurations ([`config::ModelConfig`]): the concrete
//!   (provenance-erasing) model, the candidate de facto provenance model, a
//!   strict-ISO model, a GCC-like provenance-optimising model, a CompCert-style
//!   block model, a CHERI capability model, tool-emulation profiles for
//!   the §3 comparison (sanitisers, tis-interpreter, KCC), and the symbolic
//!   model;
//! * CHERI capability semantics ([`cheri`]) reproducing the §4 findings;
//! * resource budgets ([`limits::ResourceLimits`]) enforced by both engines
//!   at allocation time, and a fault-injection model
//!   ([`fault::PanickingEngine`]) for drilling the differential harness's
//!   panic containment.
//!
//! How to implement and register a further model is documented in
//! `docs/MEMORY_MODELS.md`.
//!
//! # Example
//!
//! ```
//! use cerberus_ast::ctype::{Ctype, IntegerType};
//! use cerberus_ast::env::ImplEnv;
//! use cerberus_ast::layout::TagRegistry;
//! use cerberus_memory::config::ModelConfig;
//! use cerberus_memory::state::{AllocKind, MemState};
//! use cerberus_memory::value::MemValue;
//!
//! let mut mem = MemState::new(ModelConfig::de_facto(), ImplEnv::lp64(), TagRegistry::new());
//! let int = Ctype::integer(IntegerType::Int);
//! let p = mem.create(&int, AllocKind::Automatic, Some("x")).unwrap();
//! mem.store(&int, &p, &MemValue::int(IntegerType::Int, 42)).unwrap();
//! let loaded = mem.load(&int, &p).unwrap();
//! assert_eq!(loaded.as_int(), Some(42));
//! ```

pub mod cheri;
pub mod config;
pub mod fault;
pub mod limits;
pub mod model;
pub mod state;
pub mod symbolic;
pub mod value;

pub use config::{
    EngineKind, IntToPtrSemantics, ModelConfig, PaddingSemantics, RelationalSemantics, ToolProfile,
    UninitSemantics,
};
pub use fault::PanickingEngine;
pub use limits::{ResourceKind, ResourceLimits, TimeoutKind};
pub use model::{AnyEngine, ConcreteEngine, MemoryModel, ModelResult};
pub use state::{AllocKind, Allocation, MemError, MemErrorKind, MemState};
pub use symbolic::SymbolicEngine;
pub use value::{AllocId, IntegerValue, MemValue, PointerValue, Provenance};
