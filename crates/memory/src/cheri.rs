//! CHERI C capability semantics (§4 of the paper).
//!
//! The paper applied its analysis and test suite to the CHERI C
//! implementation and found several divergences from the expected de facto
//! behaviour. This module models the relevant capability semantics so that
//! those findings can be reproduced as experiments (E12):
//!
//! 1. **Pointer equality**: CHERI originally compared capabilities by address
//!    only, so "two pointers with different provenance compare equal, but not
//!    be interchangeable"; the fix was a compare-exactly-equal instruction
//!    comparing address *and* metadata.
//! 2. **`uintptr_t` bitwise arithmetic**: `(i & 3u) == 0u` evaluated to false
//!    even though the low bits of the address were zero, because the `&` was
//!    applied to the capability's *offset* field rather than the full
//!    address.
//! 3. **Provenance of non-`intptr_t` integers**: CHERI's ordinary integer
//!    values carry no provenance, and provenance in arithmetic is inherited
//!    from the left-hand operand only.

use crate::value::{CapMeta, PointerValue, Provenance};

/// A CHERI capability for a C pointer or `uintptr_t` value: base, length,
/// offset and tag. The represented address is `base + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    /// Base address of the capability's bounds.
    pub base: u64,
    /// Length of the bounds in bytes.
    pub length: u64,
    /// Offset from the base; the capability's address is `base + offset`.
    pub offset: u64,
    /// Validity tag.
    pub tag: bool,
    /// The allocation the capability was derived from.
    pub prov: Provenance,
}

impl Capability {
    /// A capability covering one whole allocation, pointing at its base.
    pub fn for_allocation(base: u64, length: u64, prov: Provenance) -> Self {
        Capability {
            base,
            length,
            offset: 0,
            tag: true,
            prov,
        }
    }

    /// Construct a capability from a [`PointerValue`] carrying CHERI
    /// metadata.
    pub fn from_pointer(p: &PointerValue) -> Option<Self> {
        let cap = p.cap?;
        Some(Capability {
            base: cap.base,
            length: cap.length,
            offset: p.addr - cap.base,
            tag: cap.tag,
            prov: p.prov,
        })
    }

    /// The full address represented by the capability.
    pub fn address(&self) -> u64 {
        self.base + self.offset
    }

    /// Whether an access of `len` bytes at the capability's address is within
    /// bounds.
    pub fn in_bounds(&self, len: u64) -> bool {
        self.tag && self.offset + len <= self.length
    }

    /// Convert back to a [`PointerValue`].
    pub fn to_pointer(self) -> PointerValue {
        PointerValue {
            prov: self.prov,
            addr: self.address(),
            cap: Some(CapMeta {
                base: self.base,
                length: self.length,
                tag: self.tag,
            }),
            function: None,
        }
    }
}

/// CHERI pointer equality as originally implemented: compares the represented
/// *addresses* only, so capabilities with different provenance can compare
/// equal without being interchangeable (the first §4 finding).
pub fn eq_by_address(a: &Capability, b: &Capability) -> bool {
    a.address() == b.address()
}

/// The compare-exactly-equal semantics the CHERI developers added in response:
/// compares the address and all the metadata.
pub fn eq_exact(a: &Capability, b: &Capability) -> bool {
    a.address() == b.address()
        && a.base == b.base
        && a.length == b.length
        && a.tag == b.tag
        && a.prov == b.prov
}

/// Bitwise AND on a `uintptr_t` value represented as a capability, as the
/// original CHERI implementation computed it: the mask is applied to the
/// **offset** field, and the result is the fat pointer with that offset — so
/// the *represented value* is `base + (offset & mask)`, not
/// `(base + offset) & mask` (the second §4 finding).
pub fn uintptr_bitand_offset_semantics(i: &Capability, mask: u64) -> u64 {
    i.base + (i.offset & mask)
}

/// The value a programmer would expect from `(uintptr_t)p & mask`: the mask
/// applied to the full address.
pub fn uintptr_bitand_address_semantics(i: &Capability, mask: u64) -> u64 {
    i.address() & mask
}

/// Whether the defensive alignment check `(i & 3u) == 0u` succeeds under the
/// given semantics for a capability-represented `uintptr_t`.
pub fn alignment_check_passes(i: &Capability, mask: u64, offset_semantics: bool) -> bool {
    let v = if offset_semantics {
        uintptr_bitand_offset_semantics(i, mask)
    } else {
        uintptr_bitand_address_semantics(i, mask)
    };
    v == 0
}

/// CHERI provenance rule for arithmetic on integers: non-`intptr_t` integer
/// values do not carry pointer provenance, and for `uintptr_t` arithmetic the
/// provenance "is only inherited from the left-hand side" (the third §4
/// finding / codified constraint).
pub fn arithmetic_provenance(lhs: Provenance, _rhs: Provenance) -> Provenance {
    lhs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aligned_interior_cap() -> Capability {
        // An allocation at a 16-aligned base; the capability points at offset
        // 6 within it, i.e. at an address whose low bits depend on base+offset.
        Capability {
            base: 0x1_0000,
            length: 64,
            offset: 6,
            tag: true,
            prov: Provenance::Alloc(1),
        }
    }

    #[test]
    fn equality_by_address_vs_exact() {
        let a = Capability {
            base: 0x1_0000,
            length: 4,
            offset: 4,
            tag: true,
            prov: Provenance::Alloc(1),
        };
        let b = Capability {
            base: 0x1_0004,
            length: 4,
            offset: 0,
            tag: true,
            prov: Provenance::Alloc(2),
        };
        // Same represented address (one-past a == base of b) …
        assert_eq!(a.address(), b.address());
        // … so the original semantics calls them equal, although they are not
        // interchangeable; the exact comparison distinguishes them.
        assert!(eq_by_address(&a, &b));
        assert!(!eq_exact(&a, &b));
    }

    #[test]
    fn uintptr_bitand_quirk_reproduces() {
        // (i & 3u) == 0u with i pointing at an address whose low two bits are
        // zero: base = 0x10000, offset = 8 → address 0x10008, aligned.
        let i = Capability {
            base: 0x1_0000,
            length: 64,
            offset: 8,
            tag: true,
            prov: Provenance::Alloc(1),
        };
        assert_eq!(i.address() & 3, 0);
        // Expected (address) semantics: the test passes.
        assert_eq!(uintptr_bitand_address_semantics(&i, 3), 0);
        // CHERI's offset semantics: the result is base + (offset & 3) =
        // 0x10000, which is non-zero, so `(i & 3u) == 0u` is false even
        // though the address is aligned.
        assert_ne!(uintptr_bitand_offset_semantics(&i, 3), 0);
    }

    #[test]
    fn interior_offset_also_differs() {
        let i = aligned_interior_cap();
        assert_ne!(
            uintptr_bitand_offset_semantics(&i, 3),
            uintptr_bitand_address_semantics(&i, 3)
        );
    }

    #[test]
    fn bounds_checking() {
        let c = Capability::for_allocation(0x2_0000, 16, Provenance::Alloc(7));
        assert!(c.in_bounds(16));
        assert!(!c.in_bounds(17));
        let mut untagged = c;
        untagged.tag = false;
        assert!(!untagged.in_bounds(1));
    }

    #[test]
    fn pointer_round_trip() {
        let c = Capability {
            base: 0x3_0000,
            length: 32,
            offset: 8,
            tag: true,
            prov: Provenance::Alloc(9),
        };
        let p = c.to_pointer();
        assert_eq!(p.addr, 0x3_0008);
        let back = Capability::from_pointer(&p).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn arithmetic_provenance_is_left_biased() {
        assert_eq!(
            arithmetic_provenance(Provenance::Alloc(1), Provenance::Alloc(2)),
            Provenance::Alloc(1)
        );
        assert_eq!(
            arithmetic_provenance(Provenance::Empty, Provenance::Alloc(2)),
            Provenance::Empty
        );
    }
}
