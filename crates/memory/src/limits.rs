//! Resource budgets for one execution.
//!
//! The §6 validation runs hundreds of generated programs, and the roadmap's
//! UB-oracle service ingests arbitrary C: a pathological program must exhaust
//! a *budget* and surface as a structured outcome, never hang a worker or
//! abort a suite. [`ResourceLimits`] is that budget — steps, wall-clock time,
//! allocation totals, live-allocation count and call depth — carried by the
//! pipeline `Config`, the execution `Driver` and both memory engines, and
//! enforced cooperatively: the interpreter checks steps/time/call depth, the
//! engines check the allocation budgets at every `create`/`alloc`.
//!
//! Exhaustion is reported with a [`ResourceKind`] (which budget) or a
//! [`TimeoutKind`] (which clock), so downstream consumers — the differential
//! matrix, the litmus suite, the fuzz loop — can aggregate without string
//! matching.

/// Which allocation/recursion budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// The cumulative allocated-bytes budget ([`ResourceLimits::heap_bytes`]).
    HeapBytes,
    /// The live-allocation-count budget
    /// ([`ResourceLimits::max_live_allocations`]).
    LiveAllocations,
    /// The call-depth budget ([`ResourceLimits::call_depth`]).
    CallDepth,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::HeapBytes => write!(f, "allocated-bytes budget"),
            ResourceKind::LiveAllocations => write!(f, "live-allocation budget"),
            ResourceKind::CallDepth => write!(f, "call-depth budget"),
        }
    }
}

/// Which clock bounded the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeoutKind {
    /// The step budget ([`ResourceLimits::steps`]) ran out — deterministic,
    /// the §6 notion of a timeout.
    StepBudget,
    /// The wall-clock watchdog ([`ResourceLimits::wall_clock_ms`]) fired.
    WallClock,
}

impl std::fmt::Display for TimeoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeoutKind::StepBudget => write!(f, "step budget"),
            TimeoutKind::WallClock => write!(f, "wall clock"),
        }
    }
}

/// The resource budget of one execution.
///
/// The defaults reproduce the pre-budget behaviour: 2M steps, a call depth of
/// 256, and no wall-clock, heap or live-allocation bound. The wall-clock
/// watchdog defaults to off because differential matrices must be
/// deterministic — enable it per run (a fuzz worker, a service job) where a
/// hung row is worse than a nondeterministic one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Interpreter step budget (exhaustion reports
    /// [`TimeoutKind::StepBudget`]).
    pub steps: u64,
    /// Optional wall-clock watchdog in milliseconds (exhaustion reports
    /// [`TimeoutKind::WallClock`]). `None` disables the clock.
    pub wall_clock_ms: Option<u64>,
    /// Optional budget on cumulative bytes allocated over the execution
    /// (objects, `malloc`, string literals all count; `free` does not refund).
    pub heap_bytes: Option<u64>,
    /// Optional budget on simultaneously live allocations.
    pub max_live_allocations: Option<usize>,
    /// Maximum C call depth.
    pub call_depth: usize,
}

impl ResourceLimits {
    /// The default step budget (the §6 timeout analogue).
    pub const DEFAULT_STEPS: u64 = 2_000_000;
    /// The default call-depth bound.
    pub const DEFAULT_CALL_DEPTH: usize = 256;

    /// The default budget with a different step limit (the historical
    /// `step_limit` knob).
    pub fn with_steps(steps: u64) -> Self {
        ResourceLimits {
            steps,
            ..ResourceLimits::default()
        }
    }

    /// This budget with a wall-clock watchdog of `ms` milliseconds.
    pub fn with_wall_clock_ms(mut self, ms: u64) -> Self {
        self.wall_clock_ms = Some(ms);
        self
    }

    /// This budget with a cumulative allocated-bytes bound.
    pub fn with_heap_bytes(mut self, bytes: u64) -> Self {
        self.heap_bytes = Some(bytes);
        self
    }

    /// This budget with a live-allocation-count bound.
    pub fn with_max_live_allocations(mut self, count: usize) -> Self {
        self.max_live_allocations = Some(count);
        self
    }

    /// This budget with a call-depth bound.
    pub fn with_call_depth(mut self, depth: usize) -> Self {
        self.call_depth = depth;
        self
    }

    /// The host-stack size an execution under this budget needs.
    ///
    /// The interpreter recurses on the host stack — one cluster of frames per
    /// C call, tens of kilobytes in unoptimised builds — so
    /// [`ResourceLimits::call_depth`] only protects the process if the
    /// executing thread's stack is sized for it. Execution entry points run
    /// the driver on a worker thread with this much stack, guaranteeing the
    /// budget surfaces as [`ResourceKind::CallDepth`] before the host stack
    /// runs out. Clamped to 1 GiB so an absurd depth cannot make spawning the
    /// worker itself fail.
    pub fn host_stack_bytes(&self) -> usize {
        const BYTES_PER_C_FRAME: usize = 64 * 1024;
        const HEADROOM: usize = 1 << 20;
        self.call_depth
            .saturating_mul(BYTES_PER_C_FRAME)
            .saturating_add(HEADROOM)
            .min(1 << 30)
    }
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            steps: Self::DEFAULT_STEPS,
            wall_clock_ms: None,
            heap_bytes: None,
            max_live_allocations: None,
            call_depth: Self::DEFAULT_CALL_DEPTH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_pre_budget_behaviour() {
        let limits = ResourceLimits::default();
        assert_eq!(limits.steps, 2_000_000);
        assert_eq!(limits.call_depth, 256);
        assert_eq!(limits.wall_clock_ms, None);
        assert_eq!(limits.heap_bytes, None);
        assert_eq!(limits.max_live_allocations, None);
    }

    #[test]
    fn builders_compose() {
        let limits = ResourceLimits::with_steps(500)
            .with_wall_clock_ms(100)
            .with_heap_bytes(1 << 20)
            .with_max_live_allocations(64)
            .with_call_depth(32);
        assert_eq!(limits.steps, 500);
        assert_eq!(limits.wall_clock_ms, Some(100));
        assert_eq!(limits.heap_bytes, Some(1 << 20));
        assert_eq!(limits.max_live_allocations, Some(64));
        assert_eq!(limits.call_depth, 32);
    }

    #[test]
    fn kinds_render_distinctly() {
        let rendered: std::collections::HashSet<String> = [
            ResourceKind::HeapBytes.to_string(),
            ResourceKind::LiveAllocations.to_string(),
            ResourceKind::CallDepth.to_string(),
            TimeoutKind::StepBudget.to_string(),
            TimeoutKind::WallClock.to_string(),
        ]
        .into_iter()
        .collect();
        assert_eq!(rendered.len(), 5);
    }
}
