//! Fault injection: an always-panicking [`MemoryModel`].
//!
//! The differential harness must survive a defective engine — a panic in one
//! row of the outcome matrix has to surface as a structured
//! `ExecResult::EngineFault` row, never abort the suite (the robustness
//! obligation of `docs/MEMORY_MODELS.md`, "Resource and fault obligations").
//! [`PanickingEngine`] is the drill for that machinery: a model whose
//! configuration and identity behave normally, but whose per-execution
//! [`MemoryModel::fresh`] unconditionally panics with [`FAULT_MESSAGE`].
//!
//! It is selected by [`EngineKind::Panicking`] via [`ModelConfig::panicking`]
//! and is deliberately *not* part of `ModelConfig::all_named()`: it only ever
//! enters a matrix when a test or a fault drill injects it explicitly.

use cerberus_ast::ctype::{Ctype, TagId};
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::TagRegistry;

#[allow(unused_imports)] // doc links
use crate::config::EngineKind;
use crate::config::ModelConfig;
use crate::limits::ResourceLimits;
use crate::model::{MemoryModel, ModelResult};
use crate::state::AllocKind;
use crate::value::{IntegerValue, MemValue, PointerValue};

/// The panic payload every injected fault carries, so tests can assert the
/// payload survived the unwind boundary intact.
pub const FAULT_MESSAGE: &str = "injected engine fault (panicking model)";

/// A [`MemoryModel`] whose per-execution [`MemoryModel::fresh`] always
/// panics. Construction and identity (name, environment, tags, limits) are
/// well behaved, so the model can be configured, named in a matrix, and
/// dispatched — the fault fires exactly when an execution starts.
#[derive(Debug, Clone)]
pub struct PanickingEngine {
    config: ModelConfig,
    env: ImplEnv,
    tags: TagRegistry,
    limits: ResourceLimits,
}

impl PanickingEngine {
    /// A configured (but not yet faulted) fault-injection engine.
    pub fn new(config: ModelConfig, env: ImplEnv, tags: TagRegistry) -> Self {
        PanickingEngine {
            config,
            env,
            tags,
            limits: ResourceLimits::default(),
        }
    }

    fn fault(&self) -> ! {
        panic!("{FAULT_MESSAGE}");
    }
}

impl MemoryModel for PanickingEngine {
    fn model_name(&self) -> &'static str {
        self.config.name
    }

    fn env(&self) -> &ImplEnv {
        &self.env
    }

    fn tags(&self) -> &TagRegistry {
        &self.tags
    }

    fn fresh(&self) -> Self {
        self.fault()
    }

    fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    fn size_of(&self, _ty: &Ctype) -> ModelResult<u64> {
        self.fault()
    }

    fn align_of(&self, _ty: &Ctype) -> ModelResult<u64> {
        self.fault()
    }

    fn create(
        &mut self,
        _ty: &Ctype,
        _kind: AllocKind,
        _name: Option<&str>,
    ) -> ModelResult<PointerValue> {
        self.fault()
    }

    fn alloc(&mut self, _size: u64, _align: u64) -> ModelResult<PointerValue> {
        self.fault()
    }

    fn create_string_literal(&mut self, _bytes: &[u8]) -> ModelResult<PointerValue> {
        self.fault()
    }

    fn register_function(&mut self, _name: &Ident) -> PointerValue {
        self.fault()
    }

    fn function_at(&self, _addr: u64) -> Option<&Ident> {
        self.fault()
    }

    fn kill(&mut self, _ptr: &PointerValue, _dynamic: bool) -> ModelResult<()> {
        self.fault()
    }

    fn store(&mut self, _ty: &Ctype, _ptr: &PointerValue, _value: &MemValue) -> ModelResult<()> {
        self.fault()
    }

    fn load(&mut self, _ty: &Ctype, _ptr: &PointerValue) -> ModelResult<MemValue> {
        self.fault()
    }

    fn ptr_eq(&self, _a: &PointerValue, _b: &PointerValue) -> ModelResult<bool> {
        self.fault()
    }

    fn ptr_rel(&self, _a: &PointerValue, _b: &PointerValue) -> ModelResult<std::cmp::Ordering> {
        self.fault()
    }

    fn ptr_diff(
        &self,
        _a: &PointerValue,
        _b: &PointerValue,
        _elem_size: u64,
    ) -> ModelResult<IntegerValue> {
        self.fault()
    }

    fn int_from_ptr(&self, _p: &PointerValue) -> IntegerValue {
        self.fault()
    }

    fn ptr_from_int(&self, _iv: &IntegerValue) -> PointerValue {
        self.fault()
    }

    fn valid_for_deref(&self, _ptr: &PointerValue, _ty: &Ctype) -> bool {
        self.fault()
    }

    fn array_shift(
        &self,
        _ptr: &PointerValue,
        _elem_ty: &Ctype,
        _index: i128,
    ) -> ModelResult<PointerValue> {
        self.fault()
    }

    fn member_shift(
        &self,
        _ptr: &PointerValue,
        _tag: TagId,
        _member: &Ident,
    ) -> ModelResult<PointerValue> {
        self.fault()
    }

    fn copy_bytes(&mut self, _dst: &PointerValue, _src: &PointerValue, _n: u64) -> ModelResult<()> {
        self.fault()
    }

    fn compare_bytes(&self, _a: &PointerValue, _b: &PointerValue, _n: u64) -> ModelResult<i32> {
        self.fault()
    }

    fn set_bytes(&mut self, _dst: &PointerValue, _byte: u8, _n: u64) -> ModelResult<()> {
        self.fault()
    }

    fn read_c_string(&self, _ptr: &PointerValue) -> ModelResult<Vec<u8>> {
        self.fault()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_identity_do_not_fault() {
        let engine = ModelConfig::panicking().instantiate(ImplEnv::lp64(), TagRegistry::new());
        assert_eq!(engine.model_name(), "panicking");
    }

    #[test]
    fn fresh_panics_with_the_documented_payload() {
        let engine = PanickingEngine::new(
            ModelConfig::panicking(),
            ImplEnv::lp64(),
            TagRegistry::new(),
        );
        let panic = std::panic::catch_unwind(|| engine.fresh()).unwrap_err();
        let payload = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied());
        assert_eq!(payload, Some(FAULT_MESSAGE));
    }
}
