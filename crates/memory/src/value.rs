//! Value representations of the memory object models (§5.9).
//!
//! "Pointer values and integer values all contain a provenance, either empty
//! (for the NULL pointer and pure integer values), the original allocation ID
//! of the object the value was derived from, or a wildcard (for pointers from
//! IO)." Memory values are "either unspecified, an integer value of a given
//! integer type, a pointer, or an array, union, or struct of memory values."

use std::fmt;

use cerberus_ast::ctype::{Ctype, IntegerType, TagId};
use cerberus_ast::ident::Ident;

/// Identifier of an allocation (the "original allocation ID" of DR260).
pub type AllocId = u64;

/// The provenance component of pointer and integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Provenance {
    /// No provenance: the null pointer and pure integers.
    #[default]
    Empty,
    /// Derived from a single allocation.
    Alloc(AllocId),
    /// Unknown origin (pointers read from IO, or integer-to-pointer casts
    /// under the wildcard semantics).
    Wildcard,
}

impl Provenance {
    /// Combine the provenances of two operands of an arithmetic operation:
    /// "most arithmetic involving one provenanced value and one pure value
    /// preserves the provenance", while "arithmetic involving two values with
    /// distinct provenance … produces a pure integer" (§5.9).
    pub fn combine(self, other: Provenance) -> Provenance {
        use Provenance::*;
        match (self, other) {
            (Empty, p) | (p, Empty) => p,
            (Alloc(a), Alloc(b)) if a == b => Alloc(a),
            (Wildcard, Wildcard) => Wildcard,
            (Wildcard, Alloc(a)) | (Alloc(a), Wildcard) => Alloc(a),
            _ => Empty,
        }
    }

    /// Whether this provenance identifies a single allocation.
    pub fn alloc_id(self) -> Option<AllocId> {
        match self {
            Provenance::Alloc(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Empty => write!(f, "@empty"),
            Provenance::Alloc(id) => write!(f, "@{id}"),
            Provenance::Wildcard => write!(f, "@wild"),
        }
    }
}

/// Capability metadata attached to pointer values under the CHERI model (§4):
/// the bounds of the original allocation and the validity tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapMeta {
    /// Base address of the capability's bounds.
    pub base: u64,
    /// Length of the capability's bounds in bytes.
    pub length: u64,
    /// Whether the capability tag is set (cleared by invalid manipulations).
    pub tag: bool,
}

/// An integer value: a mathematical value plus provenance ("our formal model
/// associates provenances with all integer values", Q5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntegerValue {
    /// The numeric value (wide enough for every supported C integer type).
    pub value: i128,
    /// The provenance carried through casts and arithmetic.
    pub prov: Provenance,
}

impl IntegerValue {
    /// A pure integer with empty provenance.
    pub fn pure(value: i128) -> Self {
        IntegerValue {
            value,
            prov: Provenance::Empty,
        }
    }

    /// An integer carrying the given provenance.
    pub fn with_prov(value: i128, prov: Provenance) -> Self {
        IntegerValue { value, prov }
    }
}

impl fmt::Display for IntegerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.prov {
            Provenance::Empty => write!(f, "{}", self.value),
            p => write!(f, "{}{p}", self.value),
        }
    }
}

/// A pointer value: provenance, concrete address, and (under CHERI) the
/// capability metadata. "Abstract pointer values must also … contain concrete
/// addresses" because real C exposes them (§2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PointerValue {
    /// The provenance (empty for null).
    pub prov: Provenance,
    /// The concrete address; 0 is the null pointer representation (the common
    /// de facto assumption, Q37).
    pub addr: u64,
    /// Capability metadata (CHERI model only).
    pub cap: Option<CapMeta>,
    /// If this pointer designates a C function rather than an object, its
    /// name (function pointers have no meaningful address arithmetic).
    pub function: Option<Ident>,
}

impl PointerValue {
    /// The null pointer.
    pub fn null() -> Self {
        PointerValue {
            prov: Provenance::Empty,
            addr: 0,
            cap: None,
            function: None,
        }
    }

    /// An object pointer with the given provenance and address.
    pub fn object(prov: Provenance, addr: u64) -> Self {
        PointerValue {
            prov,
            addr,
            cap: None,
            function: None,
        }
    }

    /// A function designator value.
    pub fn function(name: Ident) -> Self {
        PointerValue {
            prov: Provenance::Empty,
            addr: 0,
            cap: None,
            function: Some(name),
        }
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.addr == 0 && self.function.is_none()
    }

    /// A copy with a different address and the same provenance/metadata
    /// (pointer arithmetic).
    pub fn with_addr(&self, addr: u64) -> Self {
        PointerValue {
            addr,
            ..self.clone()
        }
    }
}

impl fmt::Display for PointerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.function {
            return write!(f, "&{name}");
        }
        if self.is_null() {
            return write!(f, "NULL");
        }
        write!(f, "0x{:x}{}", self.addr, self.prov)
    }
}

/// A structured memory value: what loads return and stores consume.
#[derive(Debug, Clone, PartialEq)]
pub enum MemValue {
    /// An unspecified value of the recorded C type (§2.4).
    Unspecified(Ctype),
    /// An integer value of a given C integer type.
    Integer(IntegerType, IntegerValue),
    /// A pointer value with the referenced C type.
    Pointer(Ctype, PointerValue),
    /// An array of member values.
    Array(Vec<MemValue>),
    /// A struct value: tag and member values in declaration order.
    Struct(TagId, Vec<(Ident, MemValue)>),
    /// A union value: tag, the active member, and its value.
    Union(TagId, Ident, Box<MemValue>),
}

impl MemValue {
    /// A pure integer memory value.
    pub fn int(ty: IntegerType, value: i128) -> Self {
        MemValue::Integer(ty, IntegerValue::pure(value))
    }

    /// The numeric value, if this is a (specified) integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            MemValue::Integer(_, iv) => Some(iv.value),
            _ => None,
        }
    }

    /// The pointer value, if this is a pointer.
    pub fn as_pointer(&self) -> Option<&PointerValue> {
        match self {
            MemValue::Pointer(_, pv) => Some(pv),
            _ => None,
        }
    }

    /// Whether the value is (or contains only) unspecified contents.
    pub fn is_unspecified(&self) -> bool {
        match self {
            MemValue::Unspecified(_) => true,
            MemValue::Array(items) => items.iter().all(MemValue::is_unspecified),
            MemValue::Struct(_, members) => members.iter().all(|(_, v)| v.is_unspecified()),
            MemValue::Union(_, _, v) => v.is_unspecified(),
            _ => false,
        }
    }
}

impl fmt::Display for MemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemValue::Unspecified(ty) => write!(f, "unspec({ty})"),
            MemValue::Integer(ty, iv) => write!(f, "({ty}){iv}"),
            MemValue::Pointer(ty, pv) => write!(f, "({ty}*){pv}"),
            MemValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            MemValue::Struct(tag, members) => {
                write!(f, "(struct {tag}){{")?;
                for (i, (name, value)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, ".{name}={value}")?;
                }
                write!(f, "}}")
            }
            MemValue::Union(tag, member, value) => {
                write!(f, "(union {tag}){{.{member}={value}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_combination_follows_the_model() {
        use Provenance::*;
        assert_eq!(Empty.combine(Alloc(3)), Alloc(3));
        assert_eq!(Alloc(3).combine(Empty), Alloc(3));
        assert_eq!(Alloc(3).combine(Alloc(3)), Alloc(3));
        // Two distinct provenances produce a pure integer (prevents the
        // inter-object per-CPU-variable idiom without annotation, Q9).
        assert_eq!(Alloc(3).combine(Alloc(4)), Empty);
        assert_eq!(Wildcard.combine(Alloc(4)), Alloc(4));
        assert_eq!(Empty.combine(Empty), Empty);
    }

    #[test]
    fn null_pointer_properties() {
        let p = PointerValue::null();
        assert!(p.is_null());
        assert_eq!(p.to_string(), "NULL");
        assert!(!PointerValue::object(Provenance::Alloc(1), 0x1000).is_null());
    }

    #[test]
    fn function_pointers_display() {
        let p = PointerValue::function(Ident::new("main"));
        assert!(!p.is_null());
        assert_eq!(p.to_string(), "&main");
    }

    #[test]
    fn memvalue_accessors() {
        let v = MemValue::int(IntegerType::Int, 7);
        assert_eq!(v.as_int(), Some(7));
        assert!(v.as_pointer().is_none());
        assert!(!v.is_unspecified());
        assert!(MemValue::Unspecified(Ctype::integer(IntegerType::Int)).is_unspecified());
    }

    #[test]
    fn unspecified_aggregates() {
        let u = MemValue::Unspecified(Ctype::integer(IntegerType::Int));
        let arr = MemValue::Array(vec![u.clone(), u.clone()]);
        assert!(arr.is_unspecified());
        let mixed = MemValue::Array(vec![u, MemValue::int(IntegerType::Int, 1)]);
        assert!(!mixed.is_unspecified());
    }

    #[test]
    fn integer_value_display_includes_provenance() {
        assert_eq!(IntegerValue::pure(5).to_string(), "5");
        assert_eq!(
            IntegerValue::with_prov(5, Provenance::Alloc(2)).to_string(),
            "5@2"
        );
    }
}
