//! The abstract memory object model interface.
//!
//! The paper's executable semantics "is parameterised by an abstract memory
//! object model interface" (§5.9): the Core operational semantics never
//! manipulates representation bytes itself, it only issues the actions and
//! pointer operations of this signature and lets the linked model decide what
//! is defined. [`MemoryModel`] is that signature: object create/kill, typed
//! loads and stores, the `ptrop`s (equality, relational comparison,
//! subtraction, the integer casts, `validForDeref`, `array_shift`/
//! `member_shift`), the byte-level library helpers, and undefined-behaviour
//! reporting via [`MemError`].
//!
//! Two implementations ship in-tree: [`ConcreteEngine`] (the configurable
//! byte-representation engine of [`crate::state`], parameterised by a
//! [`ModelConfig`]) and the symbolic provenance engine
//! ([`crate::symbolic::SymbolicEngine`], selected by
//! [`crate::config::EngineKind::Symbolic`]). [`AnyEngine`] is the closed
//! enum dispatching between them, which [`ModelConfig::instantiate`] returns;
//! further models — an abstract block model, the operational concurrency
//! model — can be linked against the executor without touching it, because
//! `cerberus_exec::Interp` and `cerberus_exec::Driver` are generic over
//! `M: MemoryModel`. See `docs/MEMORY_MODELS.md` for the authoring guide.

use cerberus_ast::ctype::{Ctype, TagId};
use cerberus_ast::env::ImplEnv;
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::TagRegistry;

use crate::config::{EngineKind, ModelConfig};
use crate::fault::PanickingEngine;
use crate::limits::ResourceLimits;
use crate::state::{AllocKind, MemError, MemState};
use crate::symbolic::SymbolicEngine;
use crate::value::{IntegerValue, MemValue, PointerValue};

/// The first implementation of [`MemoryModel`]: the concrete,
/// representation-byte engine parameterised by a [`ModelConfig`].
pub type ConcreteEngine = MemState;

/// Result alias for model operations: `Err` reports detected undefined
/// behaviour (or a dynamic model error) as a [`MemError`].
pub type ModelResult<T> = Result<T, MemError>;

/// The abstract memory object model signature of §5.9.
///
/// One value of the implementing type describes the memory state of **one
/// execution**; the driver obtains a pristine state per execution via
/// [`MemoryModel::fresh`] (the prototype pattern: a `Driver` holds one
/// configured instance and resets it for every explored path).
pub trait MemoryModel {
    // ----- identity and environment --------------------------------------

    /// The human-readable model name (used in reports and outcome matrices).
    fn model_name(&self) -> &'static str;

    /// The implementation-defined environment the model computes layout with.
    fn env(&self) -> &ImplEnv;

    /// The struct/union registry in force.
    fn tags(&self) -> &TagRegistry;

    /// A pristine state with the same configuration, environment, tag
    /// registry and resource budget, ready for a new execution.
    fn fresh(&self) -> Self
    where
        Self: Sized;

    /// Install the resource budget this model enforces on allocation (the
    /// driver sets it once per execution; see `docs/MEMORY_MODELS.md`,
    /// "Resource and fault obligations").
    fn set_limits(&mut self, limits: ResourceLimits);

    /// The resource budget in force.
    fn limits(&self) -> &ResourceLimits;

    // ----- layout --------------------------------------------------------

    /// `sizeof(ty)` under this model's environment.
    fn size_of(&self, ty: &Ctype) -> ModelResult<u64>;

    /// `_Alignof(ty)` under this model's environment.
    fn align_of(&self, ty: &Ctype) -> ModelResult<u64>;

    // ----- object lifecycle ----------------------------------------------

    /// Create an object of declared type `ty` (the Core `create` action).
    fn create(
        &mut self,
        ty: &Ctype,
        kind: AllocKind,
        name: Option<&str>,
    ) -> ModelResult<PointerValue>;

    /// Allocate a dynamic region (the Core `alloc` action, i.e. `malloc`).
    /// Fails when a [`ResourceLimits`] allocation budget is exhausted.
    fn alloc(&mut self, size: u64, align: u64) -> ModelResult<PointerValue>;

    /// Create a read-only string-literal object holding `bytes` plus NUL.
    /// Fails when a [`ResourceLimits`] allocation budget is exhausted.
    fn create_string_literal(&mut self, bytes: &[u8]) -> ModelResult<PointerValue>;

    /// Register a C function, giving it a synthetic address.
    fn register_function(&mut self, name: &Ident) -> PointerValue;

    /// The function registered at a synthetic function address, if any.
    fn function_at(&self, addr: u64) -> Option<&Ident>;

    /// End the lifetime of the pointed-to object (the Core `kill` action);
    /// `dynamic` selects `free` semantics.
    fn kill(&mut self, ptr: &PointerValue, dynamic: bool) -> ModelResult<()>;

    // ----- typed accesses ------------------------------------------------

    /// Store `value` at type `ty` through `ptr` (the Core `store` action).
    fn store(&mut self, ty: &Ctype, ptr: &PointerValue, value: &MemValue) -> ModelResult<()>;

    /// Load a value at type `ty` through `ptr` (the Core `load` action).
    fn load(&mut self, ty: &Ctype, ptr: &PointerValue) -> ModelResult<MemValue>;

    // ----- pointer operations (the ptrops) -------------------------------

    /// Pointer equality (`==`); inequality is the caller's negation.
    fn ptr_eq(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<bool>;

    /// Pointer relational comparison: the ordering of the addresses, or UB
    /// under models that forbid cross-object comparison.
    fn ptr_rel(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<std::cmp::Ordering>;

    /// Pointer subtraction in elements of `elem_size` bytes.
    fn ptr_diff(
        &self,
        a: &PointerValue,
        b: &PointerValue,
        elem_size: u64,
    ) -> ModelResult<IntegerValue>;

    /// Cast a pointer to an integer (`intFromPtr`).
    fn int_from_ptr(&self, p: &PointerValue) -> IntegerValue;

    /// Cast an integer to a pointer (`ptrFromInt`), following the model's
    /// provenance semantics.
    fn ptr_from_int(&self, iv: &IntegerValue) -> PointerValue;

    /// Whether `ptr` may be dereferenced at `ty` without undefined behaviour.
    fn valid_for_deref(&self, ptr: &PointerValue, ty: &Ctype) -> bool;

    /// Pointer arithmetic by `index` elements of `elem_ty` (`array_shift`).
    fn array_shift(
        &self,
        ptr: &PointerValue,
        elem_ty: &Ctype,
        index: i128,
    ) -> ModelResult<PointerValue>;

    /// Pointer to a struct/union member (`member_shift`).
    fn member_shift(
        &self,
        ptr: &PointerValue,
        tag: TagId,
        member: &Ident,
    ) -> ModelResult<PointerValue>;

    // ----- byte-level library helpers ------------------------------------

    /// `memcpy`: copy representation bytes, preserving carried provenance.
    fn copy_bytes(&mut self, dst: &PointerValue, src: &PointerValue, n: u64) -> ModelResult<()>;

    /// `memcmp` over representation bytes.
    fn compare_bytes(&self, a: &PointerValue, b: &PointerValue, n: u64) -> ModelResult<i32>;

    /// `memset`.
    fn set_bytes(&mut self, dst: &PointerValue, byte: u8, n: u64) -> ModelResult<()>;

    /// Read a NUL-terminated C string starting at `ptr`.
    fn read_c_string(&self, ptr: &PointerValue) -> ModelResult<Vec<u8>>;
}

impl MemoryModel for ConcreteEngine {
    fn model_name(&self) -> &'static str {
        self.config().name
    }

    fn env(&self) -> &ImplEnv {
        MemState::env(self)
    }

    fn tags(&self) -> &TagRegistry {
        MemState::tags(self)
    }

    fn fresh(&self) -> Self {
        let mut fresh = MemState::new(
            self.config().clone(),
            MemState::env(self).clone(),
            MemState::tags(self).clone(),
        );
        fresh.set_limits(MemState::limits(self).clone());
        fresh
    }

    fn set_limits(&mut self, limits: ResourceLimits) {
        MemState::set_limits(self, limits)
    }

    fn limits(&self) -> &ResourceLimits {
        MemState::limits(self)
    }

    fn size_of(&self, ty: &Ctype) -> ModelResult<u64> {
        MemState::size_of(self, ty)
    }

    fn align_of(&self, ty: &Ctype) -> ModelResult<u64> {
        MemState::align_of(self, ty)
    }

    fn create(
        &mut self,
        ty: &Ctype,
        kind: AllocKind,
        name: Option<&str>,
    ) -> ModelResult<PointerValue> {
        MemState::create(self, ty, kind, name)
    }

    fn alloc(&mut self, size: u64, align: u64) -> ModelResult<PointerValue> {
        MemState::alloc(self, size, align)
    }

    fn create_string_literal(&mut self, bytes: &[u8]) -> ModelResult<PointerValue> {
        MemState::create_string_literal(self, bytes)
    }

    fn register_function(&mut self, name: &Ident) -> PointerValue {
        MemState::register_function(self, name)
    }

    fn function_at(&self, addr: u64) -> Option<&Ident> {
        MemState::function_at(self, addr)
    }

    fn kill(&mut self, ptr: &PointerValue, dynamic: bool) -> ModelResult<()> {
        MemState::kill(self, ptr, dynamic)
    }

    fn store(&mut self, ty: &Ctype, ptr: &PointerValue, value: &MemValue) -> ModelResult<()> {
        MemState::store(self, ty, ptr, value)
    }

    fn load(&mut self, ty: &Ctype, ptr: &PointerValue) -> ModelResult<MemValue> {
        MemState::load(self, ty, ptr)
    }

    fn ptr_eq(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<bool> {
        MemState::ptr_eq(self, a, b)
    }

    fn ptr_rel(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<std::cmp::Ordering> {
        MemState::ptr_rel(self, a, b)
    }

    fn ptr_diff(
        &self,
        a: &PointerValue,
        b: &PointerValue,
        elem_size: u64,
    ) -> ModelResult<IntegerValue> {
        MemState::ptr_diff(self, a, b, elem_size)
    }

    fn int_from_ptr(&self, p: &PointerValue) -> IntegerValue {
        MemState::int_from_ptr(self, p)
    }

    fn ptr_from_int(&self, iv: &IntegerValue) -> PointerValue {
        MemState::ptr_from_int(self, iv)
    }

    fn valid_for_deref(&self, ptr: &PointerValue, ty: &Ctype) -> bool {
        MemState::valid_for_deref(self, ptr, ty)
    }

    fn array_shift(
        &self,
        ptr: &PointerValue,
        elem_ty: &Ctype,
        index: i128,
    ) -> ModelResult<PointerValue> {
        MemState::array_shift(self, ptr, elem_ty, index)
    }

    fn member_shift(
        &self,
        ptr: &PointerValue,
        tag: TagId,
        member: &Ident,
    ) -> ModelResult<PointerValue> {
        MemState::member_shift(self, ptr, tag, member)
    }

    fn copy_bytes(&mut self, dst: &PointerValue, src: &PointerValue, n: u64) -> ModelResult<()> {
        MemState::copy_bytes(self, dst, src, n)
    }

    fn compare_bytes(&self, a: &PointerValue, b: &PointerValue, n: u64) -> ModelResult<i32> {
        MemState::compare_bytes(self, a, b, n)
    }

    fn set_bytes(&mut self, dst: &PointerValue, byte: u8, n: u64) -> ModelResult<()> {
        MemState::set_bytes(self, dst, byte, n)
    }

    fn read_c_string(&self, ptr: &PointerValue) -> ModelResult<Vec<u8>> {
        MemState::read_c_string(self, ptr)
    }
}

/// An engine instance of either in-tree implementation, selected by
/// [`ModelConfig::engine`] ([`EngineKind`]).
///
/// [`MemoryModel::fresh`] returns `Self`, so the trait is not object-safe;
/// this enum is the closed-world dispatch that lets one `Driver<AnyEngine>`
/// run a program under *any* named configuration — which is what
/// `cerberus::differential::DifferentialRunner` relies on to mix concrete and
/// symbolic rows in one outcome matrix.
#[derive(Debug, Clone)]
pub enum AnyEngine {
    /// A concrete byte-representation engine.
    Concrete(ConcreteEngine),
    /// A symbolic provenance engine.
    Symbolic(SymbolicEngine),
    /// The always-panicking fault-injection engine (tests and fault drills
    /// only — see [`crate::fault`]).
    Panicking(PanickingEngine),
}

/// Delegate one `MemoryModel` method to whichever engine is inside.
macro_rules! delegate {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        match $self {
            AnyEngine::Concrete(engine) => engine.$method($($arg),*),
            AnyEngine::Symbolic(engine) => engine.$method($($arg),*),
            AnyEngine::Panicking(engine) => engine.$method($($arg),*),
        }
    };
}

impl MemoryModel for AnyEngine {
    fn model_name(&self) -> &'static str {
        delegate!(self.model_name())
    }

    fn env(&self) -> &ImplEnv {
        delegate!(self.env())
    }

    fn tags(&self) -> &TagRegistry {
        delegate!(self.tags())
    }

    fn fresh(&self) -> Self {
        match self {
            AnyEngine::Concrete(engine) => AnyEngine::Concrete(MemoryModel::fresh(engine)),
            AnyEngine::Symbolic(engine) => AnyEngine::Symbolic(engine.fresh()),
            AnyEngine::Panicking(engine) => AnyEngine::Panicking(engine.fresh()),
        }
    }

    fn set_limits(&mut self, limits: ResourceLimits) {
        delegate!(self.set_limits(limits))
    }

    fn limits(&self) -> &ResourceLimits {
        delegate!(self.limits())
    }

    fn size_of(&self, ty: &Ctype) -> ModelResult<u64> {
        delegate!(self.size_of(ty))
    }

    fn align_of(&self, ty: &Ctype) -> ModelResult<u64> {
        delegate!(self.align_of(ty))
    }

    fn create(
        &mut self,
        ty: &Ctype,
        kind: AllocKind,
        name: Option<&str>,
    ) -> ModelResult<PointerValue> {
        delegate!(self.create(ty, kind, name))
    }

    fn alloc(&mut self, size: u64, align: u64) -> ModelResult<PointerValue> {
        delegate!(self.alloc(size, align))
    }

    fn create_string_literal(&mut self, bytes: &[u8]) -> ModelResult<PointerValue> {
        delegate!(self.create_string_literal(bytes))
    }

    fn register_function(&mut self, name: &Ident) -> PointerValue {
        delegate!(self.register_function(name))
    }

    fn function_at(&self, addr: u64) -> Option<&Ident> {
        delegate!(self.function_at(addr))
    }

    fn kill(&mut self, ptr: &PointerValue, dynamic: bool) -> ModelResult<()> {
        delegate!(self.kill(ptr, dynamic))
    }

    fn store(&mut self, ty: &Ctype, ptr: &PointerValue, value: &MemValue) -> ModelResult<()> {
        delegate!(self.store(ty, ptr, value))
    }

    fn load(&mut self, ty: &Ctype, ptr: &PointerValue) -> ModelResult<MemValue> {
        delegate!(self.load(ty, ptr))
    }

    fn ptr_eq(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<bool> {
        delegate!(self.ptr_eq(a, b))
    }

    fn ptr_rel(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<std::cmp::Ordering> {
        delegate!(self.ptr_rel(a, b))
    }

    fn ptr_diff(
        &self,
        a: &PointerValue,
        b: &PointerValue,
        elem_size: u64,
    ) -> ModelResult<IntegerValue> {
        delegate!(self.ptr_diff(a, b, elem_size))
    }

    fn int_from_ptr(&self, p: &PointerValue) -> IntegerValue {
        delegate!(self.int_from_ptr(p))
    }

    fn ptr_from_int(&self, iv: &IntegerValue) -> PointerValue {
        delegate!(self.ptr_from_int(iv))
    }

    fn valid_for_deref(&self, ptr: &PointerValue, ty: &Ctype) -> bool {
        delegate!(self.valid_for_deref(ptr, ty))
    }

    fn array_shift(
        &self,
        ptr: &PointerValue,
        elem_ty: &Ctype,
        index: i128,
    ) -> ModelResult<PointerValue> {
        delegate!(self.array_shift(ptr, elem_ty, index))
    }

    fn member_shift(
        &self,
        ptr: &PointerValue,
        tag: TagId,
        member: &Ident,
    ) -> ModelResult<PointerValue> {
        delegate!(self.member_shift(ptr, tag, member))
    }

    fn copy_bytes(&mut self, dst: &PointerValue, src: &PointerValue, n: u64) -> ModelResult<()> {
        delegate!(self.copy_bytes(dst, src, n))
    }

    fn compare_bytes(&self, a: &PointerValue, b: &PointerValue, n: u64) -> ModelResult<i32> {
        delegate!(self.compare_bytes(a, b, n))
    }

    fn set_bytes(&mut self, dst: &PointerValue, byte: u8, n: u64) -> ModelResult<()> {
        delegate!(self.set_bytes(dst, byte, n))
    }

    fn read_c_string(&self, ptr: &PointerValue) -> ModelResult<Vec<u8>> {
        delegate!(self.read_c_string(ptr))
    }
}

impl ModelConfig {
    /// Instantiate this configuration as an engine prototype for programs
    /// using `tags` under `env` (the state is pristine; the driver calls
    /// [`MemoryModel::fresh`] per execution). Which implementation is built
    /// follows [`ModelConfig::engine`].
    pub fn instantiate(&self, env: ImplEnv, tags: TagRegistry) -> AnyEngine {
        match self.engine {
            EngineKind::Concrete => AnyEngine::Concrete(MemState::new(self.clone(), env, tags)),
            EngineKind::Symbolic => {
                AnyEngine::Symbolic(SymbolicEngine::new(self.clone(), env, tags))
            }
            EngineKind::Panicking => {
                AnyEngine::Panicking(PanickingEngine::new(self.clone(), env, tags))
            }
        }
    }

    /// Instantiate the concrete byte-representation engine with this
    /// configuration, regardless of [`ModelConfig::engine`] (for callers that
    /// need [`MemState`]-specific inspection such as
    /// [`MemState::allocations`]).
    pub fn instantiate_concrete(&self, env: ImplEnv, tags: TagRegistry) -> ConcreteEngine {
        MemState::new(self.clone(), env, tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ctype::IntegerType;

    fn engine() -> ConcreteEngine {
        ModelConfig::de_facto().instantiate_concrete(ImplEnv::lp64(), TagRegistry::new())
    }

    /// Exercise the engine exclusively through the trait, as the executor
    /// does.
    fn roundtrip<M: MemoryModel>(mem: &mut M) -> i128 {
        let ty = Ctype::integer(IntegerType::Int);
        let p = mem.create(&ty, AllocKind::Automatic, Some("x")).unwrap();
        mem.store(&ty, &p, &MemValue::int(IntegerType::Int, 41))
            .unwrap();
        mem.load(&ty, &p).unwrap().as_int().unwrap() + 1
    }

    #[test]
    fn the_concrete_engine_satisfies_the_interface() {
        let mut mem = engine();
        assert_eq!(roundtrip(&mut mem), 42);
        assert_eq!(mem.model_name(), "de-facto");
    }

    #[test]
    fn fresh_resets_the_state_but_keeps_the_configuration() {
        let mut mem = engine();
        let _ = roundtrip(&mut mem);
        assert!(!mem.allocations().is_empty());
        let fresh = MemoryModel::fresh(&mem);
        assert!(fresh.allocations().is_empty());
        assert_eq!(fresh.model_name(), mem.model_name());
    }

    #[test]
    fn every_named_config_instantiates() {
        for config in ModelConfig::all_named() {
            let engine = config.instantiate(ImplEnv::lp64(), TagRegistry::new());
            assert_eq!(engine.model_name(), config.name);
            match (config.engine, &engine) {
                (EngineKind::Concrete, AnyEngine::Concrete(_)) => {}
                (EngineKind::Symbolic, AnyEngine::Symbolic(_)) => {}
                (kind, other) => panic!("{kind:?} instantiated as {other:?}"),
            }
        }
    }

    #[test]
    fn any_engine_dispatches_to_both_implementations() {
        let mut concrete = ModelConfig::de_facto().instantiate(ImplEnv::lp64(), TagRegistry::new());
        assert_eq!(roundtrip(&mut concrete), 42);
        let mut symbolic = ModelConfig::symbolic().instantiate(ImplEnv::lp64(), TagRegistry::new());
        assert_eq!(roundtrip(&mut symbolic), 42);
        assert_eq!(symbolic.model_name(), "symbolic");
        // `fresh` preserves the implementation choice.
        assert!(matches!(
            MemoryModel::fresh(&symbolic),
            AnyEngine::Symbolic(_)
        ));
    }
}
