//! The symbolic provenance engine: a second, genuinely different
//! [`MemoryModel`] implementation.
//!
//! Where [`crate::state::MemState`] (the [`crate::model::ConcreteEngine`])
//! gives every
//! allocation a concrete address in one flat address space and checks each
//! access eagerly against representation bytes, `SymbolicEngine` keeps the
//! address space *abstract*:
//!
//! * **Per-allocation symbolic IDs.** Every allocation lives in its own
//!   address region, `(id + 1) · 2³²`, so regions of distinct allocations
//!   never abut. A one-past-the-end pointer of `x` therefore never has the
//!   same representation as `&y` — the twin-allocation reading of DR260 in
//!   which allocations behave as if infinitely separated.
//! * **Typed cells instead of representation bytes.** Storage is a sparse map
//!   from byte offsets to typed cells holding [`MemValue`]s. Exact re-reads
//!   are cell lookups; byte-granularity games (union punning, `memcpy`,
//!   bytewise integer copies) fall back to a lazy per-byte materialisation
//!   that preserves the provenance each byte carries. There are no padding
//!   bytes at all.
//! * **Lazy resolution of one-past and intptr round trips.** Pointer
//!   arithmetic never faults; a pointer is just `(provenance, symbolic
//!   address)` and the constraint `0 ≤ offset ∧ offset + len ≤ size` is only
//!   checked when the pointer is *used*. An integer-to-pointer cast is
//!   resolved through the integer's provenance (or, for wildcard integers,
//!   through the — unique — allocation owning the symbolic address).
//! * **UB as constraint violation.** Every detected undefined behaviour is
//!   the failure of an explicit constraint, reported as a [`MemError`] whose
//!   detail names the violated constraint; the engine also keeps a trail of
//!   the lazy resolutions it performed ([`SymbolicEngine::resolutions`]).
//!
//! The observable differences from the concrete engine are exactly the
//! design-space questions of §2: cross-object pointer *equality* of a
//! one-past pointer is `false` here (Q2), cross-object *relational*
//! comparison and subtraction violate constraints (Q25, Q9), and an
//! address-arithmetic intptr round trip that lands in another object is a
//! footprint violation rather than a concrete hit (Q5/Q9). The litmus suite
//! records these as expected disagreement classes — see
//! `cerberus-litmus` and `docs/MEMORY_MODELS.md`.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use cerberus_ast::ctype::{Ctype, IntegerType, TagId};
use cerberus_ast::env::{Endianness, ImplEnv};
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::{self, TagRegistry};
use cerberus_ast::ub::UbKind;

use crate::config::{IntToPtrSemantics, ModelConfig, UninitSemantics};
use crate::limits::{ResourceKind, ResourceLimits};
use crate::model::{MemoryModel, ModelResult};
use crate::state::{AllocKind, MemError};
use crate::value::{AllocId, IntegerValue, MemValue, PointerValue, Provenance};

/// Size of the address region reserved for each allocation: allocation `id`
/// owns `[(id+1)·2³², (id+2)·2³²)`, so no two allocations are ever adjacent
/// and a one-past pointer never aliases a neighbour.
const REGION: u64 = 1 << 32;

/// Base of the synthetic function "address" space (below every object
/// region, shared with the concrete engine's convention).
const FUNCTION_BASE: u64 = 0x1000;

fn region_base(id: AllocId) -> u64 {
    (id + 1).wrapping_mul(REGION)
}

/// The allocation (and offset within it) owning a symbolic address, if any.
fn region_of(addr: u64) -> Option<(AllocId, u64)> {
    if addr >= REGION {
        Some((addr / REGION - 1, addr % REGION))
    } else {
        None
    }
}

/// One typed cell: a scalar (or explicitly unspecified) value occupying
/// `size` bytes from its offset.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    size: u64,
    value: MemValue,
}

/// One symbolic allocation: metadata plus the sparse typed-cell store.
#[derive(Debug, Clone)]
struct SymAlloc {
    size: u64,
    kind: AllocKind,
    alive: bool,
    readonly: bool,
    name: Option<String>,
    cells: BTreeMap<u64, Cell>,
}

impl SymAlloc {
    /// Zero-initialised storage kinds read absent cells as zero rather than
    /// as indeterminate.
    fn zero_initialised(&self) -> bool {
        matches!(self.kind, AllocKind::Static | AllocKind::StringLiteral)
    }
}

/// The symbolic provenance engine. See the module documentation for the
/// semantic differences from [`crate::model::ConcreteEngine`].
#[derive(Debug, Clone)]
pub struct SymbolicEngine {
    config: ModelConfig,
    env: ImplEnv,
    tags: TagRegistry,
    allocs: Vec<SymAlloc>,
    function_addrs: HashMap<String, u64>,
    functions_by_addr: HashMap<u64, Ident>,
    /// Trail of the lazy constraint resolutions performed so far (bounded).
    trail: RefCell<Vec<String>>,
    /// The resource budget in force (see [`MemoryModel::set_limits`]).
    limits: ResourceLimits,
    /// Cumulative bytes allocated over this execution.
    allocated_bytes: u64,
    /// Allocations currently within their lifetime.
    live_allocation_count: usize,
}

impl SymbolicEngine {
    /// A fresh symbolic engine for programs using `tags` under `env`.
    pub fn new(config: ModelConfig, env: ImplEnv, tags: TagRegistry) -> Self {
        SymbolicEngine {
            config,
            env,
            tags,
            allocs: Vec::new(),
            function_addrs: HashMap::new(),
            functions_by_addr: HashMap::new(),
            trail: RefCell::new(Vec::new()),
            limits: ResourceLimits::default(),
            allocated_bytes: 0,
            live_allocation_count: 0,
        }
    }

    /// Cumulative bytes allocated over this execution (`kill` does not
    /// refund — the budget bounds total allocation work).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Check the allocation budgets before admitting `size` more bytes and
    /// one more live allocation.
    fn charge_allocation(&self, size: u64) -> ModelResult<()> {
        if let Some(budget) = self.limits.heap_bytes {
            let total = self.allocated_bytes.saturating_add(size);
            if total > budget {
                return Err(MemError::resource(
                    ResourceKind::HeapBytes,
                    format!("{total} bytes allocated exceeds the budget of {budget}"),
                ));
            }
        }
        if let Some(budget) = self.limits.max_live_allocations {
            if self.live_allocation_count + 1 > budget {
                return Err(MemError::resource(
                    ResourceKind::LiveAllocations,
                    format!(
                        "{} live allocations exceeds the budget of {budget}",
                        self.live_allocation_count + 1
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The model configuration in force.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The lazy resolutions (one-past comparisons, wildcard and intptr
    /// reconstructions) performed so far, newest last.
    pub fn resolutions(&self) -> Vec<String> {
        self.trail.borrow().clone()
    }

    /// The number of live allocations (for inspection and tests).
    pub fn live_allocations(&self) -> usize {
        self.allocs.iter().filter(|a| a.alive).count()
    }

    fn record(&self, msg: String) {
        let mut trail = self.trail.borrow_mut();
        if trail.len() < 1024 {
            trail.push(msg);
        }
    }

    fn violated(ub: UbKind, detail: impl std::fmt::Display) -> MemError {
        MemError::new(ub, format!("constraint violated: {detail}"))
    }

    fn push_allocation(
        &mut self,
        size: u64,
        kind: AllocKind,
        name: Option<&str>,
        readonly: bool,
    ) -> ModelResult<PointerValue> {
        self.charge_allocation(size)?;
        self.allocated_bytes = self.allocated_bytes.saturating_add(size);
        self.live_allocation_count += 1;
        let id = self.allocs.len() as AllocId;
        self.allocs.push(SymAlloc {
            size,
            kind,
            alive: true,
            readonly,
            name: name.map(str::to_owned),
            cells: BTreeMap::new(),
        });
        Ok(PointerValue::object(Provenance::Alloc(id), region_base(id)))
    }

    fn describe(&self, id: AllocId) -> String {
        match self.allocs.get(id as usize).and_then(|a| a.name.as_deref()) {
            Some(name) => format!("allocation @{id} ({name})"),
            None => format!("allocation @{id}"),
        }
    }

    /// Resolve a pointer to `(allocation, offset)` and check the access
    /// constraint `live ∧ 0 ≤ offset ∧ offset + len ≤ size` — the *only*
    /// point at which a transiently out-of-bounds or lazily round-tripped
    /// pointer is judged.
    fn resolve(&self, ptr: &PointerValue, len: u64, is_store: bool) -> ModelResult<(AllocId, u64)> {
        if ptr.function.is_some() {
            return Err(Self::violated(
                UbKind::InvalidLvalue,
                "object access through a function pointer",
            ));
        }
        if ptr.is_null() {
            return Err(Self::violated(
                UbKind::NullPointerDeref,
                "access through a null pointer",
            ));
        }
        let (id, offset) = match ptr.prov {
            Provenance::Alloc(id) => (id, ptr.addr.wrapping_sub(region_base(id))),
            Provenance::Empty => {
                return Err(Self::violated(
                    UbKind::AccessWithoutProvenance,
                    "access through a pointer with empty provenance",
                ))
            }
            Provenance::Wildcard => {
                let (id, offset) = region_of(ptr.addr).ok_or_else(|| {
                    Self::violated(
                        UbKind::OutOfBoundsAccess,
                        "wildcard pointer outside every allocation region",
                    )
                })?;
                self.record(format!(
                    "resolved wildcard pointer 0x{:x} to {}",
                    ptr.addr,
                    self.describe(id)
                ));
                (id, offset)
            }
        };
        let alloc = match self.allocs.get(id as usize) {
            Some(alloc) => alloc,
            None => {
                return Err(Self::violated(
                    UbKind::OutOfBoundsAccess,
                    "unknown allocation",
                ))
            }
        };
        if !alloc.alive {
            return Err(Self::violated(
                UbKind::AccessOutsideLifetime,
                format!("access to {} after its lifetime ended", self.describe(id)),
            ));
        }
        if offset.checked_add(len).is_none_or(|end| end > alloc.size) {
            return Err(Self::violated(
                UbKind::OutOfBoundsAccess,
                format!(
                    "offset {offset} (+{len}) escapes the {}-byte footprint of {}",
                    alloc.size,
                    self.describe(id)
                ),
            ));
        }
        if is_store && alloc.readonly {
            return Err(Self::violated(
                UbKind::StringLiteralModification,
                "store into a read-only (string literal) object",
            ));
        }
        Ok((id, offset))
    }

    // ----- cell reading -----------------------------------------------------

    /// The abstract byte at `offset`: a concrete value plus the provenance it
    /// carries, or `None` for an indeterminate byte. Pointer cells
    /// materialise the bytes of their *symbolic* address (so bytewise copies
    /// stay provenance-carrying, while two pointers to distinct allocations
    /// can never be byte-identical).
    fn byte_at(&self, id: AllocId, offset: u64) -> Option<(u8, Provenance)> {
        let alloc = &self.allocs[id as usize];
        let covering = alloc
            .cells
            .range(..=offset)
            .next_back()
            .filter(|(start, cell)| offset < *start + cell.size);
        let Some((start, cell)) = covering else {
            return alloc.zero_initialised().then_some((0, Provenance::Empty));
        };
        self.cell_byte(cell, (offset - start) as usize)
    }

    /// The abstract byte at `index` of one cell (see [`Self::byte_at`]).
    fn cell_byte(&self, cell: &Cell, index: usize) -> Option<(u8, Provenance)> {
        let (raw, prov) = match &cell.value {
            MemValue::Integer(_, iv) => (iv.value as u128, iv.prov),
            MemValue::Pointer(_, pv) => (pv.addr as u128, pv.prov),
            _ => return None,
        };
        let shift = match self.env.endianness {
            Endianness::Little => 8 * index as u32,
            Endianness::Big => 8 * (cell.size as usize - 1 - index) as u32,
        };
        Some((((raw >> shift) & 0xff) as u8, prov))
    }

    /// Reassemble a scalar of `size` bytes at `offset` from abstract bytes.
    fn read_from_bytes(&self, id: AllocId, offset: u64, ty: &Ctype, size: u64) -> MemValue {
        let mut raw: u128 = 0;
        let mut prov = Provenance::Empty;
        for i in 0..size {
            let Some((byte, p)) = self.byte_at(id, offset + i) else {
                return MemValue::Unspecified(ty.clone());
            };
            let shift = match self.env.endianness {
                Endianness::Little => 8 * i as u32,
                Endianness::Big => 8 * (size - 1 - i) as u32,
            };
            raw |= (byte as u128) << shift;
            prov = prov.combine(p);
        }
        let width = 8 * size as u32;
        let signed = matches!(ty, Ctype::Integer(it) if self.env.is_signed(*it));
        let mut value = raw as i128;
        if signed && width < 128 {
            let sign_bit = 1u128 << (width - 1);
            if raw & sign_bit != 0 {
                value = (raw as i128) - (1i128 << width);
            }
        }
        self.scalar_from_parts(ty, IntegerValue::with_prov(value, prov))
    }

    /// Build the scalar memory value of `ty` from a numeric value plus
    /// provenance (the shared tail of the cell-exact and byte paths).
    fn scalar_from_parts(&self, ty: &Ctype, iv: IntegerValue) -> MemValue {
        match ty {
            Ctype::Integer(it) => MemValue::Integer(
                *it,
                IntegerValue::with_prov(self.env.convert_int(iv.value, *it), iv.prov),
            ),
            Ctype::Pointer(_, pointee) => {
                let addr = iv.value as u64;
                if addr == 0 {
                    return MemValue::Pointer((**pointee).clone(), PointerValue::null());
                }
                if let Some(name) = self.functions_by_addr.get(&addr) {
                    return MemValue::Pointer(
                        (**pointee).clone(),
                        PointerValue::function(name.clone()),
                    );
                }
                MemValue::Pointer((**pointee).clone(), PointerValue::object(iv.prov, addr))
            }
            Ctype::Floating => MemValue::Integer(IntegerType::LongLong, iv),
            other => MemValue::Unspecified(other.clone()),
        }
    }

    /// Reinterpret an exactly-matching cell value at the load type.
    fn reinterpret(&self, value: &MemValue, ty: &Ctype) -> MemValue {
        match value {
            MemValue::Unspecified(_) => MemValue::Unspecified(ty.clone()),
            MemValue::Integer(_, iv) => self.scalar_from_parts(ty, *iv),
            MemValue::Pointer(_, pv) => match ty {
                Ctype::Pointer(_, pointee) => MemValue::Pointer((**pointee).clone(), pv.clone()),
                _ => self.scalar_from_parts(ty, IntegerValue::with_prov(pv.addr as i128, pv.prov)),
            },
            aggregate => aggregate.clone(),
        }
    }

    fn default_scalar(&self, id: AllocId, ty: &Ctype) -> MemValue {
        if self.allocs[id as usize].zero_initialised() {
            self.scalar_from_parts(ty, IntegerValue::pure(0))
        } else {
            MemValue::Unspecified(ty.clone())
        }
    }

    fn read_value(&self, id: AllocId, offset: u64, ty: &Ctype) -> ModelResult<MemValue> {
        match ty {
            Ctype::Array(elem, Some(n)) => {
                let esize = self.size_of(elem)?;
                let mut items = Vec::with_capacity(*n as usize);
                for i in 0..*n {
                    items.push(self.read_value(id, offset + i * esize, elem)?);
                }
                Ok(MemValue::Array(items))
            }
            Ctype::Struct(tag) => {
                let lay = layout::layout_of_tag(*tag, &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?;
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct"))?
                    .clone();
                let mut members = Vec::with_capacity(def.members.len());
                for (member, (_, moffset, _)) in def.members.iter().zip(lay.members.iter()) {
                    members.push((
                        member.name.clone(),
                        self.read_value(id, offset + moffset, &member.ty)?,
                    ));
                }
                Ok(MemValue::Struct(*tag, members))
            }
            Ctype::Union(tag) => {
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete union"))?
                    .clone();
                let first = def
                    .members
                    .first()
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "union with no members"))?;
                let inner = self.read_value(id, offset, &first.ty)?;
                Ok(MemValue::Union(*tag, first.name.clone(), Box::new(inner)))
            }
            scalar => {
                let size = self.size_of(scalar)?;
                let alloc = &self.allocs[id as usize];
                if let Some(cell) = alloc.cells.get(&offset) {
                    if cell.size == size {
                        return Ok(self.reinterpret(&cell.value, scalar));
                    }
                }
                if alloc
                    .cells
                    .range(..offset + size)
                    .next_back()
                    .filter(|(start, cell)| *start + cell.size > offset)
                    .is_none()
                {
                    // No cell overlaps the footprint at all: the object is
                    // still in its initial state here.
                    return Ok(self.default_scalar(id, scalar));
                }
                Ok(self.read_from_bytes(id, offset, scalar, size))
            }
        }
    }

    // ----- cell writing -----------------------------------------------------

    /// Remove every cell intersecting `[start, end)`, splitting partially
    /// overlapping cells into per-byte cells so the untouched parts read
    /// exactly as they did through the old cell: integer and pointer bytes
    /// keep their values and provenance, indeterminate bytes stay explicitly
    /// indeterminate.
    fn evict(&mut self, id: AllocId, start: u64, end: u64) {
        let overlapping: Vec<u64> = self.allocs[id as usize]
            .cells
            .range(..end)
            .filter(|(s, cell)| **s + cell.size > start)
            .map(|(s, _)| *s)
            .collect();
        for cell_start in overlapping {
            let cell = self.allocs[id as usize]
                .cells
                .remove(&cell_start)
                .expect("cell exists");
            if cell_start >= start && cell_start + cell.size <= end {
                continue;
            }
            // Partial overlap: rematerialise every surviving byte, exactly
            // as `byte_at` would have read it through the old cell —
            // integer and pointer cells keep their (provenance-carrying)
            // byte values, indeterminate cells leave explicit 1-byte
            // unspecified cells so the bytes stay indeterminate rather than
            // decaying to the allocation's zero-initialised default.
            for i in 0..cell.size {
                let at = cell_start + i;
                if at >= start && at < end {
                    continue;
                }
                let value = match self.cell_byte(&cell, i as usize) {
                    Some((byte, prov)) => MemValue::Integer(
                        IntegerType::UChar,
                        IntegerValue::with_prov(i128::from(byte), prov),
                    ),
                    None => MemValue::Unspecified(Ctype::integer(IntegerType::UChar)),
                };
                self.allocs[id as usize]
                    .cells
                    .insert(at, Cell { size: 1, value });
            }
        }
    }

    fn write_cell(&mut self, id: AllocId, offset: u64, size: u64, value: MemValue) {
        self.evict(id, offset, offset + size);
        self.allocs[id as usize]
            .cells
            .insert(offset, Cell { size, value });
    }

    fn write_value(
        &mut self,
        id: AllocId,
        offset: u64,
        ty: &Ctype,
        value: &MemValue,
    ) -> ModelResult<()> {
        match (ty, value) {
            (Ctype::Array(elem, _), MemValue::Array(items)) => {
                let esize = self.size_of(elem)?;
                let total = self.size_of(ty)?;
                self.evict(id, offset, offset + total);
                for (i, item) in items.iter().enumerate() {
                    self.write_value(id, offset + i as u64 * esize, elem, item)?;
                }
                Ok(())
            }
            (Ctype::Struct(tag), MemValue::Struct(_, members)) => {
                let lay = layout::layout_of_tag(*tag, &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?;
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct"))?
                    .clone();
                let total = self.size_of(ty)?;
                self.evict(id, offset, offset + total);
                for (member, (_, moffset, _)) in def.members.iter().zip(lay.members.iter()) {
                    let value = members
                        .iter()
                        .find(|(n, _)| n == &member.name)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(MemValue::Unspecified(member.ty.clone()));
                    self.write_value(id, offset + moffset, &member.ty, &value)?;
                }
                Ok(())
            }
            (Ctype::Union(tag), MemValue::Union(_, member, inner)) => {
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete union"))?
                    .clone();
                let m = def
                    .members
                    .iter()
                    .find(|m| &m.name == member)
                    .ok_or_else(|| {
                        MemError::new(UbKind::InvalidLvalue, format!("no union member {member}"))
                    })?;
                let total = self.size_of(ty)?;
                self.evict(id, offset, offset + total);
                self.write_value(id, offset, &m.ty.clone(), inner)
            }
            (scalar_ty, scalar) => {
                let size = self.size_of(scalar_ty)?;
                self.write_cell(id, offset, size, scalar.clone());
                Ok(())
            }
        }
    }
}

impl MemoryModel for SymbolicEngine {
    fn model_name(&self) -> &'static str {
        self.config.name
    }

    fn env(&self) -> &ImplEnv {
        &self.env
    }

    fn tags(&self) -> &TagRegistry {
        &self.tags
    }

    fn fresh(&self) -> Self {
        let mut fresh =
            SymbolicEngine::new(self.config.clone(), self.env.clone(), self.tags.clone());
        fresh.limits = self.limits.clone();
        fresh
    }

    fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    fn size_of(&self, ty: &Ctype) -> ModelResult<u64> {
        layout::size_of(ty, &self.env, &self.tags)
            .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))
    }

    fn align_of(&self, ty: &Ctype) -> ModelResult<u64> {
        layout::align_of(ty, &self.env, &self.tags)
            .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))
    }

    fn create(
        &mut self,
        ty: &Ctype,
        kind: AllocKind,
        name: Option<&str>,
    ) -> ModelResult<PointerValue> {
        let size = self.size_of(ty)?;
        self.push_allocation(size, kind, name, false)
    }

    fn alloc(&mut self, size: u64, _align: u64) -> ModelResult<PointerValue> {
        self.push_allocation(size.max(1), AllocKind::Dynamic, None, false)
    }

    fn create_string_literal(&mut self, bytes: &[u8]) -> ModelResult<PointerValue> {
        let mut contents = bytes.to_vec();
        contents.push(0);
        let ptr =
            self.push_allocation(contents.len() as u64, AllocKind::StringLiteral, None, true)?;
        let id = ptr
            .prov
            .alloc_id()
            .expect("fresh allocation has a provenance");
        for (i, b) in contents.iter().enumerate() {
            self.allocs[id as usize].cells.insert(
                i as u64,
                Cell {
                    size: 1,
                    value: MemValue::int(IntegerType::UChar, i128::from(*b)),
                },
            );
        }
        Ok(ptr)
    }

    fn register_function(&mut self, name: &Ident) -> PointerValue {
        let addr = match self.function_addrs.get(name.as_str()) {
            Some(&a) => a,
            None => {
                let a = FUNCTION_BASE + 16 * self.function_addrs.len() as u64;
                self.function_addrs.insert(name.as_str().to_owned(), a);
                self.functions_by_addr.insert(a, name.clone());
                a
            }
        };
        PointerValue {
            prov: Provenance::Empty,
            addr,
            cap: None,
            function: Some(name.clone()),
        }
    }

    fn function_at(&self, addr: u64) -> Option<&Ident> {
        self.functions_by_addr.get(&addr)
    }

    fn kill(&mut self, ptr: &PointerValue, dynamic: bool) -> ModelResult<()> {
        if dynamic && ptr.is_null() {
            // free(NULL) is a no-op (7.22.3.3p2).
            return Ok(());
        }
        let id = match ptr
            .prov
            .alloc_id()
            .or_else(|| region_of(ptr.addr).map(|(id, _)| id))
        {
            Some(id) if (id as usize) < self.allocs.len() => id,
            _ => {
                return Err(Self::violated(
                    UbKind::InvalidFree,
                    "pointer into no known allocation",
                ))
            }
        };
        let base = region_base(id);
        let alloc = &mut self.allocs[id as usize];
        if !alloc.alive {
            return Err(Self::violated(
                UbKind::InvalidFree,
                "object lifetime already ended",
            ));
        }
        if dynamic {
            if alloc.kind != AllocKind::Dynamic {
                return Err(Self::violated(
                    UbKind::InvalidFree,
                    "free of a pointer not obtained from an allocation function",
                ));
            }
            if ptr.addr != base {
                return Err(Self::violated(
                    UbKind::InvalidFree,
                    "free of an interior pointer",
                ));
            }
        }
        alloc.alive = false;
        self.live_allocation_count = self.live_allocation_count.saturating_sub(1);
        Ok(())
    }

    fn store(&mut self, ty: &Ctype, ptr: &PointerValue, value: &MemValue) -> ModelResult<()> {
        let len = self.size_of(ty)?;
        let (id, offset) = self.resolve(ptr, len, true)?;
        self.write_value(id, offset, ty, value)
    }

    fn load(&mut self, ty: &Ctype, ptr: &PointerValue) -> ModelResult<MemValue> {
        let len = self.size_of(ty)?;
        let (id, offset) = self.resolve(ptr, len, false)?;
        let value = self.read_value(id, offset, ty)?;
        if value.is_unspecified()
            && ty.is_scalar()
            && !ty.is_character()
            && self.config.uninit == UninitSemantics::Undefined
        {
            return Err(Self::violated(
                UbKind::IndeterminateValueUse,
                "read of an uninitialised (indeterminate) value",
            ));
        }
        Ok(value)
    }

    fn ptr_eq(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<bool> {
        if a.function.is_some() || b.function.is_some() {
            return Ok(a.function == b.function);
        }
        if a.is_null() || b.is_null() {
            return Ok(a.is_null() == b.is_null());
        }
        match (a.prov.alloc_id(), b.prov.alloc_id()) {
            (Some(x), Some(y)) if x != y => {
                // Twin-allocation reading: pointers into distinct allocations
                // are never equal, even when a concrete layout would make a
                // one-past pointer alias the neighbour (Q2).
                self.record(format!(
                    "resolved cross-allocation equality @{x} vs @{y} to false"
                ));
                Ok(false)
            }
            _ => Ok(a.addr == b.addr),
        }
    }

    fn ptr_rel(&self, a: &PointerValue, b: &PointerValue) -> ModelResult<std::cmp::Ordering> {
        let same_object = match (a.prov.alloc_id(), b.prov.alloc_id()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        if !same_object {
            // The symbolic address space has no inter-allocation order.
            return Err(Self::violated(
                UbKind::RelationalCompareDifferentObjects,
                "relational comparison of pointers into different allocations",
            ));
        }
        Ok(a.addr.cmp(&b.addr))
    }

    fn ptr_diff(
        &self,
        a: &PointerValue,
        b: &PointerValue,
        elem_size: u64,
    ) -> ModelResult<IntegerValue> {
        let same_object = match (a.prov.alloc_id(), b.prov.alloc_id()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        if !same_object {
            return Err(Self::violated(
                UbKind::PointerSubtractionDifferentObjects,
                "subtraction of pointers into different allocations",
            ));
        }
        let diff = (a.addr as i128 - b.addr as i128) / elem_size.max(1) as i128;
        Ok(IntegerValue::pure(diff))
    }

    fn int_from_ptr(&self, p: &PointerValue) -> IntegerValue {
        IntegerValue::with_prov(p.addr as i128, p.prov)
    }

    fn ptr_from_int(&self, iv: &IntegerValue) -> PointerValue {
        if iv.value == 0 {
            return PointerValue::null();
        }
        let addr = iv.value as u64;
        if let Some(name) = self.functions_by_addr.get(&addr) {
            return PointerValue::function(name.clone());
        }
        let prov = match self.config.int_to_ptr {
            IntToPtrSemantics::Forbidden => Provenance::Empty,
            IntToPtrSemantics::TrackedProvenance => iv.prov,
            IntToPtrSemantics::Wildcard => Provenance::Wildcard,
        };
        // Lazy intptr resolution: a wildcard integer can still be
        // reconstructed, because symbolic addresses determine their
        // allocation uniquely. The footprint constraint is deferred to use.
        let prov = match prov {
            Provenance::Wildcard => match region_of(addr) {
                Some((id, _)) if (id as usize) < self.allocs.len() => {
                    self.record(format!(
                        "resolved intptr round trip 0x{addr:x} to {}",
                        self.describe(id)
                    ));
                    Provenance::Alloc(id)
                }
                _ => Provenance::Wildcard,
            },
            other => other,
        };
        PointerValue::object(prov, addr)
    }

    fn valid_for_deref(&self, ptr: &PointerValue, ty: &Ctype) -> bool {
        match self.size_of(ty) {
            Ok(len) => self.resolve(ptr, len, false).is_ok(),
            Err(_) => false,
        }
    }

    fn array_shift(
        &self,
        ptr: &PointerValue,
        elem_ty: &Ctype,
        index: i128,
    ) -> ModelResult<PointerValue> {
        let esize = self.size_of(elem_ty)? as i128;
        let new_addr = (ptr.addr as i128 + index * esize) as u64;
        if !self.config.allow_oob_pointer_arith {
            if let Some(id) = ptr.prov.alloc_id() {
                if let Some(alloc) = self.allocs.get(id as usize) {
                    let offset = new_addr.wrapping_sub(region_base(id));
                    if offset > alloc.size {
                        return Err(Self::violated(
                            UbKind::OutOfBoundsPointerArithmetic,
                            "pointer arithmetic leaves the object (and its one-past point)",
                        ));
                    }
                }
            }
        }
        Ok(ptr.with_addr(new_addr))
    }

    fn member_shift(
        &self,
        ptr: &PointerValue,
        tag: TagId,
        member: &Ident,
    ) -> ModelResult<PointerValue> {
        let def = self
            .tags
            .get(tag)
            .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct/union"))?;
        let offset = match def.kind {
            layout::TagKind::Union => 0,
            layout::TagKind::Struct => {
                layout::offset_of(tag, member.as_str(), &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?
            }
        };
        Ok(ptr.with_addr(ptr.addr + offset))
    }

    fn copy_bytes(&mut self, dst: &PointerValue, src: &PointerValue, n: u64) -> ModelResult<()> {
        if n == 0 {
            return Ok(());
        }
        let (src_id, src_off) = self.resolve(src, n, false)?;
        let (dst_id, dst_off) = self.resolve(dst, n, true)?;
        // Collect the transferred cells first (whole cells wholesale, partial
        // overlaps byte by byte) so overlapping self-copies are safe.
        let mut moved: Vec<(u64, Cell)> = Vec::new();
        let mut cursor = 0u64;
        while cursor < n {
            let at = src_off + cursor;
            let whole = self.allocs[src_id as usize]
                .cells
                .get(&at)
                .filter(|cell| cursor + cell.size <= n)
                .cloned();
            match whole {
                Some(cell) => {
                    let advance = cell.size;
                    moved.push((cursor, cell));
                    cursor += advance;
                }
                None => {
                    // An indeterminate source byte must transfer as an
                    // *explicit* unspecified cell: leaving a gap would let a
                    // zero-initialised destination read it back as a
                    // fabricated determinate 0.
                    let value = match self.byte_at(src_id, at) {
                        Some((byte, prov)) => MemValue::Integer(
                            IntegerType::UChar,
                            IntegerValue::with_prov(i128::from(byte), prov),
                        ),
                        None => MemValue::Unspecified(Ctype::integer(IntegerType::UChar)),
                    };
                    moved.push((cursor, Cell { size: 1, value }));
                    cursor += 1;
                }
            }
        }
        self.evict(dst_id, dst_off, dst_off + n);
        for (rel, cell) in moved {
            self.allocs[dst_id as usize]
                .cells
                .insert(dst_off + rel, cell);
        }
        Ok(())
    }

    fn compare_bytes(&self, a: &PointerValue, b: &PointerValue, n: u64) -> ModelResult<i32> {
        if n == 0 {
            return Ok(0);
        }
        let (a_id, a_off) = self.resolve(a, n, false)?;
        let (b_id, b_off) = self.resolve(b, n, false)?;
        for i in 0..n {
            let x = self.byte_at(a_id, a_off + i);
            let y = self.byte_at(b_id, b_off + i);
            let (x, y) = match (x, y, self.config.uninit) {
                (Some((x, _)), Some((y, _)), _) => (x, y),
                (_, _, UninitSemantics::Undefined) => {
                    return Err(Self::violated(
                        UbKind::IndeterminateValueUse,
                        "memcmp over indeterminate bytes",
                    ))
                }
                (x, y, _) => (x.map_or(0, |(v, _)| v), y.map_or(0, |(v, _)| v)),
            };
            if x != y {
                return Ok(if x < y { -1 } else { 1 });
            }
        }
        Ok(0)
    }

    fn set_bytes(&mut self, dst: &PointerValue, byte: u8, n: u64) -> ModelResult<()> {
        if n == 0 {
            return Ok(());
        }
        let (id, offset) = self.resolve(dst, n, true)?;
        self.evict(id, offset, offset + n);
        for i in 0..n {
            self.allocs[id as usize].cells.insert(
                offset + i,
                Cell {
                    size: 1,
                    value: MemValue::int(IntegerType::UChar, i128::from(byte)),
                },
            );
        }
        Ok(())
    }

    fn read_c_string(&self, ptr: &PointerValue) -> ModelResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut addr = ptr.addr;
        loop {
            let p = ptr.with_addr(addr);
            let (id, offset) = self.resolve(&p, 1, false)?;
            let b = self.byte_at(id, offset).map(|(v, _)| v).ok_or_else(|| {
                Self::violated(
                    UbKind::IndeterminateValueUse,
                    "indeterminate byte in string",
                )
            })?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            addr += 1;
            if out.len() > 1_000_000 {
                return Err(Self::violated(
                    UbKind::OutOfBoundsAccess,
                    "unterminated string",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryModel;

    fn int_ty() -> Ctype {
        Ctype::integer(IntegerType::Int)
    }

    fn engine() -> SymbolicEngine {
        SymbolicEngine::new(ModelConfig::symbolic(), ImplEnv::lp64(), TagRegistry::new())
    }

    #[test]
    fn store_load_round_trip() {
        let mut mem = engine();
        let p = mem
            .create(&int_ty(), AllocKind::Automatic, Some("x"))
            .unwrap();
        mem.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, -7))
            .unwrap();
        assert_eq!(mem.load(&int_ty(), &p).unwrap().as_int(), Some(-7));
        assert_eq!(mem.model_name(), "symbolic");
    }

    #[test]
    fn allocations_live_in_disjoint_regions() {
        let mut mem = engine();
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        // One-past-x is never the representation of &y.
        assert_ne!(one_past.addr, y.addr);
        assert!(!mem.ptr_eq(&one_past, &y).unwrap());
        assert!(!mem.resolutions().is_empty());
    }

    #[test]
    fn one_past_store_violates_the_footprint_constraint() {
        let mut mem = engine();
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let _y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        let err = mem
            .store(&int_ty(), &one_past, &MemValue::int(IntegerType::Int, 11))
            .unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::OutOfBoundsAccess));
        assert!(err.detail.starts_with("constraint violated"), "{err}");
    }

    #[test]
    fn cross_object_relational_comparison_is_a_constraint_violation() {
        let mut mem = engine();
        let a = mem.create(&int_ty(), AllocKind::Static, None).unwrap();
        let b = mem.create(&int_ty(), AllocKind::Static, None).unwrap();
        assert_eq!(
            mem.ptr_rel(&a, &b).unwrap_err().ub(),
            Some(UbKind::RelationalCompareDifferentObjects)
        );
        // Within one object the offsets are ordered as usual.
        let arr = Ctype::array(int_ty(), 4);
        let base = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        let third = mem.array_shift(&base, &int_ty(), 3).unwrap();
        assert_eq!(
            mem.ptr_rel(&base, &third).unwrap(),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn intptr_round_trip_resolves_through_provenance() {
        let mut mem = engine();
        let p = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        mem.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 5))
            .unwrap();
        let i = mem.int_from_ptr(&p);
        assert_eq!(i.prov, p.prov);
        let q = mem.ptr_from_int(&i);
        assert_eq!(mem.load(&int_ty(), &q).unwrap().as_int(), Some(5));
    }

    #[test]
    fn transient_oob_pointers_are_lazy() {
        let mut mem = engine();
        let arr = Ctype::array(int_ty(), 4);
        let a = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        // Construction is unconstrained …
        let oob = mem.array_shift(&a, &int_ty(), 10).unwrap();
        // … the constraint is only checked at use.
        assert_eq!(
            mem.load(&int_ty(), &oob).unwrap_err().ub(),
            Some(UbKind::OutOfBoundsAccess)
        );
        let back = mem.array_shift(&oob, &int_ty(), -9).unwrap();
        mem.store(&int_ty(), &back, &MemValue::int(IntegerType::Int, 7))
            .unwrap();
        assert_eq!(mem.load(&int_ty(), &back).unwrap().as_int(), Some(7));
    }

    #[test]
    fn memcpy_moves_pointer_cells_with_their_provenance() {
        let mut mem = engine();
        let target = mem
            .create(&int_ty(), AllocKind::Automatic, Some("t"))
            .unwrap();
        mem.store(&int_ty(), &target, &MemValue::int(IntegerType::Int, 99))
            .unwrap();
        let pty = Ctype::pointer(int_ty());
        let p1 = mem.create(&pty, AllocKind::Automatic, Some("p1")).unwrap();
        let p2 = mem.create(&pty, AllocKind::Automatic, Some("p2")).unwrap();
        mem.store(&pty, &p1, &MemValue::Pointer(int_ty(), target.clone()))
            .unwrap();
        mem.copy_bytes(&p2, &p1, 8).unwrap();
        let copied = mem.load(&pty, &p2).unwrap();
        let copied_ptr = copied.as_pointer().expect("a pointer");
        assert_eq!(copied_ptr.prov, target.prov);
        assert_eq!(mem.load(&int_ty(), copied_ptr).unwrap().as_int(), Some(99));
    }

    #[test]
    fn memcpy_of_indeterminate_bytes_stays_indeterminate() {
        // Copying an uninitialised automatic object into a zero-initialised
        // static one must not fabricate a determinate 0: the destination
        // reads back unspecified.
        let mut mem = engine();
        let src = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        let dst = mem.create(&int_ty(), AllocKind::Static, None).unwrap();
        mem.store(&int_ty(), &dst, &MemValue::int(IntegerType::Int, 77))
            .unwrap();
        mem.copy_bytes(&dst, &src, 4).unwrap();
        assert!(mem.load(&int_ty(), &dst).unwrap().is_unspecified());
    }

    #[test]
    fn memcmp_distinguishes_pointers_into_distinct_allocations() {
        // The DR260 shape: &x + 1 and &y are byte-distinguishable because
        // each allocation owns its own symbolic region.
        let mut mem = engine();
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        let pty = Ctype::pointer(int_ty());
        let p = mem.create(&pty, AllocKind::Automatic, Some("p")).unwrap();
        let q = mem.create(&pty, AllocKind::Automatic, Some("q")).unwrap();
        mem.store(&pty, &p, &MemValue::Pointer(int_ty(), one_past))
            .unwrap();
        mem.store(&pty, &q, &MemValue::Pointer(int_ty(), y))
            .unwrap();
        assert_ne!(mem.compare_bytes(&p, &q, 8).unwrap(), 0);
    }

    #[test]
    fn byte_granularity_integer_games_still_work() {
        // Union-punning shape: a 4-byte store read back bytewise.
        let mut mem = engine();
        let uint = Ctype::integer(IntegerType::UInt);
        let p = mem.create(&uint, AllocKind::Automatic, None).unwrap();
        mem.store(&uint, &p, &MemValue::int(IntegerType::UInt, 0x0102_0304))
            .unwrap();
        let char_ty = Ctype::integer(IntegerType::UChar);
        let b0 = mem.load(&char_ty, &p).unwrap();
        assert_eq!(b0.as_int(), Some(4), "little-endian low byte");
        let p1 = mem.array_shift(&p, &char_ty, 1).unwrap();
        assert_eq!(mem.load(&char_ty, &p1).unwrap().as_int(), Some(3));
    }

    #[test]
    fn partial_overwrite_of_a_pointer_cell_keeps_the_surviving_bytes() {
        // Overwriting one byte of a stored pointer must not fabricate a
        // confident wrong pointer out of the allocation's zero default: the
        // other seven bytes keep their (provenance-carrying) values, so the
        // reassembled pointer differs from the original only in that byte.
        let mut mem = engine();
        let target = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let pty = Ctype::pointer(int_ty());
        let p = mem.create(&pty, AllocKind::Static, Some("p")).unwrap();
        mem.store(&pty, &p, &MemValue::Pointer(int_ty(), target.clone()))
            .unwrap();
        let char_ty = Ctype::integer(IntegerType::UChar);
        mem.store(&char_ty, &p, &MemValue::int(IntegerType::UChar, 0xAB))
            .unwrap();
        let loaded = mem.load(&pty, &p).unwrap();
        let ptr = loaded.as_pointer().expect("a pointer");
        // Little-endian: low byte replaced, high bytes survive with their
        // provenance.
        assert_eq!(ptr.addr, (target.addr & !0xff) | 0xAB);
        assert_eq!(ptr.prov, target.prov);
        // An indeterminate cell split the same way stays indeterminate
        // (even in a zero-initialised static allocation).
        let q = mem.create(&pty, AllocKind::Static, Some("q")).unwrap();
        mem.store(&pty, &q, &MemValue::Unspecified(pty.clone()))
            .unwrap();
        mem.store(&char_ty, &q, &MemValue::int(IntegerType::UChar, 1))
            .unwrap();
        assert!(mem.load(&pty, &q).unwrap().is_unspecified());
    }

    #[test]
    fn statics_read_zero_and_automatics_read_indeterminate() {
        let mut mem = engine();
        let s = mem.create(&int_ty(), AllocKind::Static, Some("g")).unwrap();
        assert_eq!(mem.load(&int_ty(), &s).unwrap().as_int(), Some(0));
        let a = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        assert!(mem.load(&int_ty(), &a).unwrap().is_unspecified());
    }

    #[test]
    fn lifetime_and_free_constraints() {
        let mut mem = engine();
        let p = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        mem.kill(&p, false).unwrap();
        assert_eq!(
            mem.load(&int_ty(), &p).unwrap_err().ub(),
            Some(UbKind::AccessOutsideLifetime)
        );
        let d = mem.alloc(16, 16).unwrap();
        mem.kill(&d, true).unwrap();
        assert_eq!(
            mem.kill(&d, true).unwrap_err().ub(),
            Some(UbKind::InvalidFree)
        );
        mem.kill(&PointerValue::null(), true).unwrap();
    }

    #[test]
    fn string_literals_are_readable_and_immutable() {
        let mut mem = engine();
        let s = mem.create_string_literal(b"hi").unwrap();
        assert_eq!(mem.read_c_string(&s).unwrap(), b"hi".to_vec());
        let err = mem
            .store(
                &Ctype::integer(IntegerType::Char),
                &s,
                &MemValue::int(IntegerType::Char, 65),
            )
            .unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::StringLiteralModification));
    }

    #[test]
    fn fresh_resets_state_but_keeps_configuration() {
        let mut mem = engine();
        let _ = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        assert_eq!(mem.live_allocations(), 1);
        let fresh = MemoryModel::fresh(&mem);
        assert_eq!(fresh.live_allocations(), 0);
        assert_eq!(fresh.model_name(), "symbolic");
    }
}
