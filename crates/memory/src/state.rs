//! The memory engine: allocations, representation bytes, typed loads and
//! stores, and the pointer operations — all parameterised by a
//! [`ModelConfig`].
//!
//! The engine realises the candidate de facto model of §5.9 (and, by varying
//! the configuration, the other points in the design space): every allocation
//! has a fresh ID and a concrete address range; loads and stores check the
//! access against the footprint of the allocation named by the pointer's
//! *provenance*; representation bytes carry provenance so that pointers copied
//! bytewise (Q13–Q16) remain usable; and padding, uninitialised-read,
//! effective-type and out-of-bounds behaviour follow the configured semantics.

use std::collections::HashMap;

use cerberus_ast::ctype::{Ctype, IntegerType, TagId};
use cerberus_ast::env::{Endianness, ImplEnv};
use cerberus_ast::ident::Ident;
use cerberus_ast::layout::{self, TagRegistry};
use cerberus_ast::ub::UbKind;

use crate::config::{
    IntToPtrSemantics, ModelConfig, PaddingSemantics, RelationalSemantics, UninitSemantics,
};
use crate::limits::{ResourceKind, ResourceLimits};
use crate::value::{AllocId, CapMeta, IntegerValue, MemValue, PointerValue, Provenance};

/// The storage duration / origin of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// Static storage duration (file-scope objects, static locals).
    Static,
    /// Automatic storage duration (block-scoped objects, parameters).
    Automatic,
    /// Allocated storage duration (`malloc`/`calloc`).
    Dynamic,
    /// A string literal object (read-only).
    StringLiteral,
}

/// One representation byte: an optional concrete value (absent for
/// unspecified bytes) together with the provenance it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsByte {
    /// The provenance carried by this byte (so bytewise pointer copies keep
    /// working).
    pub prov: Provenance,
    /// The concrete byte, or `None` for an unspecified byte.
    pub value: Option<u8>,
}

impl AbsByte {
    fn unspec() -> Self {
        AbsByte {
            prov: Provenance::Empty,
            value: None,
        }
    }

    fn zero() -> Self {
        AbsByte {
            prov: Provenance::Empty,
            value: Some(0),
        }
    }
}

/// A single allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The allocation ID (its provenance).
    pub id: AllocId,
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Alignment the address satisfies.
    pub align: u64,
    /// Storage kind.
    pub kind: AllocKind,
    /// Whether the object is still within its lifetime.
    pub alive: bool,
    /// The declared type, for objects with one (used by the effective-type
    /// rules).
    pub declared_ty: Option<Ctype>,
    /// The effective type of a dynamic allocation (set by the first
    /// non-character store, 6.5p6).
    pub effective_ty: Option<Ctype>,
    /// The source name, if known (for diagnostics).
    pub name: Option<String>,
    /// Whether stores are forbidden (string literals).
    pub readonly: bool,
    bytes: Vec<AbsByte>,
}

impl Allocation {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether `[addr, addr+len)` lies within the allocation.
    pub fn contains_range(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr + len <= self.end()
    }
}

/// What a [`MemError`] reports: detected undefined behaviour, or exhaustion
/// of one of the engine-enforced resource budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemErrorKind {
    /// The access or operation is undefined behaviour.
    Undef(UbKind),
    /// A [`ResourceLimits`] budget was exhausted (not UB — the program may be
    /// perfectly defined, the *run* ran out of budget).
    Resource(ResourceKind),
}

/// A memory error: the undefined behaviour detected (or the budget
/// exhausted) and a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError {
    /// What went wrong.
    pub kind: MemErrorKind,
    /// What happened.
    pub detail: String,
}

impl MemError {
    /// A memory error reporting the given undefined behaviour.
    pub fn new(ub: UbKind, detail: impl Into<String>) -> Self {
        MemError {
            kind: MemErrorKind::Undef(ub),
            detail: detail.into(),
        }
    }

    /// A memory error reporting resource-budget exhaustion.
    pub fn resource(kind: ResourceKind, detail: impl Into<String>) -> Self {
        MemError {
            kind: MemErrorKind::Resource(kind),
            detail: detail.into(),
        }
    }

    /// The undefined behaviour this error reports, if it reports one (rather
    /// than a resource-budget exhaustion).
    pub fn ub(&self) -> Option<UbKind> {
        match self.kind {
            MemErrorKind::Undef(ub) => Some(ub),
            MemErrorKind::Resource(_) => None,
        }
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            MemErrorKind::Undef(ub) => write!(f, "{}: {}", ub, self.detail),
            MemErrorKind::Resource(kind) => write!(f, "{} exhausted: {}", kind, self.detail),
        }
    }
}

impl std::error::Error for MemError {}

type MResult<T> = Result<T, MemError>;

/// Base address of the object address space.
const OBJECT_BASE: u64 = 0x1_0000;
/// Base of the synthetic function "address" space.
const FUNCTION_BASE: u64 = 0x1000;

/// The memory state: the set of allocations, the configuration, and the
/// implementation-defined environment.
#[derive(Debug, Clone)]
pub struct MemState {
    config: ModelConfig,
    env: ImplEnv,
    tags: TagRegistry,
    allocations: Vec<Allocation>,
    next_addr: u64,
    function_addrs: HashMap<String, u64>,
    functions_by_addr: HashMap<u64, Ident>,
    /// Shadow stores used by the GCC-like provenance-optimising semantics
    /// (see [`ModelConfig::provenance_optimising_stores`]): address → bytes.
    shadow: HashMap<u64, Vec<AbsByte>>,
    /// The resource budget in force (see [`MemState::set_limits`]).
    limits: ResourceLimits,
    /// Cumulative bytes allocated over this execution.
    allocated_bytes: u64,
    /// Allocations currently within their lifetime.
    live_allocation_count: usize,
}

impl MemState {
    /// A fresh memory state.
    pub fn new(config: ModelConfig, env: ImplEnv, tags: TagRegistry) -> Self {
        MemState {
            config,
            env,
            tags,
            allocations: Vec::new(),
            next_addr: OBJECT_BASE,
            function_addrs: HashMap::new(),
            functions_by_addr: HashMap::new(),
            shadow: HashMap::new(),
            limits: ResourceLimits::default(),
            allocated_bytes: 0,
            live_allocation_count: 0,
        }
    }

    /// Install the resource budget this state enforces on allocation (the
    /// driver sets it on the per-execution state obtained from
    /// [`crate::model::MemoryModel::fresh`]).
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    /// The resource budget in force.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Cumulative bytes allocated over this execution (never refunded by
    /// `kill`/`free` — the budget bounds total allocation work, not peak
    /// residency).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// The number of allocations currently within their lifetime.
    pub fn live_allocation_count(&self) -> usize {
        self.live_allocation_count
    }

    /// Check the allocation budgets before admitting `size` more bytes and
    /// one more live allocation.
    fn charge_allocation(&self, size: u64) -> MResult<()> {
        if let Some(budget) = self.limits.heap_bytes {
            let total = self.allocated_bytes.saturating_add(size);
            if total > budget {
                return Err(MemError::resource(
                    ResourceKind::HeapBytes,
                    format!("{total} bytes allocated exceeds the budget of {budget}"),
                ));
            }
        }
        if let Some(budget) = self.limits.max_live_allocations {
            if self.live_allocation_count + 1 > budget {
                return Err(MemError::resource(
                    ResourceKind::LiveAllocations,
                    format!(
                        "{} live allocations exceeds the budget of {budget}",
                        self.live_allocation_count + 1
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The model configuration in force.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The implementation-defined environment.
    pub fn env(&self) -> &ImplEnv {
        &self.env
    }

    /// The struct/union registry.
    pub fn tags(&self) -> &TagRegistry {
        &self.tags
    }

    /// All allocations made so far (for inspection and tests).
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Look up an allocation by ID.
    pub fn allocation(&self, id: AllocId) -> Option<&Allocation> {
        self.allocations.get(id as usize)
    }

    // ----- layout helpers ---------------------------------------------------

    /// `sizeof` under this state's environment and tag registry.
    pub fn size_of(&self, ty: &Ctype) -> MResult<u64> {
        layout::size_of(ty, &self.env, &self.tags)
            .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))
    }

    /// `_Alignof` under this state's environment and tag registry.
    pub fn align_of(&self, ty: &Ctype) -> MResult<u64> {
        layout::align_of(ty, &self.env, &self.tags)
            .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))
    }

    // ----- allocation --------------------------------------------------------

    fn push_allocation(
        &mut self,
        size: u64,
        align: u64,
        kind: AllocKind,
        declared_ty: Option<Ctype>,
        name: Option<&str>,
        readonly: bool,
    ) -> MResult<PointerValue> {
        self.charge_allocation(size)?;
        self.allocated_bytes = self.allocated_bytes.saturating_add(size);
        self.live_allocation_count += 1;
        let id = self.allocations.len() as AllocId;
        let base = layout::align_up(self.next_addr, align.max(1));
        let init_byte = match kind {
            AllocKind::Static | AllocKind::StringLiteral => AbsByte::zero(),
            _ => AbsByte::unspec(),
        };
        let alloc = Allocation {
            id,
            base,
            size,
            align,
            kind,
            alive: true,
            declared_ty,
            effective_ty: None,
            name: name.map(str::to_owned),
            readonly,
            bytes: vec![init_byte; size as usize],
        };
        self.next_addr = base + size;
        self.allocations.push(alloc);
        let cap = if self.config.cheri {
            Some(CapMeta {
                base,
                length: size,
                tag: true,
            })
        } else {
            None
        };
        Ok(PointerValue {
            prov: Provenance::Alloc(id),
            addr: base,
            cap,
            function: None,
        })
    }

    /// Create an object of declared type `ty` (the Core `create` action).
    pub fn create(
        &mut self,
        ty: &Ctype,
        kind: AllocKind,
        name: Option<&str>,
    ) -> MResult<PointerValue> {
        let size = self.size_of(ty)?;
        let align = self.align_of(ty)?;
        self.push_allocation(size, align, kind, Some(ty.clone()), name, false)
    }

    /// Allocate a dynamic region of `size` bytes (the Core `alloc` action,
    /// i.e. `malloc`). Fails only when a [`ResourceLimits`] allocation budget
    /// is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> MResult<PointerValue> {
        self.push_allocation(
            size.max(1),
            align.max(1),
            AllocKind::Dynamic,
            None,
            None,
            false,
        )
    }

    /// Create a read-only string-literal object holding `bytes` plus a
    /// terminating NUL.
    pub fn create_string_literal(&mut self, bytes: &[u8]) -> MResult<PointerValue> {
        let mut contents = bytes.to_vec();
        contents.push(0);
        let ptr = self.push_allocation(
            contents.len() as u64,
            1,
            AllocKind::StringLiteral,
            Some(Ctype::array(
                Ctype::integer(IntegerType::Char),
                contents.len() as u64,
            )),
            None,
            true,
        )?;
        let id = ptr
            .prov
            .alloc_id()
            .expect("fresh string allocation has a provenance");
        let alloc = &mut self.allocations[id as usize];
        for (i, b) in contents.iter().enumerate() {
            alloc.bytes[i] = AbsByte {
                prov: Provenance::Empty,
                value: Some(*b),
            };
        }
        Ok(ptr)
    }

    /// Register a C function, giving it a synthetic address so function
    /// pointers can be stored and compared.
    pub fn register_function(&mut self, name: &Ident) -> PointerValue {
        let addr = match self.function_addrs.get(name.as_str()) {
            Some(&a) => a,
            None => {
                let a = FUNCTION_BASE + 16 * self.function_addrs.len() as u64;
                self.function_addrs.insert(name.as_str().to_owned(), a);
                self.functions_by_addr.insert(a, name.clone());
                a
            }
        };
        PointerValue {
            prov: Provenance::Empty,
            addr,
            cap: None,
            function: Some(name.clone()),
        }
    }

    /// The function registered at a synthetic function address, if any.
    pub fn function_at(&self, addr: u64) -> Option<&Ident> {
        self.functions_by_addr.get(&addr)
    }

    /// End the lifetime of the object a pointer refers to (the Core `kill`
    /// action). `dynamic` selects `free` semantics (the pointer must be the
    /// exact value returned by an allocation function).
    pub fn kill(&mut self, ptr: &PointerValue, dynamic: bool) -> MResult<()> {
        if dynamic && ptr.is_null() {
            // free(NULL) is a no-op (7.22.3.3p2).
            return Ok(());
        }
        let id = self.resolve_allocation(ptr)?;
        let alloc = &mut self.allocations[id as usize];
        if !alloc.alive {
            return Err(MemError::new(
                UbKind::InvalidFree,
                "object lifetime already ended",
            ));
        }
        if dynamic {
            if alloc.kind != AllocKind::Dynamic {
                return Err(MemError::new(
                    UbKind::InvalidFree,
                    "free of a pointer not obtained from an allocation function",
                ));
            }
            if ptr.addr != alloc.base {
                return Err(MemError::new(
                    UbKind::InvalidFree,
                    "free of an interior pointer",
                ));
            }
        }
        alloc.alive = false;
        self.live_allocation_count = self.live_allocation_count.saturating_sub(1);
        Ok(())
    }

    fn resolve_allocation(&self, ptr: &PointerValue) -> MResult<AllocId> {
        if let Some(id) = ptr.prov.alloc_id() {
            return Ok(id);
        }
        self.find_alloc_by_addr(ptr.addr)
            .map(|a| a.id)
            .ok_or_else(|| MemError::new(UbKind::InvalidFree, "pointer into no live allocation"))
    }

    fn find_alloc_by_addr(&self, addr: u64) -> Option<&Allocation> {
        self.allocations
            .iter()
            .find(|a| a.alive && addr >= a.base && addr < a.end())
    }

    // ----- access checking ---------------------------------------------------

    fn check_access(&self, ptr: &PointerValue, len: u64, is_store: bool) -> MResult<AllocId> {
        if ptr.function.is_some() {
            return Err(MemError::new(
                UbKind::InvalidLvalue,
                "object access through a function pointer",
            ));
        }
        if ptr.is_null() {
            return Err(MemError::new(
                UbKind::NullPointerDeref,
                "access through a null pointer",
            ));
        }
        if self.config.cheri {
            if let Some(cap) = &ptr.cap {
                if !cap.tag {
                    return Err(MemError::new(
                        UbKind::OutOfBoundsAccess,
                        "access through a capability with a cleared tag",
                    ));
                }
                if ptr.addr < cap.base || ptr.addr + len > cap.base + cap.length {
                    return Err(MemError::new(
                        UbKind::OutOfBoundsAccess,
                        "capability bounds violation",
                    ));
                }
            } else {
                return Err(MemError::new(
                    UbKind::AccessWithoutProvenance,
                    "access through an untagged CHERI pointer",
                ));
            }
        }
        let id = if self.config.provenance_checking {
            match ptr.prov {
                Provenance::Alloc(id) => {
                    let alloc = self.allocation(id).ok_or_else(|| {
                        MemError::new(UbKind::OutOfBoundsAccess, "unknown allocation")
                    })?;
                    if !alloc.alive {
                        return Err(MemError::new(
                            UbKind::AccessOutsideLifetime,
                            format!("access to {} after its lifetime ended", describe(alloc)),
                        ));
                    }
                    if !alloc.contains_range(ptr.addr, len) {
                        return Err(MemError::new(
                            UbKind::OutOfBoundsAccess,
                            format!(
                                "address 0x{:x} (+{len}) is outside the footprint of {}",
                                ptr.addr,
                                describe(alloc)
                            ),
                        ));
                    }
                    id
                }
                Provenance::Empty => {
                    return Err(MemError::new(
                        UbKind::AccessWithoutProvenance,
                        "access through a pointer with empty provenance",
                    ))
                }
                Provenance::Wildcard => {
                    let alloc = self.find_alloc_by_addr(ptr.addr).ok_or_else(|| {
                        MemError::new(
                            UbKind::OutOfBoundsAccess,
                            "wildcard pointer does not refer to any live allocation",
                        )
                    })?;
                    if !alloc.contains_range(ptr.addr, len) {
                        return Err(MemError::new(UbKind::OutOfBoundsAccess, "partial overlap"));
                    }
                    alloc.id
                }
            }
        } else {
            let alloc = self.find_alloc_by_addr(ptr.addr).ok_or_else(|| {
                MemError::new(
                    UbKind::OutOfBoundsAccess,
                    format!("address 0x{:x} is not within any live allocation", ptr.addr),
                )
            })?;
            if !alloc.contains_range(ptr.addr, len) {
                return Err(MemError::new(
                    UbKind::OutOfBoundsAccess,
                    "access straddles allocations",
                ));
            }
            alloc.id
        };
        if is_store && self.allocations[id as usize].readonly {
            return Err(MemError::new(
                UbKind::StringLiteralModification,
                "store into a read-only (string literal) object",
            ));
        }
        Ok(id)
    }

    fn check_effective_type(
        &mut self,
        id: AllocId,
        access_ty: &Ctype,
        is_store: bool,
    ) -> MResult<()> {
        if !self.config.effective_types || access_ty.is_character() {
            return Ok(());
        }
        let alloc = &mut self.allocations[id as usize];
        let declared = alloc
            .declared_ty
            .clone()
            .or_else(|| alloc.effective_ty.clone());
        match declared {
            None => {
                if is_store {
                    alloc.effective_ty = Some(access_ty.clone());
                }
                Ok(())
            }
            Some(decl) => {
                if types_alias_compatible(&decl, access_ty) {
                    Ok(())
                } else {
                    Err(MemError::new(
                        UbKind::EffectiveTypeViolation,
                        format!(
                            "access at type {access_ty} to an object with effective type {decl}"
                        ),
                    ))
                }
            }
        }
    }

    // ----- serialisation -----------------------------------------------------

    fn int_to_bytes(&self, value: i128, size: u64, prov: Provenance) -> Vec<AbsByte> {
        let mut out = Vec::with_capacity(size as usize);
        let uval = value as u128;
        for i in 0..size {
            let shift = match self.env.endianness {
                Endianness::Little => 8 * i,
                Endianness::Big => 8 * (size - 1 - i),
            };
            out.push(AbsByte {
                prov,
                value: Some(((uval >> shift) & 0xff) as u8),
            });
        }
        out
    }

    fn bytes_to_int(&self, bytes: &[AbsByte], signed: bool) -> Option<(i128, Provenance)> {
        let mut value: u128 = 0;
        let mut prov = Provenance::Empty;
        for (i, b) in bytes.iter().enumerate() {
            let v = b.value?;
            let shift = match self.env.endianness {
                Endianness::Little => 8 * i as u32,
                Endianness::Big => 8 * (bytes.len() - 1 - i) as u32,
            };
            value |= (v as u128) << shift;
            prov = prov.combine(b.prov);
        }
        let width = 8 * bytes.len() as u32;
        let mut signed_value = value as i128;
        if signed && width < 128 {
            let sign_bit = 1u128 << (width - 1);
            if value & sign_bit != 0 {
                signed_value = (value as i128) - (1i128 << width);
            }
        }
        Some((signed_value, prov))
    }

    /// Serialise a memory value at a C type into representation bytes.
    pub fn serialize(&self, ty: &Ctype, value: &MemValue) -> MResult<Vec<AbsByte>> {
        let size = self.size_of(ty)?;
        match (ty, value) {
            (_, MemValue::Unspecified(_)) => Ok(vec![AbsByte::unspec(); size as usize]),
            (Ctype::Integer(it), MemValue::Integer(_, iv)) => {
                Ok(self.int_to_bytes(iv.value, self.env.integer_size(*it), iv.prov))
            }
            (Ctype::Integer(it), MemValue::Pointer(_, pv)) => {
                // Storing a pointer at an integer type (e.g. uintptr_t).
                Ok(self.int_to_bytes(pv.addr as i128, self.env.integer_size(*it), pv.prov))
            }
            (Ctype::Pointer(..), MemValue::Pointer(_, pv)) => {
                Ok(self.int_to_bytes(pv.addr as i128, self.env.pointer_size, pv.prov))
            }
            (Ctype::Pointer(..), MemValue::Integer(_, iv)) => {
                Ok(self.int_to_bytes(iv.value, self.env.pointer_size, iv.prov))
            }
            (Ctype::Array(elem, _), MemValue::Array(items)) => {
                let mut out = Vec::with_capacity(size as usize);
                for item in items {
                    out.extend(self.serialize(elem, item)?);
                }
                out.resize(size as usize, AbsByte::unspec());
                Ok(out)
            }
            (Ctype::Struct(tag), MemValue::Struct(_, members)) => {
                let lay = layout::layout_of_tag(*tag, &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?;
                let mut out = vec![AbsByte::unspec(); size as usize];
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct"))?
                    .clone();
                for (member, (_, offset, _)) in def.members.iter().zip(lay.members.iter()) {
                    let value = members
                        .iter()
                        .find(|(n, _)| n == &member.name)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(MemValue::Unspecified(member.ty.clone()));
                    let bytes = self.serialize(&member.ty, &value)?;
                    for (i, b) in bytes.into_iter().enumerate() {
                        out[*offset as usize + i] = b;
                    }
                }
                // Padding bytes stay unspecified; the configured padding
                // semantics is applied by `store`.
                Ok(out)
            }
            (Ctype::Union(tag), MemValue::Union(_, member, inner)) => {
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete union"))?
                    .clone();
                let m = def
                    .members
                    .iter()
                    .find(|m| &m.name == member)
                    .ok_or_else(|| {
                        MemError::new(UbKind::InvalidLvalue, format!("no union member {member}"))
                    })?;
                let mut out = vec![AbsByte::unspec(); size as usize];
                for (i, b) in self.serialize(&m.ty, inner)?.into_iter().enumerate() {
                    out[i] = b;
                }
                Ok(out)
            }
            (Ctype::Floating, MemValue::Integer(_, iv)) => {
                Ok(self.int_to_bytes(iv.value, 8, iv.prov))
            }
            (ty, value) => Err(MemError::new(
                UbKind::InvalidLvalue,
                format!("cannot represent {value} at type {ty}"),
            )),
        }
    }

    /// Deserialise representation bytes at a C type into a memory value.
    pub fn deserialize(&self, ty: &Ctype, bytes: &[AbsByte]) -> MResult<MemValue> {
        match ty {
            Ctype::Integer(it) => {
                let signed = self.env.is_signed(*it);
                match self.bytes_to_int(bytes, signed) {
                    Some((v, prov)) => Ok(MemValue::Integer(*it, IntegerValue::with_prov(v, prov))),
                    None => Ok(MemValue::Unspecified(ty.clone())),
                }
            }
            Ctype::Pointer(_, pointee) => match self.bytes_to_int(bytes, false) {
                Some((v, prov)) => {
                    let addr = v as u64;
                    if let Some(name) = self.functions_by_addr.get(&addr) {
                        return Ok(MemValue::Pointer(
                            (**pointee).clone(),
                            PointerValue {
                                prov: Provenance::Empty,
                                addr,
                                cap: None,
                                function: Some(name.clone()),
                            },
                        ));
                    }
                    let cap = if self.config.cheri {
                        prov.alloc_id()
                            .and_then(|id| self.allocation(id))
                            .map(|a| CapMeta {
                                base: a.base,
                                length: a.size,
                                tag: true,
                            })
                    } else {
                        None
                    };
                    Ok(MemValue::Pointer(
                        (**pointee).clone(),
                        PointerValue {
                            prov,
                            addr,
                            cap,
                            function: None,
                        },
                    ))
                }
                None => Ok(MemValue::Unspecified(ty.clone())),
            },
            Ctype::Array(elem, Some(n)) => {
                let esize = self.size_of(elem)? as usize;
                let mut items = Vec::with_capacity(*n as usize);
                for i in 0..*n as usize {
                    items.push(self.deserialize(elem, &bytes[i * esize..(i + 1) * esize])?);
                }
                Ok(MemValue::Array(items))
            }
            Ctype::Struct(tag) => {
                let lay = layout::layout_of_tag(*tag, &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?;
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct"))?
                    .clone();
                let mut members = Vec::with_capacity(def.members.len());
                for (member, (_, offset, msize)) in def.members.iter().zip(lay.members.iter()) {
                    let slice = &bytes[*offset as usize..(*offset + *msize) as usize];
                    members.push((member.name.clone(), self.deserialize(&member.ty, slice)?));
                }
                Ok(MemValue::Struct(*tag, members))
            }
            Ctype::Union(tag) => {
                let def = self
                    .tags
                    .get(*tag)
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete union"))?
                    .clone();
                let first = def
                    .members
                    .first()
                    .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "union with no members"))?;
                let fsize = self.size_of(&first.ty)? as usize;
                let inner = self.deserialize(&first.ty, &bytes[..fsize])?;
                Ok(MemValue::Union(*tag, first.name.clone(), Box::new(inner)))
            }
            Ctype::Floating => match self.bytes_to_int(bytes, true) {
                Some((v, prov)) => Ok(MemValue::Integer(
                    IntegerType::LongLong,
                    IntegerValue::with_prov(v, prov),
                )),
                None => Ok(MemValue::Unspecified(ty.clone())),
            },
            _ => Err(MemError::new(
                UbKind::InvalidLvalue,
                format!("cannot load at type {ty}"),
            )),
        }
    }

    // ----- load / store ------------------------------------------------------

    /// Store `value` at type `ty` through `ptr` (the Core `store` action).
    pub fn store(&mut self, ty: &Ctype, ptr: &PointerValue, value: &MemValue) -> MResult<()> {
        let len = self.size_of(ty)?;
        let id = match self.check_access(ptr, len, true) {
            Ok(id) => id,
            Err(e)
                if e.ub() == Some(UbKind::OutOfBoundsAccess)
                    && self.config.provenance_optimising_stores
                    && self.is_one_past_store(ptr, len) =>
            {
                // GCC-like provenance reasoning: the store is assumed not to
                // alias any other object, so it lands in a shadow visible only
                // through this provenance.
                let bytes = self.serialize(ty, value)?;
                self.shadow.insert(ptr.addr, bytes);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        self.check_effective_type(id, ty, true)?;
        let bytes = self.serialize(ty, value)?;
        let padding_offsets = self.padding_offsets(ty)?;
        let alloc = &mut self.allocations[id as usize];
        let start = (ptr.addr - alloc.base) as usize;
        for (i, b) in bytes.into_iter().enumerate() {
            let is_padding = padding_offsets.contains(&(i as u64));
            let dst = &mut alloc.bytes[start + i];
            if is_padding {
                match self.config.padding {
                    PaddingSemantics::Preserved => {}
                    PaddingSemantics::MemberStoreZeroes => *dst = AbsByte::zero(),
                    PaddingSemantics::MemberStoreClobbers => *dst = AbsByte::unspec(),
                }
            } else {
                *dst = b;
            }
        }
        Ok(())
    }

    fn is_one_past_store(&self, ptr: &PointerValue, len: u64) -> bool {
        match ptr.prov.alloc_id().and_then(|id| self.allocation(id)) {
            Some(alloc) => {
                ptr.addr == alloc.end() && self.find_alloc_by_addr(ptr.addr).is_some() && len > 0
            }
            None => false,
        }
    }

    fn padding_offsets(&self, ty: &Ctype) -> MResult<Vec<u64>> {
        match ty {
            Ctype::Struct(tag) => {
                let lay = layout::layout_of_tag(*tag, &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?;
                let mut out = Vec::new();
                for p in &lay.padding {
                    for off in p.offset..p.offset + p.len {
                        out.push(off);
                    }
                }
                Ok(out)
            }
            _ => Ok(Vec::new()),
        }
    }

    /// Load a value at type `ty` through `ptr` (the Core `load` action).
    pub fn load(&mut self, ty: &Ctype, ptr: &PointerValue) -> MResult<MemValue> {
        let len = self.size_of(ty)?;
        // Shadowed GCC-like loads: a load through a provenance whose store was
        // redirected reads the shadow.
        if self.config.provenance_optimising_stores && self.is_one_past_store(ptr, len) {
            if let Some(bytes) = self.shadow.get(&ptr.addr).cloned() {
                return self.deserialize(ty, &bytes);
            }
        }
        let id = self.check_access(ptr, len, false)?;
        self.check_effective_type(id, ty, false)?;
        let alloc = &self.allocations[id as usize];
        let start = (ptr.addr - alloc.base) as usize;
        let bytes: Vec<AbsByte> = alloc.bytes[start..start + len as usize].to_vec();
        let value = self.deserialize(ty, &bytes)?;
        if value.is_unspecified()
            && ty.is_scalar()
            && !ty.is_character()
            && self.config.uninit == UninitSemantics::Undefined
        {
            return Err(MemError::new(
                UbKind::IndeterminateValueUse,
                "read of an uninitialised (indeterminate) value",
            ));
        }
        Ok(value)
    }

    // ----- pointer operations (ptrops) ---------------------------------------

    /// Pointer equality (`==`); inequality is the negation.
    pub fn ptr_eq(&self, a: &PointerValue, b: &PointerValue) -> MResult<bool> {
        if a.function.is_some() || b.function.is_some() {
            return Ok(a.function == b.function);
        }
        let addr_eq = a.addr == b.addr;
        if (self.config.equality_uses_provenance || self.config.cheri) && addr_eq {
            // GCC observably treats pointers with the same representation but
            // different provenances as unequal when the information is
            // statically available (Q2); CHERI's exact-equals compares the
            // metadata too.
            return Ok(a.prov == b.prov);
        }
        Ok(addr_eq)
    }

    /// Pointer relational comparison (`<`, `>`, `<=`, `>=`) returning the
    /// result of `a < b`, `a <= b`, etc. encoded by the caller; here we just
    /// provide the underlying address comparison with the configured
    /// cross-object policy.
    pub fn ptr_rel(&self, a: &PointerValue, b: &PointerValue) -> MResult<std::cmp::Ordering> {
        let same_object = match (a.prov.alloc_id(), b.prov.alloc_id()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        if !same_object && self.config.relational == RelationalSemantics::Undefined {
            return Err(MemError::new(
                UbKind::RelationalCompareDifferentObjects,
                "relational comparison of pointers to different objects",
            ));
        }
        Ok(a.addr.cmp(&b.addr))
    }

    /// Pointer subtraction, in elements of size `elem_size`.
    pub fn ptr_diff(
        &self,
        a: &PointerValue,
        b: &PointerValue,
        elem_size: u64,
    ) -> MResult<IntegerValue> {
        let same_object = match (a.prov.alloc_id(), b.prov.alloc_id()) {
            (Some(x), Some(y)) => x == y,
            _ => !self.config.provenance_checking,
        };
        if !same_object && self.config.provenance_checking {
            return Err(MemError::new(
                UbKind::PointerSubtractionDifferentObjects,
                "subtraction of pointers into different objects",
            ));
        }
        let diff = (a.addr as i128 - b.addr as i128) / elem_size.max(1) as i128;
        // "Subtraction of two values produces a pure integer (to use as an
        // offset)" (§5.9).
        Ok(IntegerValue::pure(diff))
    }

    /// Cast a pointer value to an integer (`intFromPtr`): the integer carries
    /// the pointer's provenance.
    pub fn int_from_ptr(&self, p: &PointerValue) -> IntegerValue {
        IntegerValue::with_prov(p.addr as i128, p.prov)
    }

    /// Cast an integer value to a pointer (`ptrFromInt`), following the
    /// configured provenance semantics (Q5).
    pub fn ptr_from_int(&self, iv: &IntegerValue) -> PointerValue {
        if iv.value == 0 {
            return PointerValue::null();
        }
        let addr = iv.value as u64;
        if let Some(name) = self.functions_by_addr.get(&addr) {
            return PointerValue {
                prov: Provenance::Empty,
                addr,
                cap: None,
                function: Some(name.clone()),
            };
        }
        let prov = match self.config.int_to_ptr {
            IntToPtrSemantics::TrackedProvenance => iv.prov,
            IntToPtrSemantics::Wildcard => Provenance::Wildcard,
            IntToPtrSemantics::Forbidden => Provenance::Empty,
        };
        let cap = if self.config.cheri {
            prov.alloc_id()
                .and_then(|id| self.allocation(id))
                .map(|a| CapMeta {
                    base: a.base,
                    length: a.size,
                    tag: true,
                })
        } else {
            None
        };
        PointerValue {
            prov,
            addr,
            cap,
            function: None,
        }
    }

    /// Whether a pointer may be dereferenced at the given type without
    /// undefined behaviour (`ptrValidForDeref`).
    pub fn valid_for_deref(&self, ptr: &PointerValue, ty: &Ctype) -> bool {
        match self.size_of(ty) {
            Ok(len) => self.check_access(ptr, len, false).is_ok(),
            Err(_) => false,
        }
    }

    /// Pointer arithmetic: advance `ptr` by `index` elements of type
    /// `elem_ty` (the Core `array_shift`).
    pub fn array_shift(
        &self,
        ptr: &PointerValue,
        elem_ty: &Ctype,
        index: i128,
    ) -> MResult<PointerValue> {
        let esize = self.size_of(elem_ty)? as i128;
        let new_addr = (ptr.addr as i128 + index * esize) as u64;
        if !self.config.allow_oob_pointer_arith {
            if let Some(alloc) = ptr.prov.alloc_id().and_then(|id| self.allocation(id)) {
                if new_addr < alloc.base || new_addr > alloc.end() {
                    return Err(MemError::new(
                        UbKind::OutOfBoundsPointerArithmetic,
                        "pointer arithmetic leaves the object (and its one-past point)",
                    ));
                }
            }
        }
        Ok(ptr.with_addr(new_addr))
    }

    /// Pointer to a struct/union member (the Core `member_shift`).
    pub fn member_shift(
        &self,
        ptr: &PointerValue,
        tag: TagId,
        member: &Ident,
    ) -> MResult<PointerValue> {
        let def = self
            .tags
            .get(tag)
            .ok_or_else(|| MemError::new(UbKind::InvalidLvalue, "incomplete struct/union"))?;
        let offset = match def.kind {
            layout::TagKind::Union => 0,
            layout::TagKind::Struct => {
                layout::offset_of(tag, member.as_str(), &self.env, &self.tags)
                    .map_err(|e| MemError::new(UbKind::InvalidLvalue, e.to_string()))?
            }
        };
        Ok(ptr.with_addr(ptr.addr + offset))
    }

    // ----- byte-level library helpers ----------------------------------------

    /// `memcpy(dst, src, n)`: copy representation bytes, preserving the
    /// provenance they carry (this is what makes bytewise pointer copies work,
    /// Q13).
    pub fn copy_bytes(&mut self, dst: &PointerValue, src: &PointerValue, n: u64) -> MResult<()> {
        if n == 0 {
            return Ok(());
        }
        let src_id = self.check_access(src, n, false)?;
        let dst_id = self.check_access(dst, n, true)?;
        let src_alloc = &self.allocations[src_id as usize];
        let start = (src.addr - src_alloc.base) as usize;
        let bytes: Vec<AbsByte> = src_alloc.bytes[start..start + n as usize].to_vec();
        let dst_alloc = &mut self.allocations[dst_id as usize];
        let dstart = (dst.addr - dst_alloc.base) as usize;
        dst_alloc.bytes[dstart..dstart + n as usize].copy_from_slice(&bytes);
        Ok(())
    }

    /// `memcmp(a, b, n)`: compare representation bytes. Unspecified bytes
    /// compare as zero under the liberal configurations and are an error under
    /// strict uninitialised-read semantics.
    pub fn compare_bytes(&self, a: &PointerValue, b: &PointerValue, n: u64) -> MResult<i32> {
        if n == 0 {
            return Ok(0);
        }
        let a_id = self.check_access(a, n, false)?;
        let b_id = self.check_access(b, n, false)?;
        let aa = &self.allocations[a_id as usize];
        let ba = &self.allocations[b_id as usize];
        let astart = (a.addr - aa.base) as usize;
        let bstart = (b.addr - ba.base) as usize;
        for i in 0..n as usize {
            let x = aa.bytes[astart + i].value;
            let y = ba.bytes[bstart + i].value;
            let (x, y) = match (x, y, self.config.uninit) {
                (Some(x), Some(y), _) => (x, y),
                (_, _, UninitSemantics::Undefined) => {
                    return Err(MemError::new(
                        UbKind::IndeterminateValueUse,
                        "memcmp over unspecified bytes",
                    ))
                }
                (x, y, _) => (x.unwrap_or(0), y.unwrap_or(0)),
            };
            if x != y {
                return Ok(if x < y { -1 } else { 1 });
            }
        }
        Ok(0)
    }

    /// `memset(dst, byte, n)`.
    pub fn set_bytes(&mut self, dst: &PointerValue, byte: u8, n: u64) -> MResult<()> {
        if n == 0 {
            return Ok(());
        }
        let id = self.check_access(dst, n, true)?;
        let alloc = &mut self.allocations[id as usize];
        let start = (dst.addr - alloc.base) as usize;
        for b in &mut alloc.bytes[start..start + n as usize] {
            *b = AbsByte {
                prov: Provenance::Empty,
                value: Some(byte),
            };
        }
        Ok(())
    }

    /// Read a NUL-terminated C string starting at `ptr` (for `printf`,
    /// `strlen`, `strcmp`).
    pub fn read_c_string(&self, ptr: &PointerValue) -> MResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut addr = ptr.addr;
        loop {
            let p = ptr.with_addr(addr);
            let id = self.check_access(&p, 1, false)?;
            let alloc = &self.allocations[id as usize];
            let b = alloc.bytes[(addr - alloc.base) as usize]
                .value
                .ok_or_else(|| {
                    MemError::new(UbKind::IndeterminateValueUse, "unspecified byte in string")
                })?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            addr += 1;
            if out.len() > 1_000_000 {
                return Err(MemError::new(
                    UbKind::OutOfBoundsAccess,
                    "unterminated string",
                ));
            }
        }
    }
}

fn describe(alloc: &Allocation) -> String {
    match &alloc.name {
        Some(name) => format!("allocation @{} ({name})", alloc.id),
        None => format!("allocation @{}", alloc.id),
    }
}

/// Whether an access at `access` to an object whose effective type is `decl`
/// is permitted by 6.5p7 (restricted to the supported fragment: identical
/// types, signed/unsigned pairs of the same width, and array-element access).
fn types_alias_compatible(decl: &Ctype, access: &Ctype) -> bool {
    if decl == access {
        return true;
    }
    match (decl, access) {
        (Ctype::Array(elem, _), a) => types_alias_compatible(elem, a),
        (Ctype::Integer(a), Ctype::Integer(b)) => a.to_unsigned() == b.to_unsigned(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ctype::Member;
    use cerberus_ast::layout::TagKind;

    fn int_ty() -> Ctype {
        Ctype::integer(IntegerType::Int)
    }

    fn new_state(config: ModelConfig) -> MemState {
        MemState::new(config, ImplEnv::lp64(), TagRegistry::new())
    }

    #[test]
    fn store_load_round_trip() {
        let mut mem = new_state(ModelConfig::de_facto());
        let p = mem
            .create(&int_ty(), AllocKind::Automatic, Some("x"))
            .unwrap();
        mem.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, -7))
            .unwrap();
        assert_eq!(mem.load(&int_ty(), &p).unwrap().as_int(), Some(-7));
    }

    #[test]
    fn uninitialised_reads_follow_config() {
        let mut liberal = new_state(ModelConfig::de_facto());
        let p = liberal
            .create(&int_ty(), AllocKind::Automatic, None)
            .unwrap();
        assert!(liberal.load(&int_ty(), &p).unwrap().is_unspecified());

        let mut strict = new_state(ModelConfig::strict_iso());
        let q = strict
            .create(&int_ty(), AllocKind::Automatic, None)
            .unwrap();
        let err = strict.load(&int_ty(), &q).unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::IndeterminateValueUse));
    }

    #[test]
    fn static_objects_are_zero_initialised() {
        let mut mem = new_state(ModelConfig::de_facto());
        let p = mem.create(&int_ty(), AllocKind::Static, Some("g")).unwrap();
        assert_eq!(mem.load(&int_ty(), &p).unwrap().as_int(), Some(0));
    }

    #[test]
    fn provenance_checked_oob_store_is_ub() {
        // The DR260 example: one-past-x aliases y; under the candidate de
        // facto model the store is undefined behaviour.
        let mut mem = new_state(ModelConfig::de_facto());
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let _y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        let err = mem
            .store(&int_ty(), &one_past, &MemValue::int(IntegerType::Int, 11))
            .unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::OutOfBoundsAccess));
    }

    #[test]
    fn concrete_model_lets_the_oob_store_hit_the_neighbour() {
        let mut mem = new_state(ModelConfig::concrete());
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        mem.store(&int_ty(), &y, &MemValue::int(IntegerType::Int, 2))
            .unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        assert_eq!(one_past.addr, y.addr);
        mem.store(&int_ty(), &one_past, &MemValue::int(IntegerType::Int, 11))
            .unwrap();
        assert_eq!(mem.load(&int_ty(), &y).unwrap().as_int(), Some(11));
    }

    #[test]
    fn gcc_like_redirects_the_oob_store_to_a_shadow() {
        let mut mem = new_state(ModelConfig::gcc_like());
        let x = mem.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let y = mem.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        mem.store(&int_ty(), &y, &MemValue::int(IntegerType::Int, 2))
            .unwrap();
        let one_past = mem.array_shift(&x, &int_ty(), 1).unwrap();
        mem.store(&int_ty(), &one_past, &MemValue::int(IntegerType::Int, 11))
            .unwrap();
        // y keeps its old value (the compiler assumed no aliasing) …
        assert_eq!(mem.load(&int_ty(), &y).unwrap().as_int(), Some(2));
        // … while a load through p sees the stored value.
        assert_eq!(mem.load(&int_ty(), &one_past).unwrap().as_int(), Some(11));
    }

    #[test]
    fn pointer_equality_may_use_provenance() {
        let mut plain = new_state(ModelConfig::de_facto());
        let x = plain
            .create(&int_ty(), AllocKind::Static, Some("x"))
            .unwrap();
        let y = plain
            .create(&int_ty(), AllocKind::Static, Some("y"))
            .unwrap();
        let one_past = plain.array_shift(&x, &int_ty(), 1).unwrap();
        assert!(plain.ptr_eq(&one_past, &y).unwrap());

        let mut gcc = new_state(ModelConfig::gcc_like());
        let x = gcc.create(&int_ty(), AllocKind::Static, Some("x")).unwrap();
        let y = gcc.create(&int_ty(), AllocKind::Static, Some("y")).unwrap();
        let one_past = gcc.array_shift(&x, &int_ty(), 1).unwrap();
        assert!(!gcc.ptr_eq(&one_past, &y).unwrap());
    }

    #[test]
    fn relational_comparison_across_objects_follows_config() {
        let mut df = new_state(ModelConfig::de_facto());
        let a = df.create(&int_ty(), AllocKind::Static, None).unwrap();
        let b = df.create(&int_ty(), AllocKind::Static, None).unwrap();
        assert_eq!(df.ptr_rel(&a, &b).unwrap(), std::cmp::Ordering::Less);

        let mut iso = new_state(ModelConfig::strict_iso());
        let a = iso.create(&int_ty(), AllocKind::Static, None).unwrap();
        let b = iso.create(&int_ty(), AllocKind::Static, None).unwrap();
        assert_eq!(
            iso.ptr_rel(&a, &b).unwrap_err().ub(),
            Some(UbKind::RelationalCompareDifferentObjects)
        );
    }

    #[test]
    fn oob_pointer_construction_follows_config() {
        let mut df = new_state(ModelConfig::de_facto());
        let a = df
            .create(&Ctype::array(int_ty(), 4), AllocKind::Automatic, None)
            .unwrap();
        // Transiently out of bounds (Q31): allowed under the de facto model …
        assert!(df.array_shift(&a, &int_ty(), 10).is_ok());
        // … but dereferencing there is undefined behaviour.
        let oob = df.array_shift(&a, &int_ty(), 10).unwrap();
        assert!(df.load(&int_ty(), &oob).is_err());

        let mut iso = new_state(ModelConfig::strict_iso());
        let a = iso
            .create(&Ctype::array(int_ty(), 4), AllocKind::Automatic, None)
            .unwrap();
        assert_eq!(
            iso.array_shift(&a, &int_ty(), 10).unwrap_err().ub(),
            Some(UbKind::OutOfBoundsPointerArithmetic)
        );
        // One-past is always permitted.
        assert!(iso.array_shift(&a, &int_ty(), 4).is_ok());
    }

    #[test]
    fn int_ptr_round_trips_preserve_provenance_when_tracked() {
        let mut mem = new_state(ModelConfig::de_facto());
        let p = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        mem.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 5))
            .unwrap();
        let i = mem.int_from_ptr(&p);
        assert_eq!(i.prov, p.prov);
        let q = mem.ptr_from_int(&i);
        assert_eq!(mem.load(&int_ty(), &q).unwrap().as_int(), Some(5));

        // Under the block model the round trip loses the ability to access.
        let mut blk = new_state(ModelConfig::block());
        let p = blk.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        blk.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 5))
            .unwrap();
        let i = blk.int_from_ptr(&p);
        let q = blk.ptr_from_int(&i);
        assert_eq!(
            blk.load(&int_ty(), &q).unwrap_err().ub(),
            Some(UbKind::AccessWithoutProvenance)
        );
    }

    #[test]
    fn bytewise_pointer_copies_keep_their_provenance() {
        // Q13: copying a pointer via its representation bytes must yield a
        // usable pointer under the candidate model.
        let mut mem = new_state(ModelConfig::de_facto());
        let target = mem
            .create(&int_ty(), AllocKind::Automatic, Some("t"))
            .unwrap();
        mem.store(&int_ty(), &target, &MemValue::int(IntegerType::Int, 99))
            .unwrap();
        let pty = Ctype::pointer(int_ty());
        let p1 = mem.create(&pty, AllocKind::Automatic, Some("p1")).unwrap();
        let p2 = mem.create(&pty, AllocKind::Automatic, Some("p2")).unwrap();
        mem.store(&pty, &p1, &MemValue::Pointer(int_ty(), target.clone()))
            .unwrap();
        mem.copy_bytes(&p2, &p1, 8).unwrap();
        let copied = mem.load(&pty, &p2).unwrap();
        let copied_ptr = copied.as_pointer().expect("a pointer");
        assert_eq!(copied_ptr.prov, target.prov);
        assert_eq!(mem.load(&int_ty(), copied_ptr).unwrap().as_int(), Some(99));
    }

    #[test]
    fn lifetime_end_makes_accesses_ub() {
        let mut mem = new_state(ModelConfig::de_facto());
        let p = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        mem.kill(&p, false).unwrap();
        assert_eq!(
            mem.load(&int_ty(), &p).unwrap_err().ub(),
            Some(UbKind::AccessOutsideLifetime)
        );
    }

    #[test]
    fn free_errors() {
        let mut mem = new_state(ModelConfig::de_facto());
        let p = mem.alloc(16, 16).unwrap();
        mem.kill(&p, true).unwrap();
        assert_eq!(
            mem.kill(&p, true).unwrap_err().ub(),
            Some(UbKind::InvalidFree)
        );
        let q = mem.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        assert_eq!(
            mem.kill(&q, true).unwrap_err().ub(),
            Some(UbKind::InvalidFree)
        );
        // free(NULL) is fine.
        mem.kill(&PointerValue::null(), true).unwrap();
    }

    #[test]
    fn string_literals_are_read_only() {
        let mut mem = new_state(ModelConfig::de_facto());
        let s = mem.create_string_literal(b"hi").unwrap();
        assert_eq!(mem.read_c_string(&s).unwrap(), b"hi".to_vec());
        let err = mem
            .store(
                &Ctype::integer(IntegerType::Char),
                &s,
                &MemValue::int(IntegerType::Char, 65),
            )
            .unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::StringLiteralModification));
    }

    #[test]
    fn struct_store_respects_padding_config() {
        let mut tags = TagRegistry::new();
        let tag = tags.define(
            TagKind::Struct,
            &Ident::new("s"),
            vec![
                Member {
                    name: Ident::new("c"),
                    ty: Ctype::integer(IntegerType::Char),
                },
                Member {
                    name: Ident::new("i"),
                    ty: int_ty(),
                },
            ],
        );
        let sty = Ctype::Struct(tag);
        let value = MemValue::Struct(
            tag,
            vec![
                (Ident::new("c"), MemValue::int(IntegerType::Char, 1)),
                (Ident::new("i"), MemValue::int(IntegerType::Int, 2)),
            ],
        );

        // Zeroing configuration: padding bytes become zero.
        let mut cfg = ModelConfig::de_facto();
        cfg.padding = PaddingSemantics::MemberStoreZeroes;
        let mut mem = MemState::new(cfg, ImplEnv::lp64(), tags.clone());
        let p = mem.create(&sty, AllocKind::Automatic, None).unwrap();
        mem.store(&sty, &p, &value).unwrap();
        let char_ty = Ctype::integer(IntegerType::Char);
        let pad = mem.array_shift(&p, &char_ty, 1).unwrap();
        assert_eq!(mem.load(&char_ty, &pad).unwrap().as_int(), Some(0));

        // Clobbering configuration: padding bytes become unspecified.
        let mut cfg = ModelConfig::de_facto();
        cfg.padding = PaddingSemantics::MemberStoreClobbers;
        let mut mem = MemState::new(cfg, ImplEnv::lp64(), tags);
        let p = mem.create(&sty, AllocKind::Automatic, None).unwrap();
        mem.set_bytes(&p, 0xAA, 8).unwrap();
        mem.store(&sty, &p, &value).unwrap();
        let pad = mem.array_shift(&p, &char_ty, 1).unwrap();
        assert!(mem.load(&char_ty, &pad).unwrap().is_unspecified());
    }

    #[test]
    fn effective_types_reject_mismatched_access_when_enforced() {
        let mut iso = new_state(ModelConfig::strict_iso());
        let p = iso.create(&int_ty(), AllocKind::Automatic, None).unwrap();
        iso.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 1))
            .unwrap();
        // Access at an incompatible non-character type: UB under strict ISO.
        let short_ty = Ctype::integer(IntegerType::Short);
        assert_eq!(
            iso.load(&short_ty, &p).unwrap_err().ub(),
            Some(UbKind::EffectiveTypeViolation)
        );
        // Character-typed access is always permitted.
        let char_ty = Ctype::integer(IntegerType::UChar);
        assert!(iso.load(&char_ty, &p).is_ok());
        // Unsigned variant of the same width is permitted.
        let uint_ty = Ctype::integer(IntegerType::UInt);
        assert!(iso.load(&uint_ty, &p).is_ok());
    }

    #[test]
    fn char_array_reuse_is_allowed_when_effective_types_are_off() {
        // Q75: using a char array to hold other types — permitted by the
        // candidate de facto model, rejected by a strict ISO reading (where
        // the declared type governs).
        let char_arr = Ctype::array(Ctype::integer(IntegerType::UChar), 8);
        let mut df = new_state(ModelConfig::de_facto());
        let p = df.create(&char_arr, AllocKind::Automatic, None).unwrap();
        df.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 3))
            .unwrap();
        assert_eq!(df.load(&int_ty(), &p).unwrap().as_int(), Some(3));

        let mut iso = new_state(ModelConfig::strict_iso());
        let p = iso.create(&char_arr, AllocKind::Automatic, None).unwrap();
        assert_eq!(
            iso.store(&int_ty(), &p, &MemValue::int(IntegerType::Int, 3))
                .unwrap_err()
                .ub(),
            Some(UbKind::EffectiveTypeViolation)
        );
    }

    #[test]
    fn cheri_capability_bounds_are_enforced() {
        let mut mem = new_state(ModelConfig::cheri());
        let arr = Ctype::array(int_ty(), 2);
        let p = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        assert!(p.cap.is_some());
        let oob = mem.array_shift(&p, &int_ty(), 5).unwrap();
        assert_eq!(
            mem.load(&int_ty(), &oob).unwrap_err().ub(),
            Some(UbKind::OutOfBoundsAccess)
        );
    }

    #[test]
    fn null_dereference_is_detected() {
        let mut mem = new_state(ModelConfig::de_facto());
        let err = mem.load(&int_ty(), &PointerValue::null()).unwrap_err();
        assert_eq!(err.ub(), Some(UbKind::NullPointerDeref));
    }

    #[test]
    fn memcmp_and_memset_work() {
        let mut mem = new_state(ModelConfig::de_facto());
        let arr = Ctype::array(Ctype::integer(IntegerType::Char), 4);
        let a = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        let b = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        mem.set_bytes(&a, 7, 4).unwrap();
        mem.set_bytes(&b, 7, 4).unwrap();
        assert_eq!(mem.compare_bytes(&a, &b, 4).unwrap(), 0);
        mem.set_bytes(&b, 9, 4).unwrap();
        assert_eq!(mem.compare_bytes(&a, &b, 4).unwrap(), -1);
    }

    #[test]
    fn function_pointers_round_trip_through_memory() {
        let mut mem = new_state(ModelConfig::de_facto());
        let f = mem.register_function(&Ident::new("callback"));
        let fn_ptr_ty = Ctype::pointer(Ctype::Function(Box::new(int_ty()), vec![], false));
        let slot = mem.create(&fn_ptr_ty, AllocKind::Automatic, None).unwrap();
        mem.store(
            &fn_ptr_ty,
            &slot,
            &MemValue::Pointer(Ctype::Void, f.clone()),
        )
        .unwrap();
        let loaded = mem.load(&fn_ptr_ty, &slot).unwrap();
        assert_eq!(
            loaded.as_pointer().unwrap().function,
            Some(Ident::new("callback"))
        );
    }

    #[test]
    fn ptr_diff_within_and_across_objects() {
        let mut mem = new_state(ModelConfig::de_facto());
        let arr = Ctype::array(int_ty(), 8);
        let a = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        let a3 = mem.array_shift(&a, &int_ty(), 3).unwrap();
        assert_eq!(mem.ptr_diff(&a3, &a, 4).unwrap().value, 3);
        let other = mem.create(&arr, AllocKind::Automatic, None).unwrap();
        assert_eq!(
            mem.ptr_diff(&other, &a, 4).unwrap_err().ub(),
            Some(UbKind::PointerSubtractionDifferentObjects)
        );
    }
}
