//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this shim provides the
//! (small) `rand` API surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool` — backed by a deterministic SplitMix64 generator. Seeded
//! streams are stable across runs and platforms, which is all the generators
//! and drivers in this repository rely on (they never ask for cryptographic
//! or statistical quality).

use core::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A type constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range from which a uniform sample can be drawn (the shim analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform sample. Panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128) - (start as i128) + 1;
                ((start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa are plenty for the probabilities used here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    /// Deterministic, seedable, and fast — not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u64 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let s: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_the_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
