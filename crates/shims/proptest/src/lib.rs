//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with an optional `#![proptest_config(...)]`
//! inner attribute), `prop_assert!`/`prop_assert_eq!`, `any::<T>()` for the
//! primitive integer types, integer-range strategies, and string strategies
//! written as a single character-class regex such as `"[ -~\n\t]{0,200}"`.
//!
//! Sampling is deterministic: each test derives its generator seed from the
//! test's name, so failures reproduce without shrinking (this shim does not
//! shrink — a failing case is reported by the ordinary assert message).

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic test generator.
pub mod test_runner {
    /// SplitMix64, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform sample from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies written as a single character-class regex:
/// `"[<class>]{min,max}"`, where the class supports literal characters,
/// `a-b` ranges and the escapes `\n`, `\t`, `\r` and `\\`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, counts) = rest.split_at(close);
    let counts = counts
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        // `a-b` range (a trailing `-` is a literal).
        if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some_and(|c| c != ']') {
            chars.next();
            let hi = chars.next()?;
            let (lo, hi) = (c as u32, hi as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert within a property (alias of `assert!` — this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test item macro: each `fn name(arg in strategy, ...) { .. }`
/// becomes an ordinary `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _ in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn char_class_patterns_parse() {
        let (alphabet, min, max) = super::parse_char_class_pattern("[ -~\\n\\t]{0,200}").unwrap();
        assert_eq!((min, max), (0, 200));
        assert!(alphabet.contains(&' '));
        assert!(alphabet.contains(&'~'));
        assert!(alphabet.contains(&'\n'));
        assert!(alphabet.contains(&'\t'));
        assert!(!alphabet.contains(&'\x01'));
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut rng = TestRng::deterministic("string_strategy");
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn range_strategies_stay_in_range() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..100 {
            let v = Strategy::sample(&(0u64..4), &mut rng);
            assert!(v < 4);
            let w = Strategy::sample(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_binds_multiple_arguments(a in any::<u32>(), b in 0u64..10) {
            prop_assert!(b < 10);
            prop_assert_eq!(a as u64 + b, b + a as u64);
        }
    }
}
