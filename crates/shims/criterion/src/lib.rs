//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter`) with plain wall-clock timing: each benchmark runs a small
//! warm-up followed by `sample_size` timed iterations and prints the mean
//! time per iteration. No statistics, no HTML reports — just enough to keep
//! `cargo bench` runnable and comparable run-over-run without network access.
//!
//! Setting the `BENCH_JSON` environment variable to a file path additionally
//! records every measurement as a machine-readable JSON checkpoint: an array
//! of `{"group", "bench", "mean_ns", "samples"}` objects, rewritten after
//! each benchmark so a timed-out run still leaves a valid partial file.
//! Benches can also record non-timing observables (counters, hit rates)
//! into the same checkpoint with [`record_value`]; those rows carry
//! `"samples": 0` to mark the `mean_ns` field as a plain value rather than
//! a measured duration.

use std::time::Instant;

/// Record a non-timing observable (a counter or rate gathered while the
/// benches ran) into the `BENCH_JSON` checkpoint alongside the timing rows.
/// The value lands in the `mean_ns` field with `samples` set to 0 — the
/// schema stays uniform and consumers can distinguish counters by the zero
/// sample count. Does nothing unless `BENCH_JSON` is set.
pub fn record_value(group: &str, name: &str, value: u128) {
    checkpoint::record(Some(group), name, value, 0);
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(None, name, 10, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(Some(&self.group), name, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        nanos: 0,
    };
    f(&mut bencher);
    let mean = bencher.nanos / bencher.iterations.max(1) as u128;
    println!("  {name:<40} {mean:>12} ns/iter ({sample_size} samples)");
    checkpoint::record(group, name, mean, sample_size);
}

/// The `BENCH_JSON` machine-readable checkpoint.
mod checkpoint {
    use std::sync::Mutex;

    struct Record {
        group: Option<String>,
        bench: String,
        mean_ns: u128,
        samples: usize,
    }

    static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

    /// Append one measurement and rewrite the checkpoint file, if
    /// `BENCH_JSON` names one. Rewriting per record keeps the file a valid
    /// JSON array even when the bench run is killed by a CI timeout.
    pub fn record(group: Option<&str>, bench: &str, mean_ns: u128, samples: usize) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let mut records = RECORDS.lock().unwrap();
        records.push(Record {
            group: group.map(str::to_owned),
            bench: bench.to_owned(),
            mean_ns,
            samples,
        });
        let body: Vec<String> = records
            .iter()
            .map(|r| {
                let group = match &r.group {
                    Some(g) => format!("\"{}\"", escape(g)),
                    None => "null".to_owned(),
                };
                format!(
                    "  {{\"group\": {group}, \"bench\": \"{}\", \"mean_ns\": {}, \"samples\": {}}}",
                    escape(&r.bench),
                    r.mean_ns,
                    r.samples
                )
            })
            .collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write BENCH_JSON checkpoint {path}: {e}");
        }
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
}

/// Passed to the closure of `bench_function`; `iter` times the routine.
pub struct Bencher {
    iterations: usize,
    nanos: u128,
}

impl Bencher {
    /// Time `routine`, running it once as warm-up and then `sample_size`
    /// measured times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
    }
}

/// An identity function the optimiser is told not to see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn checkpoint_files_are_valid_json_arrays() {
        let path = std::env::temp_dir().join("criterion-shim-checkpoint-test.json");
        std::env::set_var("BENCH_JSON", &path);
        super::checkpoint::record(Some("group \"a\""), "bench\none", 1234, 10);
        super::checkpoint::record(None, "standalone", 56, 3);
        super::record_value("counters", "solver_memo_hits", 17);
        std::env::remove_var("BENCH_JSON");
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.ends_with("]\n"), "{json}");
        assert!(json.contains("\"group\": \"group \\\"a\\\"\""), "{json}");
        assert!(json.contains("\"bench\": \"bench\\none\""), "{json}");
        assert!(json.contains("\"mean_ns\": 1234"), "{json}");
        assert!(json.contains("\"group\": null"), "{json}");
        assert!(
            json.contains("\"bench\": \"solver_memo_hits\", \"mean_ns\": 17, \"samples\": 0"),
            "{json}"
        );
    }
}
