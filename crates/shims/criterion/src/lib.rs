//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter`) with plain wall-clock timing: each benchmark runs a small
//! warm-up followed by `sample_size` timed iterations and prints the mean
//! time per iteration. No statistics, no HTML reports — just enough to keep
//! `cargo bench` runnable and comparable run-over-run without network access.

use std::time::Instant;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(name, 10, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        nanos: 0,
    };
    f(&mut bencher);
    let mean = bencher.nanos / bencher.iterations.max(1) as u128;
    println!("  {name:<40} {mean:>12} ns/iter ({sample_size} samples)");
}

/// Passed to the closure of `bench_function`; `iter` times the routine.
pub struct Bencher {
    iterations: usize,
    nanos: u128,
}

impl Bencher {
    /// Time `routine`, running it once as warm-up and then `sample_size`
    /// measured times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
    }
}

/// An identity function the optimiser is told not to see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
