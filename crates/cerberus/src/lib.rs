//! Cerberus-rs: an executable semantics for a substantial fragment of C,
//! reproducing the architecture of "Into the Depths of C: Elaborating the De
//! Facto Standards" (PLDI 2016).
//!
//! The pipeline mirrors the paper's Fig. 1: C source is parsed by a
//! clean-slate parser into `Cabs`, desugared and type-annotated into `Ail`,
//! elaborated into the `Core` calculus, and executed by the Core operational
//! semantics linked against a pluggable **memory object model** (any
//! [`cerberus_memory::MemoryModel`]) — the candidate de facto provenance
//! model, a concrete model, a strict-ISO model, a CHERI capability model, or
//! tool-emulation profiles.
//!
//! The front end is exposed as a staged [`pipeline::Session`] producing
//! reusable artifacts (`Parsed → Desugared → Elaborated`) and memoising
//! elaboration per source; an [`pipeline::Elaborated`] program can be
//! executed any number of times under different models, and
//! [`differential::DifferentialRunner`] runs one artifact across a whole
//! model list **in parallel** (rows chunked over the available cores,
//! deterministically equal to the sequential path), returning the §3-style
//! outcome matrix. The named model list mixes both in-tree engines — the
//! concrete byte-representation engine and the symbolic provenance engine
//! (`cerberus_memory::symbolic`).
//!
//! # Quick start
//!
//! ```
//! use cerberus::{Config, Session};
//!
//! let outcome = Session::new(Config::default())
//!     .run_source("int main(void) { int x = 20; return x + 22; }")
//!     .unwrap();
//! assert_eq!(outcome.exit_value(), Some(42));
//! ```
//!
//! # Differential runs
//!
//! ```
//! use cerberus::{DifferentialRunner, Session};
//!
//! let program = Session::default()
//!     .elaborate("int main(void) { return 0; }")
//!     .unwrap();
//! let matrix = DifferentialRunner::all_named().run(&program);
//! assert!(matrix.all_agree());
//! ```

pub mod differential;
pub mod pipeline;
pub mod tvc;

pub use cerberus_ail as ail;
pub use cerberus_analysis as analysis;
pub use cerberus_ast as ast;
pub use cerberus_core as core_lang;
pub use cerberus_elab as elab;
pub use cerberus_exec as exec;
pub use cerberus_memory as memory;
pub use cerberus_parser as parser;

pub use differential::{
    panic_payload, AgreementClass, DifferentialRunner, ModelRun, OutcomeMatrix,
};
pub use pipeline::{
    run, run_with_model, CacheStats, Config, Desugared, Elaborated, Parsed, PipelineError,
    PipelineErrorKind, RunOutcome, Session,
};
