//! `tvc`: a prototype translation validator (§6 of the paper).
//!
//! The paper's tvc produces Coq proofs that the LLVM IR emitted by Clang's
//! front end for "extremely simple single-function C programs" has behaviours
//! included in those allowed by Cerberus. We reproduce the same shape at
//! executable scale: a toy three-address intermediate representation, a toy
//! front-end lowering for trivial single-function programs (straight-line
//! integer arithmetic and returns), an IR evaluator, and a behavioural
//! inclusion check against the Cerberus pipeline — per program, as a test
//! oracle rather than a proof object.

use std::collections::HashMap;

use cerberus_ail::ail::{AilExpr, AilExprKind, AilStmt, BinOp};
use cerberus_exec::driver::ExecResult;

use crate::pipeline::{PipelineError, Session};

/// A toy three-address-code instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = constant`.
    Const(String, i128),
    /// `dst = a op b`.
    Binary(String, MiniOp, String, String),
    /// `ret v`.
    Ret(String),
}

/// The operations of the mini IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiniOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// A lowered function: a list of instructions ending in `ret`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiniIr {
    /// The instructions.
    pub instrs: Vec<Instr>,
}

/// The verdict of validating one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvcVerdict {
    /// The IR behaviours are included in the Cerberus behaviours.
    Validated {
        /// The common return value.
        value: i128,
    },
    /// The program is outside the supported fragment of the validator.
    Unsupported(String),
    /// The behaviours disagree.
    Mismatch {
        /// What the IR computes.
        ir_value: i128,
        /// What Cerberus allows.
        cerberus_value: i128,
    },
}

/// Errors of the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum TvcError {
    /// The front end rejected the program.
    Frontend(String),
}

impl From<PipelineError> for TvcError {
    fn from(e: PipelineError) -> Self {
        TvcError::Frontend(e.to_string())
    }
}

/// Lower a trivial single-function program (`int main(void)` containing only
/// integer-constant declarations and a `return` of an integer expression over
/// `+`, `-`, `*`) into the mini IR. Returns `None` when the program falls
/// outside this fragment.
pub fn lower(source: &str) -> Result<Option<MiniIr>, TvcError> {
    let desugared = Session::default().desugar(source)?;
    let ail = desugared.ail();
    if ail.functions.len() != 1 || !ail.globals.is_empty() {
        return Ok(None);
    }
    let main = &ail.functions[0];
    if main.name.as_str() != "main" || !main.params.is_empty() {
        return Ok(None);
    }
    let mut ir = MiniIr::default();
    let mut temps = 0usize;
    let mut env: HashMap<String, String> = HashMap::new();
    let AilStmt::Block(items, _) = &main.body else {
        return Ok(None);
    };
    for item in items {
        match item {
            AilStmt::Decl(decls) => {
                for d in decls {
                    let Some(cerberus_ail::ail::AilInit::Expr(e)) = &d.init else {
                        return Ok(None);
                    };
                    match lower_expr(e, &mut ir, &mut temps, &env) {
                        Some(tmp) => {
                            env.insert(d.name.as_str().to_owned(), tmp);
                        }
                        None => return Ok(None),
                    }
                }
            }
            AilStmt::Return(Some(e)) => match lower_expr(e, &mut ir, &mut temps, &env) {
                Some(tmp) => {
                    ir.instrs.push(Instr::Ret(tmp));
                    return Ok(Some(ir));
                }
                None => return Ok(None),
            },
            AilStmt::Skip => {}
            _ => return Ok(None),
        }
    }
    Ok(None)
}

fn lower_expr(
    e: &AilExpr,
    ir: &mut MiniIr,
    temps: &mut usize,
    env: &HashMap<String, String>,
) -> Option<String> {
    let fresh = |temps: &mut usize| {
        *temps += 1;
        format!("t{temps}")
    };
    match &e.kind {
        AilExprKind::Constant(v) => {
            let t = fresh(temps);
            ir.instrs.push(Instr::Const(t.clone(), *v));
            Some(t)
        }
        AilExprKind::Ident(name, _) => env.get(name.as_str()).cloned(),
        AilExprKind::Binary(op, l, r) => {
            let mini = match op {
                BinOp::Add => MiniOp::Add,
                BinOp::Sub => MiniOp::Sub,
                BinOp::Mul => MiniOp::Mul,
                _ => return None,
            };
            let a = lower_expr(l, ir, temps, env)?;
            let b = lower_expr(r, ir, temps, env)?;
            let t = fresh(temps);
            ir.instrs.push(Instr::Binary(t.clone(), mini, a, b));
            Some(t)
        }
        _ => None,
    }
}

/// Evaluate the mini IR.
pub fn eval_ir(ir: &MiniIr) -> Option<i128> {
    let mut regs: HashMap<String, i128> = HashMap::new();
    for instr in &ir.instrs {
        match instr {
            Instr::Const(dst, v) => {
                regs.insert(dst.clone(), *v);
            }
            Instr::Binary(dst, op, a, b) => {
                let x = *regs.get(a)?;
                let y = *regs.get(b)?;
                let v = match op {
                    MiniOp::Add => x.wrapping_add(y),
                    MiniOp::Sub => x.wrapping_sub(y),
                    MiniOp::Mul => x.wrapping_mul(y),
                };
                regs.insert(dst.clone(), v);
            }
            Instr::Ret(v) => return regs.get(v).copied(),
        }
    }
    None
}

/// Validate one program: lower it to the mini IR, evaluate both sides, and
/// check that the IR's behaviour is among the behaviours Cerberus allows.
pub fn validate(source: &str) -> Result<TvcVerdict, TvcError> {
    let Some(ir) = lower(source)? else {
        return Ok(TvcVerdict::Unsupported(
            "program outside the tvc fragment".into(),
        ));
    };
    let Some(ir_value) = eval_ir(&ir) else {
        return Ok(TvcVerdict::Unsupported("mini IR evaluation failed".into()));
    };
    let outcome = Session::default().run_source(source)?;
    let cerberus_value = match outcome.outcomes.first().map(|o| &o.result) {
        Some(ExecResult::Return(v)) => *v,
        _ => {
            return Ok(TvcVerdict::Unsupported(
                "Cerberus execution did not return".into(),
            ))
        }
    };
    if ir_value == cerberus_value {
        Ok(TvcVerdict::Validated { value: ir_value })
    } else {
        Ok(TvcVerdict::Mismatch {
            ir_value,
            cerberus_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_programs_validate() {
        let verdict = validate("int main(void) { int a = 6; int b = 7; return a * b; }").unwrap();
        assert_eq!(verdict, TvcVerdict::Validated { value: 42 });
        let verdict = validate("int main(void) { return 1 + 2 * 3; }").unwrap();
        assert_eq!(verdict, TvcVerdict::Validated { value: 7 });
    }

    #[test]
    fn out_of_fragment_programs_are_unsupported() {
        let verdict = validate("int main(void) { int x = 0; if (x) return 1; return 0; }").unwrap();
        assert!(matches!(verdict, TvcVerdict::Unsupported(_)));
        let verdict = validate("int f(void){return 1;} int main(void) { return f(); }").unwrap();
        assert!(matches!(verdict, TvcVerdict::Unsupported(_)));
    }

    #[test]
    fn lowering_produces_three_address_code() {
        let ir = lower("int main(void) { int a = 2; return a + 3; }")
            .unwrap()
            .unwrap();
        assert!(ir
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Binary(_, MiniOp::Add, _, _))));
        assert!(matches!(ir.instrs.last(), Some(Instr::Ret(_))));
        assert_eq!(eval_ir(&ir), Some(5));
    }
}
