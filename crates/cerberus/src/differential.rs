//! Differential execution of one elaborated program across memory models.
//!
//! The paper's §3 compares how analysis tools (and §2 how candidate
//! semantics) judge the same test programs — a matrix of *(program, model) →
//! outcome*. [`DifferentialRunner`] reproduces that shape natively: it takes
//! **one** [`Elaborated`] artifact plus a list of named [`ModelConfig`]s and
//! executes the shared Core program under each, with no re-parse or
//! re-elaboration, returning an [`OutcomeMatrix`] that can be queried for
//! agreement and per-model verdicts.
//!
//! Rows are *independent*: every model executes a pristine engine against the
//! same `Arc`-shared Core program. [`DifferentialRunner::run`] therefore
//! executes the rows **in parallel** — chunked over the available cores with
//! scoped threads — and reassembles the matrix in runner order so the result
//! is bit-identical to the sequential path
//! ([`DifferentialRunner::run_sequential`], kept as the baseline for
//! `benches/differential.rs`). With the symbolic engine
//! registered in [`ModelConfig::all_named`], the default matrix now mixes
//! two genuinely different [`cerberus_memory::MemoryModel`] implementations,
//! not just configurations of one.
//!
//! Rows are also *fault-isolated*: each row runs behind
//! [`std::panic::catch_unwind`], so a panicking memory-model implementation
//! (an engine defect, not a program verdict) becomes an
//! [`ExecResult::EngineFault`] row carrying the captured payload while every
//! other row completes normally. A retry-once policy
//! ([`DifferentialRunner::with_fault_retry`]) re-runs a faulted row before
//! recording the fault, for engines with transient defects.

use cerberus_exec::driver::{ExecMode, ExecResult, ProgramOutcome};
use cerberus_memory::config::ModelConfig;
use cerberus_memory::limits::ResourceLimits;
use std::collections::HashMap;

use crate::pipeline::{Config, Elaborated, RunOutcome};

/// Render a payload captured by [`std::panic::catch_unwind`] as text (the
/// common `String`/`&str` payloads verbatim, anything else a fixed marker).
pub fn panic_payload(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one elaborated program under a list of memory models.
///
/// ```
/// use cerberus::pipeline::Session;
/// use cerberus::DifferentialRunner;
///
/// let program = Session::default()
///     .elaborate("int x = 1, y = 2;\nint main(void) { int *p = &x + 1; int *q = &y; return p == q; }")
///     .unwrap();
/// let matrix = DifferentialRunner::all_named().run(&program);
/// // Concrete layout makes one-past-x alias &y; the symbolic engine keeps
/// // every allocation in its own address region, so the models disagree.
/// assert_eq!(matrix.outcome_for("concrete").unwrap().exit_value(), Some(1));
/// assert_eq!(matrix.outcome_for("symbolic").unwrap().exit_value(), Some(0));
/// assert!(!matrix.all_agree());
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialRunner {
    models: Vec<ModelConfig>,
    mode: ExecMode,
    limits: ResourceLimits,
    retry_faults: bool,
}

impl DifferentialRunner {
    /// A runner over the given models, with the default single-path mode and
    /// resource budget.
    pub fn new(models: Vec<ModelConfig>) -> Self {
        let defaults = Config::default();
        DifferentialRunner {
            models,
            mode: defaults.mode,
            limits: defaults.limits,
            retry_faults: false,
        }
    }

    /// A runner over every named model configuration
    /// ([`ModelConfig::all_named`]).
    pub fn all_named() -> Self {
        DifferentialRunner::new(ModelConfig::all_named())
    }

    /// Use the given exploration mode for every model.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Use the given per-execution step budget (keeping the rest of the
    /// resource budget).
    pub fn with_step_limit(mut self, step_limit: u64) -> Self {
        self.limits.steps = step_limit;
        self
    }

    /// Use the given full per-execution resource budget.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Retry a row exactly once before recording it as an
    /// [`ExecResult::EngineFault`] (for engines with transient defects;
    /// default: off, faults are recorded immediately).
    pub fn with_fault_retry(mut self, retry: bool) -> Self {
        self.retry_faults = retry;
        self
    }

    /// The resource budget every row runs under.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// The models this runner executes under, in order.
    pub fn models(&self) -> &[ModelConfig] {
        &self.models
    }

    /// Execute one row with panic containment: an unwinding engine becomes an
    /// [`ExecResult::EngineFault`] row instead of tearing down the run. The
    /// interpreter borrows no external state across the unwind boundary
    /// (program and model are shared immutably, all mutable state is created
    /// inside the closure), so `AssertUnwindSafe` is sound here.
    fn run_row(&self, program: &Elaborated, model: &ModelConfig) -> ModelRun {
        let attempt = || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                program.execute_bounded(model, self.mode, &self.limits)
            }))
        };
        let mut result = attempt();
        if result.is_err() && self.retry_faults {
            result = attempt();
        }
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(panic) => RunOutcome {
                outcomes: vec![ProgramOutcome {
                    result: ExecResult::EngineFault {
                        model: model.name.to_owned(),
                        payload: panic_payload(&*panic),
                    },
                    stdout: String::new(),
                }],
            },
        };
        ModelRun {
            model: model.name,
            outcome,
        }
    }

    /// Execute `program` under every model, spreading the rows across the
    /// machine's cores with scoped threads. The elaborated artifact is
    /// shared — each row reuses the same `Arc`'d Core program — and the
    /// matrix is assembled in runner order, so the result is identical to
    /// [`DifferentialRunner::run_sequential`].
    ///
    /// The worker count adapts to [`std::thread::available_parallelism`]:
    /// rows are dealt to at most that many threads (contiguous chunks, so
    /// each spawn amortises over several models), and a single-core machine
    /// falls back to the sequential path with no spawn overhead at all.
    pub fn run(&self, program: &Elaborated) -> OutcomeMatrix {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.models.len());
        if workers <= 1 {
            return self.run_sequential(program);
        }
        let chunk = self.models.len().div_ceil(workers);
        let mut rows: Vec<Option<ModelRun>> = self.models.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slots, models) in rows.chunks_mut(chunk).zip(self.models.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, model) in slots.iter_mut().zip(models.iter()) {
                        // run_row contains engine panics, so every slot is
                        // filled even when a model faults.
                        *slot = Some(self.run_row(program, model));
                    }
                });
            }
        });
        OutcomeMatrix::new(
            rows.into_iter()
                .map(|row| row.expect("every scoped row thread ran to completion"))
                .collect(),
        )
    }

    /// Execute `program` under every model on the calling thread, in runner
    /// order (the baseline the parallel [`DifferentialRunner::run`] is
    /// benchmarked — and tested for determinism — against).
    pub fn run_sequential(&self, program: &Elaborated) -> OutcomeMatrix {
        OutcomeMatrix::new(
            self.models
                .iter()
                .map(|model| self.run_row(program, model))
                .collect(),
        )
    }
}

/// One row of the matrix: a model name and what the program did under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRun {
    /// The model name (from [`ModelConfig::name`]).
    pub model: &'static str,
    /// The observed outcome(s).
    pub outcome: RunOutcome,
}

impl ModelRun {
    /// Whether this row is a contained engine panic rather than a verdict
    /// about the program.
    pub fn is_fault(&self) -> bool {
        self.outcome.is_fault()
    }
}

/// One agreement class of a matrix: the models that produced one distinct
/// outcome set, in first-seen order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreementClass<'a> {
    /// The models in this class, in row order.
    pub models: Vec<&'static str>,
    /// The outcome set they share.
    pub outcome: &'a RunOutcome,
    /// Whether this class is a contained engine fault rather than a program
    /// verdict. Fault outcomes embed the faulting model's name and payload,
    /// so each faulted model forms its own singleton class.
    pub faulted: bool,
}

/// The §3-style comparison matrix: per-model outcomes of one program.
///
/// Rows are immutable after construction (exposed via
/// [`OutcomeMatrix::rows`]); that is what keeps the internal name index and
/// the rows permanently in sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeMatrix {
    /// One row per model, in runner order.
    rows: Vec<ModelRun>,
    /// Model name → row position, built once at construction so
    /// [`OutcomeMatrix::outcome_for`] is a hash lookup rather than a linear
    /// scan per query. If a runner lists the same model name twice, the
    /// *first* row wins (matching the old scan's behaviour).
    index: HashMap<&'static str, usize>,
}

impl OutcomeMatrix {
    /// A matrix over the given rows, indexing them by model name (first
    /// occurrence wins for duplicated names).
    pub fn new(rows: Vec<ModelRun>) -> Self {
        let mut index = HashMap::with_capacity(rows.len());
        for (position, row) in rows.iter().enumerate() {
            index.entry(row.model).or_insert(position);
        }
        OutcomeMatrix { rows, index }
    }

    /// The rows, one per model, in runner order.
    pub fn rows(&self) -> &[ModelRun] {
        &self.rows
    }

    /// The outcome recorded for `model`, if it was part of the run. For a
    /// model listed more than once, the first row's outcome is returned.
    pub fn outcome_for(&self, model: &str) -> Option<&RunOutcome> {
        self.index
            .get(model)
            .map(|&position| &self.rows[position].outcome)
    }

    /// Whether every model produced the same outcome set.
    pub fn all_agree(&self) -> bool {
        self.rows.windows(2).all(|w| w[0].outcome == w[1].outcome)
    }

    /// Group the models into [`AgreementClass`]es: each class is the list of
    /// model names that produced one distinct outcome set, in first-seen
    /// order. A defined-everywhere deterministic program yields one class;
    /// the DR260 example yields one class per semantic camp; a faulted model
    /// yields a singleton class with [`AgreementClass::faulted`] set.
    pub fn agreement_classes(&self) -> Vec<AgreementClass<'_>> {
        let mut classes: Vec<AgreementClass<'_>> = Vec::new();
        for row in &self.rows {
            match classes
                .iter_mut()
                .find(|class| *class.outcome == row.outcome)
            {
                Some(class) => class.models.push(row.model),
                None => classes.push(AgreementClass {
                    models: vec![row.model],
                    outcome: &row.outcome,
                    faulted: row.is_fault(),
                }),
            }
        }
        classes
    }

    /// The models whose outcome differs from the first row's (the
    /// "disagreements with the baseline model").
    pub fn disagreeing_models(&self) -> Vec<&'static str> {
        match self.rows.split_first() {
            Some((base, rest)) => rest
                .iter()
                .filter(|r| r.outcome != base.outcome)
                .map(|r| r.model)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The models whose row is a contained engine fault, in row order.
    pub fn faulted_models(&self) -> Vec<&'static str> {
        self.rows
            .iter()
            .filter(|r| r.is_fault())
            .map(|r| r.model)
            .collect()
    }

    /// Whether any row is a contained engine fault.
    pub fn any_fault(&self) -> bool {
        self.rows.iter().any(ModelRun::is_fault)
    }
}

impl std::fmt::Display for OutcomeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in &self.rows {
            let rendered: Vec<String> = row
                .outcome
                .outcomes
                .iter()
                .map(|o| o.result.to_string())
                .collect();
            writeln!(f, "{:<16} {}", row.model, rendered.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Session;
    use cerberus_ast::ub::UbKind;

    const DR260: &str = "#include <stdio.h>\n#include <string.h>\nint x = 1, y = 2;\nint main() {\n  int *p = &x + 1;\n  int *q = &y;\n  if (memcmp(&p, &q, sizeof(p)) == 0) {\n    *p = 11;\n    printf(\"x=%d y=%d *p=%d *q=%d\\n\", x, y, *p, *q);\n  }\n  return 0;\n}\n";

    #[test]
    fn one_artifact_many_models_no_reelaboration() {
        let program = Session::default().elaborate(DR260).unwrap();
        let shared_before = program.share();
        let matrix = DifferentialRunner::new(vec![
            ModelConfig::concrete(),
            ModelConfig::de_facto(),
            ModelConfig::gcc_like(),
        ])
        .run(&program);
        // The artifact was shared, not rebuilt: the Arc is untouched.
        assert!(std::sync::Arc::ptr_eq(&shared_before, &program.share()));
        assert_eq!(matrix.rows().len(), 3);
        assert!(!matrix.all_agree());
        assert_eq!(
            matrix.outcome_for("concrete").and_then(RunOutcome::stdout),
            Some("x=1 y=11 *p=11 *q=11\n")
        );
        assert_eq!(
            matrix.outcome_for("de-facto").unwrap().outcomes[0]
                .result
                .ub_kind(),
            Some(UbKind::OutOfBoundsAccess)
        );
        assert_eq!(
            matrix.outcome_for("gcc-like").and_then(RunOutcome::stdout),
            Some("x=1 y=2 *p=11 *q=2\n")
        );
        assert_eq!(matrix.agreement_classes().len(), 3);
        assert_eq!(matrix.disagreeing_models(), vec!["de-facto", "gcc-like"]);
    }

    #[test]
    fn defined_programs_agree_everywhere() {
        let program = Session::default()
            .elaborate("int main(void) { return 7; }")
            .unwrap();
        let matrix = DifferentialRunner::all_named().run(&program);
        assert_eq!(matrix.rows().len(), ModelConfig::all_named().len());
        assert!(matrix.all_agree());
        assert_eq!(matrix.agreement_classes().len(), 1);
        assert!(matrix.disagreeing_models().is_empty());
    }

    #[test]
    fn parallel_and_sequential_runs_yield_the_same_matrix() {
        let program = Session::default().elaborate(DR260).unwrap();
        let runner = DifferentialRunner::all_named();
        let parallel = runner.run(&program);
        let sequential = runner.run_sequential(&program);
        assert_eq!(parallel, sequential);
        // Row order is the runner order in both paths.
        let names: Vec<_> = parallel.rows().iter().map(|r| r.model).collect();
        let expected: Vec<_> = ModelConfig::all_named().iter().map(|m| m.name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn duplicate_model_names_resolve_to_the_first_row() {
        // Two rows named "de-facto" with different step limits: the first one
        // completes, the second times out. `outcome_for` must return the
        // first row (the documented duplicate contract), and both rows stay
        // visible in `rows`.
        let program = Session::default()
            .elaborate("int main(void) { for (int i = 0; i < 100; i++) ; return 5; }")
            .unwrap();
        let completing = DifferentialRunner::new(vec![ModelConfig::de_facto()]);
        let starving = completing.clone().with_step_limit(1);
        let mut rows = completing.run(&program).rows().to_vec();
        rows.extend(starving.run(&program).rows().to_vec());
        let matrix = OutcomeMatrix::new(rows);
        assert_eq!(matrix.rows().len(), 2);
        assert_eq!(
            matrix.outcome_for("de-facto").unwrap().exit_value(),
            Some(5)
        );
        assert_ne!(matrix.rows()[1].outcome.exit_value(), Some(5));
    }

    #[test]
    fn a_panicking_model_is_contained_to_its_row() {
        use cerberus_exec::driver::ExecResult;
        use cerberus_memory::fault::FAULT_MESSAGE;

        let program = Session::default().elaborate(DR260).unwrap();
        let with_fault = DifferentialRunner::new(vec![
            ModelConfig::concrete(),
            ModelConfig::panicking(),
            ModelConfig::de_facto(),
        ])
        .run(&program);
        // Exactly the injected model's row faulted...
        assert!(with_fault.any_fault());
        assert_eq!(with_fault.faulted_models(), vec!["panicking"]);
        let row = with_fault.outcome_for("panicking").unwrap();
        assert!(row.is_fault());
        match &row.outcomes[0].result {
            ExecResult::EngineFault { model, payload } => {
                assert_eq!(model, "panicking");
                assert_eq!(payload, FAULT_MESSAGE);
            }
            other => panic!("expected an engine fault, got {other}"),
        }
        // ...every other row is identical to a run without the faulty model...
        let without =
            DifferentialRunner::new(vec![ModelConfig::concrete(), ModelConfig::de_facto()])
                .run(&program);
        assert_eq!(
            with_fault.outcome_for("concrete"),
            without.outcome_for("concrete")
        );
        assert_eq!(
            with_fault.outcome_for("de-facto"),
            without.outcome_for("de-facto")
        );
        // ...and the fault forms its own agreement class, flagged as such.
        let classes = with_fault.agreement_classes();
        let fault_classes: Vec<_> = classes.iter().filter(|c| c.faulted).collect();
        assert_eq!(fault_classes.len(), 1);
        assert_eq!(fault_classes[0].models, vec!["panicking"]);
    }

    #[test]
    fn fault_containment_is_identical_in_both_execution_paths() {
        let program = Session::default()
            .elaborate("int main(void) { return 1; }")
            .unwrap();
        let runner = DifferentialRunner::new(vec![
            ModelConfig::de_facto(),
            ModelConfig::panicking(),
            ModelConfig::symbolic(),
        ]);
        assert_eq!(runner.run(&program), runner.run_sequential(&program));
        // The retry-once policy re-runs the row; a deterministic fault still
        // ends as a fault row.
        let retrying = runner.clone().with_fault_retry(true);
        let matrix = retrying.run(&program);
        assert_eq!(matrix.faulted_models(), vec!["panicking"]);
    }

    #[test]
    fn the_symbolic_engine_joins_the_default_matrix() {
        let program = Session::default().elaborate(DR260).unwrap();
        let matrix = DifferentialRunner::all_named().run(&program);
        // The DR260 example splits concrete, de facto, GCC-like *and*
        // symbolic: under the symbolic engine the memcmp guard fails (the
        // one-past pointer is byte-distinguishable from &y), so nothing is
        // printed.
        assert_eq!(
            matrix.outcome_for("symbolic").and_then(RunOutcome::stdout),
            Some("")
        );
        assert_ne!(
            matrix.outcome_for("symbolic"),
            matrix.outcome_for("concrete")
        );
        assert_ne!(
            matrix.outcome_for("symbolic"),
            matrix.outcome_for("de-facto")
        );
    }
}
