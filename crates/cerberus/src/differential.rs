//! Differential execution of one elaborated program across memory models.
//!
//! The paper's §3 compares how analysis tools (and §2 how candidate
//! semantics) judge the same test programs — a matrix of *(program, model) →
//! outcome*. [`DifferentialRunner`] reproduces that shape natively: it takes
//! **one** [`Elaborated`] artifact plus a list of named [`ModelConfig`]s and
//! executes the shared Core program under each, with no re-parse or
//! re-elaboration, returning an [`OutcomeMatrix`] that can be queried for
//! agreement and per-model verdicts.

use cerberus_exec::driver::ExecMode;
use cerberus_memory::config::ModelConfig;

use crate::pipeline::{Config, Elaborated, RunOutcome};

/// Runs one elaborated program under a list of memory models.
#[derive(Debug, Clone)]
pub struct DifferentialRunner {
    models: Vec<ModelConfig>,
    mode: ExecMode,
    step_limit: u64,
}

impl DifferentialRunner {
    /// A runner over the given models, with the default single-path mode and
    /// step budget.
    pub fn new(models: Vec<ModelConfig>) -> Self {
        let defaults = Config::default();
        DifferentialRunner {
            models,
            mode: defaults.mode,
            step_limit: defaults.step_limit,
        }
    }

    /// A runner over every named model configuration
    /// ([`ModelConfig::all_named`]).
    pub fn all_named() -> Self {
        DifferentialRunner::new(ModelConfig::all_named())
    }

    /// Use the given exploration mode for every model.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Use the given per-execution step budget.
    pub fn with_step_limit(mut self, step_limit: u64) -> Self {
        self.step_limit = step_limit;
        self
    }

    /// The models this runner executes under, in order.
    pub fn models(&self) -> &[ModelConfig] {
        &self.models
    }

    /// Execute `program` under every model. The elaborated artifact is
    /// shared — each row reuses the same `Arc`'d Core program.
    pub fn run(&self, program: &Elaborated) -> OutcomeMatrix {
        let rows = self
            .models
            .iter()
            .map(|model| ModelRun {
                model: model.name,
                outcome: program.execute(model, self.mode, self.step_limit),
            })
            .collect();
        OutcomeMatrix { rows }
    }
}

/// One row of the matrix: a model name and what the program did under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRun {
    /// The model name (from [`ModelConfig::name`]).
    pub model: &'static str,
    /// The observed outcome(s).
    pub outcome: RunOutcome,
}

/// The §3-style comparison matrix: per-model outcomes of one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeMatrix {
    /// One row per model, in runner order.
    pub rows: Vec<ModelRun>,
}

impl OutcomeMatrix {
    /// The outcome recorded for `model`, if it was part of the run.
    pub fn outcome_for(&self, model: &str) -> Option<&RunOutcome> {
        self.rows
            .iter()
            .find(|r| r.model == model)
            .map(|r| &r.outcome)
    }

    /// Whether every model produced the same outcome set.
    pub fn all_agree(&self) -> bool {
        self.rows.windows(2).all(|w| w[0].outcome == w[1].outcome)
    }

    /// Group the models into agreement classes: each class is the list of
    /// model names that produced one distinct outcome set, in first-seen
    /// order. A defined-everywhere deterministic program yields one class;
    /// the DR260 example yields one class per semantic camp.
    pub fn agreement_classes(&self) -> Vec<(Vec<&'static str>, &RunOutcome)> {
        let mut classes: Vec<(Vec<&'static str>, &RunOutcome)> = Vec::new();
        for row in &self.rows {
            match classes
                .iter_mut()
                .find(|(_, outcome)| **outcome == row.outcome)
            {
                Some((models, _)) => models.push(row.model),
                None => classes.push((vec![row.model], &row.outcome)),
            }
        }
        classes
    }

    /// The models whose outcome differs from the first row's (the
    /// "disagreements with the baseline model").
    pub fn disagreeing_models(&self) -> Vec<&'static str> {
        match self.rows.split_first() {
            Some((base, rest)) => rest
                .iter()
                .filter(|r| r.outcome != base.outcome)
                .map(|r| r.model)
                .collect(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Display for OutcomeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in &self.rows {
            let rendered: Vec<String> = row
                .outcome
                .outcomes
                .iter()
                .map(|o| o.result.to_string())
                .collect();
            writeln!(f, "{:<16} {}", row.model, rendered.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Session;
    use cerberus_ast::ub::UbKind;

    const DR260: &str = "#include <stdio.h>\n#include <string.h>\nint x = 1, y = 2;\nint main() {\n  int *p = &x + 1;\n  int *q = &y;\n  if (memcmp(&p, &q, sizeof(p)) == 0) {\n    *p = 11;\n    printf(\"x=%d y=%d *p=%d *q=%d\\n\", x, y, *p, *q);\n  }\n  return 0;\n}\n";

    #[test]
    fn one_artifact_many_models_no_reelaboration() {
        let program = Session::default().elaborate(DR260).unwrap();
        let shared_before = program.share();
        let matrix = DifferentialRunner::new(vec![
            ModelConfig::concrete(),
            ModelConfig::de_facto(),
            ModelConfig::gcc_like(),
        ])
        .run(&program);
        // The artifact was shared, not rebuilt: the Arc is untouched.
        assert!(std::sync::Arc::ptr_eq(&shared_before, &program.share()));
        assert_eq!(matrix.rows.len(), 3);
        assert!(!matrix.all_agree());
        assert_eq!(
            matrix.outcome_for("concrete").and_then(RunOutcome::stdout),
            Some("x=1 y=11 *p=11 *q=11\n")
        );
        assert_eq!(
            matrix.outcome_for("de-facto").unwrap().outcomes[0]
                .result
                .ub_kind(),
            Some(UbKind::OutOfBoundsAccess)
        );
        assert_eq!(
            matrix.outcome_for("gcc-like").and_then(RunOutcome::stdout),
            Some("x=1 y=2 *p=11 *q=2\n")
        );
        assert_eq!(matrix.agreement_classes().len(), 3);
        assert_eq!(matrix.disagreeing_models(), vec!["de-facto", "gcc-like"]);
    }

    #[test]
    fn defined_programs_agree_everywhere() {
        let program = Session::default()
            .elaborate("int main(void) { return 7; }")
            .unwrap();
        let matrix = DifferentialRunner::all_named().run(&program);
        assert_eq!(matrix.rows.len(), ModelConfig::all_named().len());
        assert!(matrix.all_agree());
        assert_eq!(matrix.agreement_classes().len(), 1);
        assert!(matrix.disagreeing_models().is_empty());
    }
}
