//! The staged pipeline: parse → desugar/type-check → elaborate → execute.
//!
//! The stages are exposed as a **session API** so that front-end work is done
//! once and its artifacts reused: [`Session::parse`] produces a [`Parsed`]
//! translation unit, [`Parsed::desugar`] a type-annotated [`Desugared`]
//! program, and [`Desugared::elaborate`] an [`Elaborated`] Core program — a
//! cheaply clonable, shareable (`Arc`) value that can be executed any number
//! of times under different memory models and exploration modes without
//! re-running the front end. The session additionally **memoises**
//! elaboration: a source seen before resolves to its cached artifact by hash
//! lookup ([`Session::elaborate`] vs [`Session::elaborate_uncached`]).
//! Front-end failures are reported as a typed [`PipelineError`] carrying the
//! structured diagnostic (kind, message, ISO clause, source span) rather than
//! a flattened string.
//!
//! ```
//! use cerberus::pipeline::Session;
//! use cerberus::memory::config::ModelConfig;
//!
//! let program = Session::default()
//!     .elaborate("int main(void) { int x = 20; return x + 22; }")
//!     .unwrap();
//! // One elaboration, many executions:
//! for model in [ModelConfig::concrete(), ModelConfig::de_facto()] {
//!     assert_eq!(program.run_under(&model).exit_value(), Some(42));
//! }
//! ```
//!
//! For running one artifact across a whole *set* of models and comparing the
//! outcomes, see [`crate::differential::DifferentialRunner`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cerberus_ail::ail::AilProgram;
use cerberus_ail::desugar::{desugar_translation_unit_all, FrontendError};
use cerberus_analysis::{AnalysisConfig, AnalysisReport};
use cerberus_ast::diag::{ConstraintViolation, Diagnostic};
use cerberus_ast::env::ImplEnv;
use cerberus_ast::loc::Span;
use cerberus_core::program::CoreProgram;
use cerberus_elab::elaborate_program;
use cerberus_exec::driver::{Driver, ExecMode, ProgramOutcome};
use cerberus_memory::config::ModelConfig;
use cerberus_memory::limits::ResourceLimits;
use cerberus_memory::model::{AnyEngine, MemoryModel};
use cerberus_parser::cabs::TranslationUnit;
use cerberus_parser::parse_translation_unit;
use cerberus_parser::parser::ParseError;

/// Pipeline configuration: the memory object model, the
/// implementation-defined environment, the exploration mode, and the
/// per-execution resource budget.
#[derive(Debug, Clone)]
pub struct Config {
    /// The memory object model configuration (default: the candidate de facto
    /// model of §5.9).
    pub model: ModelConfig,
    /// The implementation-defined environment (default: LP64).
    pub impl_env: ImplEnv,
    /// The exploration mode (default: pseudorandom single path, seed 0).
    pub mode: ExecMode,
    /// The per-execution resource budget: steps, optional wall-clock
    /// watchdog, optional allocation bounds, call depth.
    pub limits: ResourceLimits,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            model: ModelConfig::de_facto(),
            impl_env: ImplEnv::lp64(),
            mode: ExecMode::Random { seed: 0 },
            limits: ResourceLimits::default(),
        }
    }
}

impl Config {
    /// A configuration using the given memory model and the defaults for
    /// everything else.
    pub fn with_model(model: ModelConfig) -> Self {
        Config {
            model,
            ..Config::default()
        }
    }

    /// Switch to exhaustive exploration with the given execution bound.
    pub fn exhaustive(mut self, max_executions: usize) -> Self {
        self.mode = ExecMode::Exhaustive { max_executions };
        self
    }

    /// Replace the per-execution resource budget.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// What kind of front-end failure a [`PipelineError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineErrorKind {
    /// A syntax (or lexical/preprocessing) error.
    Syntax,
    /// A constraint violation diagnosed by the desugaring/type checker.
    Constraint,
}

/// A typed front-end error carrying the structured diagnostics, not just a
/// rendered string: the kind, the messages, the source spans, and (for
/// constraint violations) the ISO C11 clauses that were violated.
///
/// The constraint variant carries **every** violation the desugaring pass
/// could independently diagnose (one per broken external declaration, in
/// source order) — the first is the *primary* one reported by the scalar
/// accessors ([`PipelineError::span`], [`PipelineError::message`],
/// [`PipelineError::diagnostic`]); [`PipelineError::diagnostics`] renders
/// them all.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A syntax error from the preprocessor, lexer or parser.
    Syntax(ParseError),
    /// The constraint violations from the desugaring/type-checking pass
    /// (non-empty; the first is the primary one).
    Constraint(Vec<ConstraintViolation>),
}

impl PipelineError {
    /// Which stage rejected the program.
    pub fn kind(&self) -> PipelineErrorKind {
        match self {
            PipelineError::Syntax(_) => PipelineErrorKind::Syntax,
            PipelineError::Constraint(_) => PipelineErrorKind::Constraint,
        }
    }

    /// For a constraint error, the primary (first-in-source) violation.
    fn primary(violations: &[ConstraintViolation]) -> &ConstraintViolation {
        violations
            .first()
            .expect("a constraint PipelineError carries at least one violation")
    }

    /// The source span the (primary) error points at.
    pub fn span(&self) -> Span {
        match self {
            PipelineError::Syntax(e) => e.span,
            PipelineError::Constraint(es) => Self::primary(es).diagnostic.span,
        }
    }

    /// The 1-based source line of the error, when the span is not synthetic.
    pub fn line(&self) -> Option<u32> {
        let span = self.span();
        (span != Span::synthetic()).then_some(span.start.line)
    }

    /// The human-readable message of the primary error (without location or
    /// clause decoration).
    pub fn message(&self) -> &str {
        match self {
            PipelineError::Syntax(e) => &e.message,
            PipelineError::Constraint(es) => Self::primary(es).message(),
        }
    }

    /// How many distinct problems this error reports (1 for syntax errors,
    /// the violation count for constraint errors).
    pub fn diagnostic_count(&self) -> usize {
        match self {
            PipelineError::Syntax(_) => 1,
            PipelineError::Constraint(es) => es.len(),
        }
    }

    /// The primary error as a [`Diagnostic`]; syntax errors are given the
    /// standard's general syntax clause.
    pub fn diagnostic(&self) -> Diagnostic {
        self.diagnostics()
            .into_iter()
            .next()
            .expect("diagnostics() is non-empty")
    }

    /// Every diagnosed problem as a [`Diagnostic`], in source order. Always
    /// non-empty; a syntax error yields exactly one entry.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        match self {
            PipelineError::Syntax(e) => {
                vec![Diagnostic::error(
                    e.message.clone(),
                    "6.7-6.9 (syntax)",
                    e.span,
                )]
            }
            PipelineError::Constraint(es) => es.iter().map(|e| e.diagnostic.clone()).collect(),
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Syntax(e) => write!(f, "{e}"),
            PipelineError::Constraint(es) => {
                write!(f, "{}", Self::primary(es))?;
                if es.len() > 1 {
                    let more = es.len() - 1;
                    let plural = if more == 1 { "" } else { "s" };
                    write!(f, " (and {more} more constraint violation{plural})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Syntax(e)
    }
}

impl From<ConstraintViolation> for PipelineError {
    fn from(e: ConstraintViolation) -> Self {
        PipelineError::Constraint(vec![e])
    }
}

impl From<Vec<ConstraintViolation>> for PipelineError {
    fn from(es: Vec<ConstraintViolation>) -> Self {
        debug_assert!(!es.is_empty(), "an empty violation list is not an error");
        PipelineError::Constraint(es)
    }
}

impl From<FrontendError> for PipelineError {
    fn from(e: FrontendError) -> Self {
        match e {
            FrontendError::Parse(e) => PipelineError::Syntax(e),
            FrontendError::Constraint(e) => PipelineError::Constraint(vec![e]),
        }
    }
}

/// The result of running a program: every distinct observable outcome the
/// chosen exploration mode produced (exactly one for random mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Distinct outcomes.
    pub outcomes: Vec<ProgramOutcome>,
}

impl RunOutcome {
    /// The single outcome, when only one was produced or all agree.
    pub fn unique(&self) -> Option<&ProgramOutcome> {
        match self.outcomes.as_slice() {
            [single] => Some(single),
            _ => None,
        }
    }

    /// The exit value of `main` when the run produced exactly one outcome
    /// that terminated normally.
    pub fn exit_value(&self) -> Option<i128> {
        self.unique()
            .and_then(cerberus_exec::driver::main_return_value)
    }

    /// Captured standard output of the unique outcome.
    pub fn stdout(&self) -> Option<&str> {
        self.unique().map(|o| o.stdout.as_str())
    }

    /// Whether *any* allowed execution reached undefined behaviour (the
    /// daemonic reading: the program is then erroneous, §2.1).
    pub fn any_undef(&self) -> bool {
        self.outcomes.iter().any(ProgramOutcome::is_undef)
    }

    /// Whether any outcome is a contained engine panic
    /// ([`cerberus_exec::driver::ExecResult::EngineFault`]) — a defect in the
    /// memory model, not a verdict about the program.
    pub fn is_fault(&self) -> bool {
        self.outcomes.iter().any(|o| o.result.is_fault())
    }

    /// Whether any outcome ran out of a time or resource budget rather than
    /// reaching a verdict about the program.
    pub fn any_budget_exhaustion(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| o.result.is_budget_exhaustion())
    }
}

// ----- the staged session ----------------------------------------------------

/// Hit/miss statistics of a memoising cache (the [`Session`] artifact memo,
/// and — by shape — the service-level result caches built on top of it).
///
/// A *hit* answered a lookup from the cache; a *miss* had to do the work
/// (for the session memo: run the front end — including lookups whose
/// elaboration then failed, since failures are not cached). `entries` is the
/// current population, bounded by the cache's capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to do the underlying work.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Constraint-solver queries answered from the solver's memo table
    /// (only populated by [`Session::cache_stats`]; zero for caches with no
    /// attached solver).
    pub solver_hits: u64,
    /// Constraint-solver queries that ran the decision procedure.
    pub solver_misses: u64,
}

impl CacheStats {
    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total constraint-solver queries (`solver_hits + solver_misses`).
    pub fn solver_lookups(&self) -> u64 {
        self.solver_hits + self.solver_misses
    }
}

/// The shared hit/miss counters behind [`Session::cache_stats`] (one pair per
/// cache, shared — like the cache itself — by all clones of a session).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A pipeline session: fixes the configuration, exposes the front end as
/// explicit stages producing reusable artifacts, and memoises elaboration.
///
/// The session keeps an internal source → [`Elaborated`] cache, so repeated
/// elaboration of identical sources (same seed re-run, a benchmark loop, the
/// same litmus test under many models) is a hash lookup instead of a
/// parse/desugar/elaborate pass. The cache is shared by clones of the session
/// and is thread-safe, which is what lets `cerberus-gen` batch seeds across
/// threads over one session.
///
/// ```
/// use cerberus::pipeline::Session;
///
/// let session = Session::default();
/// let first = session.elaborate("int main(void) { return 42; }").unwrap();
/// let second = session.elaborate("int main(void) { return 42; }").unwrap();
/// // The second call hit the cache: both artifacts share one Core program.
/// assert!(std::sync::Arc::ptr_eq(&first.share(), &second.share()));
/// assert_eq!(session.cached_artifacts(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Session {
    config: Config,
    cache: Arc<Mutex<HashMap<String, Elaborated>>>,
    counters: Arc<CacheCounters>,
    analysis_cache: Arc<Mutex<HashMap<String, Arc<AnalysisReport>>>>,
    solver: Arc<cerberus_analysis::solver::Solver>,
}

impl Session {
    /// A session with the given configuration.
    pub fn new(config: Config) -> Self {
        Session {
            config,
            cache: Arc::default(),
            counters: Arc::default(),
            analysis_cache: Arc::default(),
            solver: Arc::default(),
        }
    }

    /// A session whose default execution model is `model`.
    pub fn with_model(model: ModelConfig) -> Self {
        Session::new(Config::with_model(model))
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Stage 1: preprocess, lex and parse into the Cabs AST.
    pub fn parse(&self, source: &str) -> Result<Parsed, PipelineError> {
        let tu = parse_translation_unit(source)?;
        Ok(Parsed {
            tu,
            impl_env: self.config.impl_env.clone(),
        })
    }

    /// Stages 1–2: parse, then desugar and type-check into Ail.
    pub fn desugar(&self, source: &str) -> Result<Desugared, PipelineError> {
        self.parse(source)?.desugar()
    }

    /// Stages 1–3: parse, desugar/type-check and elaborate into Core. The
    /// returned [`Elaborated`] artifact can be executed repeatedly without
    /// re-running any front-end stage.
    ///
    /// Results are memoised per source: elaborating the same source again
    /// returns a clone of the cached artifact (cheap — the Core program is
    /// behind an `Arc`). Front-end failures are not cached. The memo is
    /// bounded ([`Session::CACHE_CAPACITY`] entries): a stream of distinct
    /// sources — e.g. a long fuzz run over fresh seeds — rolls the cache over
    /// generationally instead of retaining every artifact for the run's
    /// lifetime. Artifacts held by callers stay alive regardless.
    pub fn elaborate(&self, source: &str) -> Result<Elaborated, PipelineError> {
        if let Some(hit) = self.cache.lock().expect("artifact cache").get(source) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let program = self.elaborate_uncached(source)?;
        let mut cache = self.cache.lock().expect("artifact cache");
        if cache.len() >= Self::CACHE_CAPACITY {
            cache.clear();
        }
        cache.insert(source.to_owned(), program.clone());
        Ok(program)
    }

    /// Upper bound on memoised artifacts: once full, the next insert clears
    /// the memo (a cheap generational eviction — hot sources re-enter on
    /// their next elaboration).
    pub const CACHE_CAPACITY: usize = 512;

    /// Stages 1–3 bypassing (and not populating) the artifact cache — the
    /// pre-memoisation behaviour, kept as the benchmark baseline.
    pub fn elaborate_uncached(&self, source: &str) -> Result<Elaborated, PipelineError> {
        Ok(self.desugar(source)?.elaborate())
    }

    /// The number of elaborated artifacts currently memoised (the `entries`
    /// field of [`Session::cache_stats`]).
    pub fn cached_artifacts(&self) -> usize {
        self.cache.lock().expect("artifact cache").len()
    }

    /// Hit/miss statistics of the artifact memo. Hits answered
    /// [`Session::elaborate`] from the cache; misses ran the front end
    /// (including calls whose elaboration then failed — failures are counted
    /// but never cached). Counters are shared by clones of the session, like
    /// the cache itself, and survive [`Session::clear_cache`] (which resets
    /// only `entries`). [`Session::elaborate_uncached`] bypasses the cache
    /// *and* the counters.
    pub fn cache_stats(&self) -> CacheStats {
        let solver = self.solver.stats();
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            entries: self.cached_artifacts(),
            solver_hits: solver.hits,
            solver_misses: solver.misses,
        }
    }

    /// Drop every memoised artifact and analysis report (the artifacts
    /// themselves stay alive as long as callers hold clones).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("artifact cache").clear();
        self.analysis_cache.lock().expect("analysis cache").clear();
    }

    /// Run the static UB analyzer (the Core well-formedness validator plus
    /// the path-sensitive abstract interpreter of `cerberus-analysis`) on a
    /// source, memoising per-source analysis summaries alongside the
    /// elaboration artifacts. The session owns one constraint solver whose
    /// memo table persists across all `analyze` calls, so constraint subgoals
    /// shared across sources (the corpus) are decided once; the hit rate is
    /// surfaced in [`Session::cache_stats`].
    ///
    /// Like [`Session::elaborate`], results are cached by source text (the
    /// report is behind an `Arc`, so cache hits are cheap) with the same
    /// generational eviction bound; front-end failures are not cached.
    pub fn analyze(&self, source: &str) -> Result<Arc<AnalysisReport>, PipelineError> {
        self.analyze_with(source, AnalysisConfig::default())
    }

    /// [`Session::analyze`] under an explicit analysis budget. Only
    /// default-budget reports are memoised.
    pub fn analyze_with(
        &self,
        source: &str,
        config: AnalysisConfig,
    ) -> Result<Arc<AnalysisReport>, PipelineError> {
        let default_budget = config == AnalysisConfig::default();
        if default_budget {
            if let Some(hit) = self
                .analysis_cache
                .lock()
                .expect("analysis cache")
                .get(source)
            {
                return Ok(Arc::clone(hit));
            }
        }
        let program = self.elaborate(source)?;
        let report = Arc::new(cerberus_analysis::analyze_with_solver(
            program.core(),
            program.impl_env(),
            config,
            &self.solver,
        ));
        if default_budget {
            let mut cache = self.analysis_cache.lock().expect("analysis cache");
            if cache.len() >= Self::CACHE_CAPACITY {
                cache.clear();
            }
            cache.insert(source.to_owned(), Arc::clone(&report));
        }
        Ok(report)
    }

    /// The number of memoised analysis reports.
    pub fn cached_analyses(&self) -> usize {
        self.analysis_cache.lock().expect("analysis cache").len()
    }

    /// Build an execution driver for a program under this session's model.
    pub fn driver(&self, source: &str) -> Result<Driver<AnyEngine>, PipelineError> {
        let program = self.elaborate(source)?;
        Ok(program
            .driver(&self.config.model)
            .with_limits(self.config.limits.clone()))
    }

    /// Run a program from source, returning the distinct observable outcomes.
    pub fn run_source(&self, source: &str) -> Result<RunOutcome, PipelineError> {
        let program = self.elaborate(source)?;
        Ok(program.execute_bounded(&self.config.model, self.config.mode, &self.config.limits))
    }
}

/// Stage-1 artifact: the parsed translation unit.
#[derive(Debug, Clone)]
pub struct Parsed {
    tu: TranslationUnit,
    impl_env: ImplEnv,
}

impl Parsed {
    /// The Cabs translation unit.
    pub fn translation_unit(&self) -> &TranslationUnit {
        &self.tu
    }

    /// Stage 2: desugar and type-check into Ail. On failure the error
    /// carries **all** independently diagnosable constraint violations, not
    /// just the first (see [`PipelineError::diagnostics`]).
    pub fn desugar(&self) -> Result<Desugared, PipelineError> {
        let ail = desugar_translation_unit_all(&self.tu, &self.impl_env)?;
        Ok(Desugared {
            ail,
            impl_env: self.impl_env.clone(),
        })
    }
}

/// Stage-2 artifact: the desugared, type-annotated Ail program.
#[derive(Debug, Clone)]
pub struct Desugared {
    ail: AilProgram,
    impl_env: ImplEnv,
}

impl Desugared {
    /// The Ail program.
    pub fn ail(&self) -> &AilProgram {
        &self.ail
    }

    /// Stage 3: elaborate into Core (total on well-typed Ail).
    pub fn elaborate(&self) -> Elaborated {
        let core = elaborate_program(&self.ail, &self.impl_env);
        Elaborated {
            core: Arc::new(core),
            impl_env: self.impl_env.clone(),
        }
    }
}

/// Stage-3 artifact: the elaborated Core program, shareable and reusable.
///
/// Cloning an `Elaborated` is cheap (the Core program is behind an `Arc`), so
/// one elaboration can back many concurrent or sequential executions under
/// different memory models — the shape of the paper's §3 tool comparison and
/// of differential testing generally.
#[derive(Debug, Clone)]
pub struct Elaborated {
    core: Arc<CoreProgram>,
    impl_env: ImplEnv,
}

impl Elaborated {
    /// The elaborated Core program.
    pub fn core(&self) -> &CoreProgram {
        &self.core
    }

    /// A shared handle to the Core program.
    pub fn share(&self) -> Arc<CoreProgram> {
        Arc::clone(&self.core)
    }

    /// The implementation-defined environment the program was elaborated
    /// under (type layout decisions are already folded into the Core, so
    /// execution must use the same environment).
    pub fn impl_env(&self) -> &ImplEnv {
        &self.impl_env
    }

    /// Run the Core well-formedness validator over the elaborated program,
    /// returning **every** violation (the elaboration-stage counterpart of
    /// the desugaring pass's collect-all constraint reporting). The
    /// elaborator produces well-formed Core by construction, so any violation
    /// indicates a broken producer; an empty list is the expected outcome.
    pub fn validate(&self) -> Vec<ConstraintViolation> {
        cerberus_analysis::validate::validate(self.core())
    }

    /// The validator as a lint gate: `Ok(self)` when the Core is well formed,
    /// otherwise a [`PipelineError::Constraint`] carrying all violations —
    /// the same multi-diagnostic shape the desugaring stage reports.
    pub fn checked(self) -> Result<Elaborated, PipelineError> {
        let violations = self.validate();
        if violations.is_empty() {
            Ok(self)
        } else {
            Err(PipelineError::Constraint(violations))
        }
    }

    /// A driver executing this program under the engine `model` selects
    /// (concrete or symbolic, per [`cerberus_memory::config::EngineKind`]).
    pub fn driver(&self, model: &ModelConfig) -> Driver<AnyEngine> {
        self.driver_with(model.instantiate(self.impl_env.clone(), self.core.tags.clone()))
    }

    /// A driver executing this program under an arbitrary [`MemoryModel`]
    /// instantiation.
    pub fn driver_with<M: MemoryModel>(&self, model: M) -> Driver<M> {
        Driver::new(self.share(), model)
    }

    /// Execute under `model` with an explicit mode and step budget (a
    /// shorthand for [`Elaborated::execute_bounded`] with a steps-only
    /// [`ResourceLimits`]).
    pub fn execute(&self, model: &ModelConfig, mode: ExecMode, step_limit: u64) -> RunOutcome {
        self.execute_bounded(model, mode, &ResourceLimits::with_steps(step_limit))
    }

    /// Execute under `model` with an explicit mode and full resource budget
    /// (steps, wall-clock watchdog, allocation bounds, call depth).
    pub fn execute_bounded(
        &self,
        model: &ModelConfig,
        mode: ExecMode,
        limits: &ResourceLimits,
    ) -> RunOutcome {
        // The interpreter recurses on the host stack, so the call-depth
        // budget only protects the process if the executing stack is sized
        // for it: run the driver on a worker thread with
        // `limits.host_stack_bytes()` of stack. An engine panic unwinds the
        // worker; rethrow it here so fault-isolating callers (the
        // differential runner, the litmus suite) observe the original
        // payload.
        let result = std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name(format!("cerberus-exec-{}", model.name))
                .stack_size(limits.host_stack_bytes())
                .spawn_scoped(scope, || {
                    self.driver(model).with_limits(limits.clone()).run(mode)
                })
                .expect("spawning an execution worker thread")
                .join()
        });
        match result {
            Ok(outcomes) => RunOutcome { outcomes },
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Execute under `model` with the default single-path mode and step
    /// budget.
    ///
    /// One elaboration serves any number of executions — including under the
    /// symbolic engine, whose configuration is named like any other:
    ///
    /// ```
    /// use cerberus::memory::config::ModelConfig;
    /// use cerberus::pipeline::Session;
    ///
    /// let program = Session::default()
    ///     .elaborate("int main(void) { int x = 40; int *p = &x; return *p + 2; }")
    ///     .unwrap();
    /// assert_eq!(program.run_under(&ModelConfig::de_facto()).exit_value(), Some(42));
    /// assert_eq!(program.run_under(&ModelConfig::symbolic()).exit_value(), Some(42));
    /// ```
    pub fn run_under(&self, model: &ModelConfig) -> RunOutcome {
        let defaults = Config::default();
        self.execute_bounded(model, defaults.mode, &defaults.limits)
    }
}

/// Convenience: run `source` under the default (de facto) configuration.
pub fn run(source: &str) -> Result<RunOutcome, PipelineError> {
    Session::default().run_source(source)
}

/// Convenience: run `source` under a specific memory model.
pub fn run_with_model(source: &str, model: ModelConfig) -> Result<RunOutcome, PipelineError> {
    Session::with_model(model).run_source(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ub::UbKind;
    use cerberus_exec::driver::ExecResult;

    fn exit_of(src: &str) -> i128 {
        let out = run(src).unwrap();
        match &out.outcomes[0].result {
            ExecResult::Return(v) | ExecResult::Exit(v) => *v,
            other => panic!(
                "expected a normal result, got {other}: {:?}",
                out.outcomes[0]
            ),
        }
    }

    fn stdout_of(src: &str) -> String {
        let out = run(src).unwrap();
        out.outcomes[0].stdout.clone()
    }

    fn ub_of(src: &str) -> UbKind {
        let out = run(src).unwrap();
        match &out.outcomes[0].result {
            ExecResult::Undef(ub, _) => *ub,
            other => panic!("expected undefined behaviour, got {other}"),
        }
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(
            exit_of("int main(void) { int x = 20; int y = 22; return x + y; }"),
            42
        );
        assert_eq!(exit_of("int main(void) { return 7 * 6; }"), 42);
        assert_eq!(exit_of("int main(void) { return 100 / 2 - 8; }"), 42);
        assert_eq!(exit_of("int main(void) { return 45 % 7; }"), 3);
    }

    #[test]
    fn unsigned_comparison_surprise() {
        // The §5.5 example: -1 < (unsigned int)0 evaluates to 0.
        assert_eq!(
            exit_of("int main(void) { return -1 < (unsigned int)0; }"),
            0
        );
        assert_eq!(exit_of("int main(void) { return -1 < 0; }"), 1);
    }

    #[test]
    fn shifts_and_their_ub() {
        assert_eq!(exit_of("int main(void) { return 1 << 4; }"), 16);
        assert_eq!(
            exit_of("int main(void) { unsigned x = 1u << 31; return x != 0; }"),
            1
        );
        assert_eq!(
            ub_of("int main(void) { int n = 40; return 1 << n; }"),
            UbKind::ShiftTooLarge
        );
        assert_eq!(
            ub_of("int main(void) { int n = -1; return 1 << n; }"),
            UbKind::NegativeShift
        );
    }

    #[test]
    fn signed_overflow_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int x = 2147483647; return x + 1; }"),
            UbKind::ExceptionalCondition
        );
        assert_eq!(
            ub_of("int main(void) { int x = 0; return 1 / x; }"),
            UbKind::DivisionByZero
        );
    }

    #[test]
    fn unsigned_arithmetic_wraps() {
        assert_eq!(
            exit_of("int main(void) { unsigned x = 4294967295u; x = x + 1u; return x == 0u; }"),
            1
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            exit_of("int main(void) { int acc = 0; for (int i = 1; i <= 10; i++) acc += i; return acc; }"),
            55
        );
        assert_eq!(
            exit_of("int main(void) { int i = 0; while (i < 5) { i++; } return i; }"),
            5
        );
        assert_eq!(
            exit_of("int main(void) { int i = 0; do { i++; } while (i < 3); return i; }"),
            3
        );
        assert_eq!(
            exit_of(
                "int main(void) { int acc = 0; for (int i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; acc += i; } return acc; }"
            ),
            6
        );
    }

    #[test]
    fn switch_statement() {
        let src = "int classify(int x) {\n\
                     switch (x) {\n\
                       case 0: return 10;\n\
                       case 1: case 2: return 20;\n\
                       case 3: break;\n\
                       default: return 40;\n\
                     }\n\
                     return 30;\n\
                   }\n\
                   int main(void) { return classify(0) + classify(1) + classify(2) + classify(3) + classify(9); }";
        assert_eq!(exit_of(src), 10 + 20 + 20 + 30 + 40);
    }

    #[test]
    fn switch_fallthrough() {
        let src = "int main(void) { int acc = 0; int x = 1;\n\
                   switch (x) { case 1: acc += 1; case 2: acc += 2; break; case 3: acc += 100; }\n\
                   return acc; }";
        assert_eq!(exit_of(src), 3);
    }

    #[test]
    fn goto_forward_and_backward() {
        assert_eq!(
            exit_of("int main(void) { int x = 0; goto done; x = 100; done: return x + 1; }"),
            1
        );
        assert_eq!(
            exit_of("int main(void) { int i = 0; again: i++; if (i < 4) goto again; return i; }"),
            4
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            exit_of("int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } int main(void) { return fact(5); }"),
            120
        );
        assert_eq!(
            exit_of(
                "int add(int a, int b) { return a + b; } int main(void) { return add(40, 2); }"
            ),
            42
        );
    }

    #[test]
    fn function_pointers() {
        assert_eq!(
            exit_of(
                "int twice(int x) { return 2 * x; }\n\
                 int apply(int (*f)(int), int v) { return f(v); }\n\
                 int main(void) { int (*g)(int) = twice; return apply(g, 21); }"
            ),
            42
        );
    }

    #[test]
    fn pointers_and_addresses() {
        assert_eq!(
            exit_of("int main(void) { int x = 1; int *p = &x; *p = 41; return x + 1; }"),
            42
        );
        assert_eq!(
            exit_of(
                "int main(void) { int x = 5; int *p = &x; int **pp = &p; **pp = 9; return x; }"
            ),
            9
        );
    }

    #[test]
    fn arrays_and_subscripts() {
        assert_eq!(
            exit_of(
                "int main(void) { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; return a[4] + a[3]; }"
            ),
            25
        );
        assert_eq!(
            exit_of("int main(void) { int a[3] = {1, 2, 3}; int *p = a; return *(p + 2); }"),
            3
        );
    }

    #[test]
    fn structs_and_members() {
        assert_eq!(
            exit_of(
                "struct point { int x; int y; };\n\
                 int main(void) { struct point p; p.x = 20; p.y = 22; return p.x + p.y; }"
            ),
            42
        );
        assert_eq!(
            exit_of(
                "struct point { int x; int y; };\n\
                 int sum(struct point *p) { return p->x + p->y; }\n\
                 int main(void) { struct point p = { 40, 2 }; return sum(&p); }"
            ),
            42
        );
    }

    #[test]
    fn globals_and_statics() {
        assert_eq!(
            exit_of("int counter = 40; int bump(void) { counter = counter + 1; return counter; } int main(void) { bump(); return bump(); }"),
            42
        );
        assert_eq!(
            exit_of("int next(void) { static int n = 0; n++; return n; } int main(void) { next(); next(); return next(); }"),
            3
        );
        // Globals without initialisers are zero-initialised (6.7.9p10).
        assert_eq!(exit_of("int z; int main(void) { return z; }"), 0);
    }

    #[test]
    fn printf_output() {
        assert_eq!(
            stdout_of("#include <stdio.h>\nint main(void) { printf(\"x=%d y=%u s=%s\\n\", -3, 7u, \"hi\"); return 0; }"),
            "x=-3 y=7 s=hi\n"
        );
        assert_eq!(
            stdout_of("#include <stdio.h>\nint main(void) { for (int i = 0; i < 3; i++) printf(\"%d \", i); return 0; }"),
            "0 1 2 "
        );
    }

    #[test]
    fn malloc_free_roundtrip() {
        assert_eq!(
            exit_of(
                "#include <stdlib.h>\n\
                 int main(void) { int *p = malloc(4 * sizeof(int)); for (int i = 0; i < 4; i++) p[i] = i + 10; int s = p[0] + p[3]; free(p); return s; }"
            ),
            23
        );
    }

    #[test]
    fn memcpy_and_memcmp() {
        assert_eq!(
            exit_of(
                "#include <string.h>\n\
                 int main(void) { int a[2] = {1, 2}; int b[2]; memcpy(b, a, sizeof(a)); return memcmp(a, b, sizeof(a)) == 0; }"
            ),
            1
        );
        assert_eq!(
            exit_of("#include <string.h>\nint main(void) { return (int)strlen(\"hello\"); }"),
            5
        );
    }

    #[test]
    fn sizeof_values() {
        assert_eq!(exit_of("int main(void) { return (int)sizeof(int); }"), 4);
        assert_eq!(exit_of("int main(void) { return (int)sizeof(long); }"), 8);
        assert_eq!(
            exit_of("int main(void) { int a[7]; return (int)sizeof a; }"),
            28
        );
        assert_eq!(
            exit_of(
                "struct s { char c; int i; }; int main(void) { return (int)sizeof(struct s); }"
            ),
            8
        );
    }

    #[test]
    fn enums_and_typedefs() {
        assert_eq!(
            exit_of("enum e { A, B = 10, C }; typedef int myint; int main(void) { myint x = C; return x + A + B; }"),
            21
        );
    }

    #[test]
    fn unions_type_pun_bytes() {
        assert_eq!(
            exit_of(
                "union u { unsigned int i; unsigned char bytes[4]; };\n\
                 int main(void) { union u v; v.i = 0x01020304u; return v.bytes[0]; }"
            ),
            4 // little-endian LP64
        );
    }

    #[test]
    fn null_pointer_dereference_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int *p = 0; return *p; }"),
            UbKind::NullPointerDeref
        );
    }

    #[test]
    fn out_of_bounds_access_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int a[2]; a[0] = 1; a[1] = 2; int *p = a; return *(p + 5); }"),
            UbKind::OutOfBoundsAccess
        );
    }

    #[test]
    fn use_after_free_is_ub() {
        let ub = ub_of(
            "#include <stdlib.h>\nint main(void) { int *p = malloc(sizeof(int)); *p = 3; free(p); return *p; }",
        );
        assert_eq!(ub, UbKind::AccessOutsideLifetime);
    }

    #[test]
    fn uninitialised_read_follows_model() {
        // Under the (default) de facto model an uninitialised read gives an
        // unspecified value; branching on it is then daemonic UB.
        let ub = ub_of("int main(void) { int x; if (x) return 1; return 0; }");
        assert_eq!(ub, UbKind::IndeterminateValueUse);
        // Under the strict-ISO model the read itself is already UB.
        let out = run_with_model(
            "int main(void) { int x; return x; }",
            ModelConfig::strict_iso(),
        )
        .unwrap();
        assert_eq!(
            out.outcomes[0].result.ub_kind(),
            Some(UbKind::IndeterminateValueUse)
        );
    }

    #[test]
    fn unsequenced_race_is_detected() {
        // i = i++ + 1: the store of the assignment and the increment's store
        // are unsequenced (6.5p2).
        let out = run("int main(void) { int i = 0; i = i++ + 1; return i; }").unwrap();
        assert!(
            out.outcomes[0].result.ub_kind() == Some(UbKind::UnsequencedRace),
            "expected an unsequenced race, got {:?}",
            out.outcomes[0]
        );
    }

    #[test]
    fn exhaustive_mode_explores_argument_orders() {
        // Calling two functions with side effects in one expression: the
        // order is unspecified, so both results are allowed behaviours.
        let src = "int trace = 0;\n\
                   int f(void) { trace = trace * 10 + 1; return 0; }\n\
                   int g(void) { trace = trace * 10 + 2; return 0; }\n\
                   int add(int a, int b) { return trace; }\n\
                   int main(void) { return add(f(), g()); }";
        let out = Session::new(Config::default().exhaustive(64))
            .run_source(src)
            .unwrap();
        let values: Vec<i128> = out
            .outcomes
            .iter()
            .filter_map(cerberus_exec::driver::main_return_value)
            .collect();
        assert!(
            values.contains(&12) && values.contains(&21),
            "outcomes: {values:?}"
        );
    }

    #[test]
    fn provenance_example_differs_across_models() {
        // The §2.1 DR260 example (globals declared so the one-past pointer of
        // x aliases y under adjacent allocation).
        let src = "#include <stdio.h>\n\
                   #include <string.h>\n\
                   int x = 1, y = 2;\n\
                   int main() {\n\
                     int *p = &x + 1;\n\
                     int *q = &y;\n\
                     if (memcmp(&p, &q, sizeof(p)) == 0) {\n\
                       *p = 11;\n\
                       printf(\"x=%d y=%d *p=%d *q=%d\\n\", x, y, *p, *q);\n\
                     }\n\
                     return 0;\n\
                   }";
        // Concrete semantics: the store hits y.
        let concrete = run_with_model(src, ModelConfig::concrete()).unwrap();
        assert_eq!(concrete.outcomes[0].stdout, "x=1 y=11 *p=11 *q=11\n");
        // Candidate de facto model: the access is undefined behaviour.
        let de_facto = run_with_model(src, ModelConfig::de_facto()).unwrap();
        assert_eq!(
            de_facto.outcomes[0].result.ub_kind(),
            Some(UbKind::OutOfBoundsAccess)
        );
        // GCC-like provenance-optimising semantics: y keeps its value.
        let gcc = run_with_model(src, ModelConfig::gcc_like()).unwrap();
        assert_eq!(gcc.outcomes[0].stdout, "x=1 y=2 *p=11 *q=2\n");
    }

    #[test]
    fn relational_comparison_across_objects_follows_model() {
        let src = "int a, b;\nint main(void) { return &a < &b || &a > &b; }";
        assert_eq!(exit_of(src), 1);
        let iso = run_with_model(src, ModelConfig::strict_iso()).unwrap();
        assert_eq!(
            iso.outcomes[0].result.ub_kind(),
            Some(UbKind::RelationalCompareDifferentObjects)
        );
    }

    #[test]
    fn pointer_int_round_trip() {
        let src = "int main(void) { int x = 7; unsigned long a = (unsigned long)&x; int *p = (int*)a; return *p; }";
        assert_eq!(exit_of(src), 7);
        // Under the block model the round-tripped pointer is unusable.
        let blk = run_with_model(src, ModelConfig::block()).unwrap();
        assert!(blk.outcomes[0].result.is_undef());
    }

    #[test]
    fn logical_operators_short_circuit() {
        assert_eq!(
            exit_of(
                "int calls = 0; int boom(void) { calls++; return 1; }\n\
                 int main(void) { int r = 0 && boom(); return calls * 10 + r; }"
            ),
            0
        );
        assert_eq!(
            exit_of(
                "int calls = 0; int boom(void) { calls++; return 0; }\n\
                 int main(void) { int r = 1 || boom(); return calls * 10 + r; }"
            ),
            1
        );
    }

    #[test]
    fn conditional_expression() {
        assert_eq!(
            exit_of("int main(void) { int x = 5; return x > 3 ? 42 : 7; }"),
            42
        );
        assert_eq!(
            exit_of("int main(void) { int x = 1; return x > 3 ? 42 : 7; }"),
            7
        );
    }

    #[test]
    fn compound_assignment_and_increments() {
        assert_eq!(
            exit_of("int main(void) { int x = 10; x += 5; x *= 2; x -= 4; x /= 2; return x; }"),
            13
        );
        assert_eq!(
            exit_of("int main(void) { int i = 5; int a = i++; int b = ++i; return a * 10 + b; }"),
            57
        );
    }

    #[test]
    fn string_literals_are_readable_and_immutable() {
        assert_eq!(
            exit_of("int main(void) { char *s = \"AB\"; return s[0] + s[1]; }"),
            131
        );
        let out = run("int main(void) { char *s = \"AB\"; s[0] = 'x'; return 0; }").unwrap();
        assert_eq!(
            out.outcomes[0].result.ub_kind(),
            Some(UbKind::StringLiteralModification)
        );
    }

    #[test]
    fn frontend_errors_are_reported_with_their_kind() {
        let constraint = run("int main(void) { return zz; }").unwrap_err();
        assert_eq!(constraint.kind(), PipelineErrorKind::Constraint);
        let syntax = run("int main(void) { return 0 }").unwrap_err();
        assert_eq!(syntax.kind(), PipelineErrorKind::Syntax);
    }

    #[test]
    fn constraint_errors_collect_every_violation() {
        let err = run("int f(void) { return aa; }\n\
                       int g(void) { return bb; }\n\
                       int main(void) { return 0; }")
        .unwrap_err();
        assert_eq!(err.kind(), PipelineErrorKind::Constraint);
        assert_eq!(err.diagnostic_count(), 2);
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 2);
        // The scalar accessors report the primary (first) violation...
        assert!(err.message().contains("aa"), "message: {}", err.message());
        assert_eq!(err.diagnostic().span, diags[0].span);
        // ...and Display mentions the rest.
        assert!(err.to_string().contains("and 1 more"), "display: {err}");
        // A single violation renders without the suffix.
        let single = run("int main(void) { return zz; }").unwrap_err();
        assert_eq!(single.diagnostic_count(), 1);
        assert!(!single.to_string().contains("more constraint"));
    }

    #[test]
    fn sessions_carry_a_full_resource_budget() {
        use cerberus_memory::limits::{ResourceKind, TimeoutKind};

        // A steps-only budget still surfaces as the §6-style timeout.
        let session = Session::new(Config::default().with_limits(ResourceLimits::with_steps(64)));
        let out = session
            .run_source("int main(void) { int i = 0; while (i < 100000) i++; return 0; }")
            .unwrap();
        assert_eq!(
            out.outcomes[0].result,
            ExecResult::Timeout(TimeoutKind::StepBudget)
        );
        assert!(out.any_budget_exhaustion());
        assert!(!out.is_fault());
        // A heap-bytes budget stops allocation-heavy programs with a
        // structured resource verdict.
        let limits = ResourceLimits::default().with_heap_bytes(1024);
        let session = Session::new(Config::default().with_limits(limits));
        let out = session
            .run_source(
                "#include <stdlib.h>\n\
                 int main(void) { for (int i = 0; i < 100; i++) malloc(64); return 0; }",
            )
            .unwrap();
        assert_eq!(
            out.outcomes[0].result,
            ExecResult::ResourceExhausted(ResourceKind::HeapBytes)
        );
    }

    #[test]
    fn one_elaboration_serves_many_models() {
        let program = Session::default()
            .elaborate("int main(void) { int x = 3; int *p = &x; return *p + 39; }")
            .unwrap();
        for model in ModelConfig::all_named() {
            assert_eq!(
                program.run_under(&model).exit_value(),
                Some(42),
                "model {}",
                model.name
            );
        }
    }

    #[test]
    fn elaboration_is_memoised_per_source() {
        let session = Session::default();
        let src_a = "int main(void) { return 1; }";
        let src_b = "int main(void) { return 2; }";
        let first = session.elaborate(src_a).unwrap();
        let again = session.elaborate(src_a).unwrap();
        assert!(std::sync::Arc::ptr_eq(&first.share(), &again.share()));
        let other = session.elaborate(src_b).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&first.share(), &other.share()));
        assert_eq!(session.cached_artifacts(), 2);
        // Clones share the cache; clearing empties it for both.
        let clone = session.clone();
        assert_eq!(clone.cached_artifacts(), 2);
        clone.clear_cache();
        assert_eq!(session.cached_artifacts(), 0);
    }

    #[test]
    fn uncached_elaboration_bypasses_the_memo() {
        let session = Session::default();
        let src = "int main(void) { return 3; }";
        let a = session.elaborate_uncached(src).unwrap();
        let b = session.elaborate_uncached(src).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&a.share(), &b.share()));
        assert_eq!(session.cached_artifacts(), 0);
        // Both artifacts nonetheless behave identically.
        assert_eq!(
            a.run_under(&ModelConfig::de_facto()).exit_value(),
            b.run_under(&ModelConfig::de_facto()).exit_value()
        );
    }

    #[test]
    fn the_memo_cache_is_bounded() {
        // A stream of distinct sources (the fuzzing shape) must roll the
        // cache over instead of growing it without bound.
        let session = Session::default();
        for i in 0..Session::CACHE_CAPACITY + 3 {
            let source = format!("int main(void) {{ return {i} % 128; }}");
            session.elaborate(&source).unwrap();
            assert!(
                session.cached_artifacts() <= Session::CACHE_CAPACITY,
                "cache exceeded its bound at iteration {i}"
            );
        }
        // The generational clear fired: only the post-rollover entries remain.
        assert_eq!(session.cached_artifacts(), 3);
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let session = Session::default();
        assert_eq!(session.cache_stats(), CacheStats::default());
        let src = "int main(void) { return 4; }";
        session.elaborate(src).unwrap();
        session.elaborate(src).unwrap();
        session.elaborate("int main(void) { return 5; }").unwrap();
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert_eq!(stats.lookups(), 3);
        // A failed elaboration is a miss but never an entry.
        assert!(session.elaborate("int main(void) { return 0 }").is_err());
        assert_eq!(session.cache_stats().misses, 3);
        assert_eq!(session.cache_stats().entries, 2);
        // Clones share the counters; clearing the cache resets only entries.
        let clone = session.clone();
        clone.clear_cache();
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 3, 0));
        // The uncached path bypasses cache and counters alike.
        session.elaborate_uncached(src).unwrap();
        assert_eq!(session.cache_stats().misses, 3);
    }

    #[test]
    fn front_end_failures_are_not_cached() {
        let session = Session::default();
        let bad = "int main(void) { return 0 }";
        assert!(session.elaborate(bad).is_err());
        assert_eq!(session.cached_artifacts(), 0);
    }

    #[test]
    fn elaborated_artifacts_share_the_core_program() {
        let program = Session::default()
            .elaborate("int main(void) { return 0; }")
            .unwrap();
        let clone = program.clone();
        assert!(std::sync::Arc::ptr_eq(&program.share(), &clone.share()));
    }

    #[test]
    fn stages_compose_explicitly() {
        let session = Session::default();
        let parsed = session.parse("int main(void) { return 40 + 2; }").unwrap();
        let desugared = parsed.desugar().unwrap();
        assert_eq!(desugared.ail().functions.len(), 1);
        let program = desugared.elaborate();
        assert!(program.core().main.is_some());
        assert_eq!(
            program.run_under(&ModelConfig::de_facto()).exit_value(),
            Some(42)
        );
    }

    #[test]
    fn analysis_is_memoised_per_source() {
        use cerberus_analysis::FindingSeverity;

        let session = Session::default();
        let src = "int main(void) { int *p = 0; return *p; }";
        let first = session.analyze(src).unwrap();
        assert_eq!(
            first.reports(UbKind::NullPointerDeref),
            Some(FindingSeverity::Must),
            "findings: {:?}",
            first.findings
        );
        let again = session.analyze(src).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(session.cached_analyses(), 1);
        session.clear_cache();
        assert_eq!(session.cached_analyses(), 0);
        // Front-end failures surface as pipeline errors, not reports.
        assert!(session.analyze("int main(void) { return 0 }").is_err());
    }

    #[test]
    fn analysis_of_a_clean_program_is_clean() {
        let report = Session::default()
            .analyze("int main(void) { int x = 40; return x + 2; }")
            .unwrap();
        assert!(report.is_clean(), "{:?}", report);
    }

    #[test]
    fn elaborated_core_passes_the_validator() {
        let program = Session::default()
            .elaborate(
                "int add(int a, int b) { return a + b; }\n\
                 int main(void) { int t[2] = {1, 2}; return add(t[0], t[1]); }",
            )
            .unwrap();
        assert!(program.validate().is_empty());
        assert!(program.checked().is_ok());
    }

    #[test]
    fn exit_builtin() {
        let out = run("#include <stdlib.h>\nint main(void) { exit(3); return 0; }").unwrap();
        assert_eq!(out.outcomes[0].result, ExecResult::Exit(3));
    }
}
