//! The end-to-end pipeline: parse → desugar/typecheck → elaborate → execute.

use cerberus_ail::ail::AilProgram;
use cerberus_ail::desugar::{desugar_translation_unit, FrontendError};
use cerberus_ast::env::ImplEnv;
use cerberus_core::program::CoreProgram;
use cerberus_elab::elaborate_program;
use cerberus_exec::driver::{Driver, ExecMode, ProgramOutcome};
use cerberus_memory::config::ModelConfig;
use cerberus_parser::parse_translation_unit;

/// Pipeline configuration: the memory object model, the
/// implementation-defined environment, the exploration mode, and the step
/// budget.
#[derive(Debug, Clone)]
pub struct Config {
    /// The memory object model configuration (default: the candidate de facto
    /// model of §5.9).
    pub model: ModelConfig,
    /// The implementation-defined environment (default: LP64).
    pub impl_env: ImplEnv,
    /// The exploration mode (default: pseudorandom single path, seed 0).
    pub mode: ExecMode,
    /// The per-execution step budget.
    pub step_limit: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            model: ModelConfig::de_facto(),
            impl_env: ImplEnv::lp64(),
            mode: ExecMode::Random { seed: 0 },
            step_limit: 2_000_000,
        }
    }
}

impl Config {
    /// A configuration using the given memory model and the defaults for
    /// everything else.
    pub fn with_model(model: ModelConfig) -> Self {
        Config { model, ..Config::default() }
    }

    /// Switch to exhaustive exploration with the given execution bound.
    pub fn exhaustive(mut self, max_executions: usize) -> Self {
        self.mode = ExecMode::Exhaustive { max_executions };
        self
    }
}

/// Errors produced before execution starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A syntax error or constraint violation from the front end.
    Frontend(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Frontend(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<FrontendError> for PipelineError {
    fn from(e: FrontendError) -> Self {
        PipelineError::Frontend(e.to_string())
    }
}

/// The result of running a program: every distinct observable outcome the
/// chosen exploration mode produced (exactly one for random mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Distinct outcomes.
    pub outcomes: Vec<ProgramOutcome>,
}

impl RunOutcome {
    /// The single outcome, when only one was produced or all agree.
    pub fn unique(&self) -> Option<&ProgramOutcome> {
        match self.outcomes.as_slice() {
            [single] => Some(single),
            _ => None,
        }
    }

    /// The exit value of `main` when the run produced exactly one outcome
    /// that terminated normally.
    pub fn exit_value(&self) -> Option<i128> {
        self.unique().and_then(cerberus_exec::driver::main_return_value)
    }

    /// Captured standard output of the unique outcome.
    pub fn stdout(&self) -> Option<&str> {
        self.unique().map(|o| o.stdout.as_str())
    }

    /// Whether *any* allowed execution reached undefined behaviour (the
    /// daemonic reading: the program is then erroneous, §2.1).
    pub fn any_undef(&self) -> bool {
        self.outcomes.iter().any(ProgramOutcome::is_undef)
    }
}

/// The Cerberus-rs pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: Config,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: Config) -> Self {
        Pipeline { config }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Front end only: parse, desugar and type-check.
    pub fn frontend(&self, source: &str) -> Result<AilProgram, PipelineError> {
        let tu = parse_translation_unit(source)
            .map_err(|e| PipelineError::Frontend(e.to_string()))?;
        Ok(desugar_translation_unit(&tu, &self.config.impl_env)
            .map_err(|e| PipelineError::Frontend(e.to_string()))?)
    }

    /// Parse, desugar, type-check and elaborate into Core.
    pub fn elaborate(&self, source: &str) -> Result<CoreProgram, PipelineError> {
        let ail = self.frontend(source)?;
        Ok(elaborate_program(&ail, &self.config.impl_env))
    }

    /// Build the execution driver for a program.
    pub fn driver(&self, source: &str) -> Result<Driver, PipelineError> {
        let core = self.elaborate(source)?;
        Ok(Driver::new(core, self.config.model.clone(), self.config.impl_env.clone())
            .with_step_limit(self.config.step_limit))
    }

    /// Run a program from source, returning the distinct observable outcomes.
    pub fn run_source(&self, source: &str) -> Result<RunOutcome, PipelineError> {
        let driver = self.driver(source)?;
        Ok(RunOutcome { outcomes: driver.run(self.config.mode) })
    }
}

/// Convenience: run `source` under the default (de facto) configuration.
pub fn run(source: &str) -> Result<RunOutcome, PipelineError> {
    Pipeline::new(Config::default()).run_source(source)
}

/// Convenience: run `source` under a specific memory model.
pub fn run_with_model(source: &str, model: ModelConfig) -> Result<RunOutcome, PipelineError> {
    Pipeline::new(Config::with_model(model)).run_source(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ub::UbKind;
    use cerberus_exec::driver::ExecResult;

    fn exit_of(src: &str) -> i128 {
        let out = run(src).unwrap();
        match &out.outcomes[0].result {
            ExecResult::Return(v) | ExecResult::Exit(v) => *v,
            other => panic!("expected a normal result, got {other}: {:?}", out.outcomes[0]),
        }
    }

    fn stdout_of(src: &str) -> String {
        let out = run(src).unwrap();
        out.outcomes[0].stdout.clone()
    }

    fn ub_of(src: &str) -> UbKind {
        let out = run(src).unwrap();
        match &out.outcomes[0].result {
            ExecResult::Undef(ub, _) => *ub,
            other => panic!("expected undefined behaviour, got {other}"),
        }
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(exit_of("int main(void) { int x = 20; int y = 22; return x + y; }"), 42);
        assert_eq!(exit_of("int main(void) { return 7 * 6; }"), 42);
        assert_eq!(exit_of("int main(void) { return 100 / 2 - 8; }"), 42);
        assert_eq!(exit_of("int main(void) { return 45 % 7; }"), 3);
    }

    #[test]
    fn unsigned_comparison_surprise() {
        // The §5.5 example: -1 < (unsigned int)0 evaluates to 0.
        assert_eq!(exit_of("int main(void) { return -1 < (unsigned int)0; }"), 0);
        assert_eq!(exit_of("int main(void) { return -1 < 0; }"), 1);
    }

    #[test]
    fn shifts_and_their_ub() {
        assert_eq!(exit_of("int main(void) { return 1 << 4; }"), 16);
        assert_eq!(exit_of("int main(void) { unsigned x = 1u << 31; return x != 0; }"), 1);
        assert_eq!(ub_of("int main(void) { int n = 40; return 1 << n; }"), UbKind::ShiftTooLarge);
        assert_eq!(ub_of("int main(void) { int n = -1; return 1 << n; }"), UbKind::NegativeShift);
    }

    #[test]
    fn signed_overflow_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int x = 2147483647; return x + 1; }"),
            UbKind::ExceptionalCondition
        );
        assert_eq!(ub_of("int main(void) { int x = 0; return 1 / x; }"), UbKind::DivisionByZero);
    }

    #[test]
    fn unsigned_arithmetic_wraps() {
        assert_eq!(
            exit_of("int main(void) { unsigned x = 4294967295u; x = x + 1u; return x == 0u; }"),
            1
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            exit_of("int main(void) { int acc = 0; for (int i = 1; i <= 10; i++) acc += i; return acc; }"),
            55
        );
        assert_eq!(
            exit_of("int main(void) { int i = 0; while (i < 5) { i++; } return i; }"),
            5
        );
        assert_eq!(
            exit_of("int main(void) { int i = 0; do { i++; } while (i < 3); return i; }"),
            3
        );
        assert_eq!(
            exit_of(
                "int main(void) { int acc = 0; for (int i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; acc += i; } return acc; }"
            ),
            6
        );
    }

    #[test]
    fn switch_statement() {
        let src = "int classify(int x) {\n\
                     switch (x) {\n\
                       case 0: return 10;\n\
                       case 1: case 2: return 20;\n\
                       case 3: break;\n\
                       default: return 40;\n\
                     }\n\
                     return 30;\n\
                   }\n\
                   int main(void) { return classify(0) + classify(1) + classify(2) + classify(3) + classify(9); }";
        assert_eq!(exit_of(src), 10 + 20 + 20 + 30 + 40);
    }

    #[test]
    fn switch_fallthrough() {
        let src = "int main(void) { int acc = 0; int x = 1;\n\
                   switch (x) { case 1: acc += 1; case 2: acc += 2; break; case 3: acc += 100; }\n\
                   return acc; }";
        assert_eq!(exit_of(src), 3);
    }

    #[test]
    fn goto_forward_and_backward() {
        assert_eq!(
            exit_of("int main(void) { int x = 0; goto done; x = 100; done: return x + 1; }"),
            1
        );
        assert_eq!(
            exit_of(
                "int main(void) { int i = 0; again: i++; if (i < 4) goto again; return i; }"
            ),
            4
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            exit_of("int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } int main(void) { return fact(5); }"),
            120
        );
        assert_eq!(
            exit_of("int add(int a, int b) { return a + b; } int main(void) { return add(40, 2); }"),
            42
        );
    }

    #[test]
    fn function_pointers() {
        assert_eq!(
            exit_of(
                "int twice(int x) { return 2 * x; }\n\
                 int apply(int (*f)(int), int v) { return f(v); }\n\
                 int main(void) { int (*g)(int) = twice; return apply(g, 21); }"
            ),
            42
        );
    }

    #[test]
    fn pointers_and_addresses() {
        assert_eq!(
            exit_of("int main(void) { int x = 1; int *p = &x; *p = 41; return x + 1; }"),
            42
        );
        assert_eq!(
            exit_of("int main(void) { int x = 5; int *p = &x; int **pp = &p; **pp = 9; return x; }"),
            9
        );
    }

    #[test]
    fn arrays_and_subscripts() {
        assert_eq!(
            exit_of(
                "int main(void) { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; return a[4] + a[3]; }"
            ),
            25
        );
        assert_eq!(
            exit_of("int main(void) { int a[3] = {1, 2, 3}; int *p = a; return *(p + 2); }"),
            3
        );
    }

    #[test]
    fn structs_and_members() {
        assert_eq!(
            exit_of(
                "struct point { int x; int y; };\n\
                 int main(void) { struct point p; p.x = 20; p.y = 22; return p.x + p.y; }"
            ),
            42
        );
        assert_eq!(
            exit_of(
                "struct point { int x; int y; };\n\
                 int sum(struct point *p) { return p->x + p->y; }\n\
                 int main(void) { struct point p = { 40, 2 }; return sum(&p); }"
            ),
            42
        );
    }

    #[test]
    fn globals_and_statics() {
        assert_eq!(
            exit_of("int counter = 40; int bump(void) { counter = counter + 1; return counter; } int main(void) { bump(); return bump(); }"),
            42
        );
        assert_eq!(
            exit_of("int next(void) { static int n = 0; n++; return n; } int main(void) { next(); next(); return next(); }"),
            3
        );
        // Globals without initialisers are zero-initialised (6.7.9p10).
        assert_eq!(exit_of("int z; int main(void) { return z; }"), 0);
    }

    #[test]
    fn printf_output() {
        assert_eq!(
            stdout_of("#include <stdio.h>\nint main(void) { printf(\"x=%d y=%u s=%s\\n\", -3, 7u, \"hi\"); return 0; }"),
            "x=-3 y=7 s=hi\n"
        );
        assert_eq!(
            stdout_of("#include <stdio.h>\nint main(void) { for (int i = 0; i < 3; i++) printf(\"%d \", i); return 0; }"),
            "0 1 2 "
        );
    }

    #[test]
    fn malloc_free_roundtrip() {
        assert_eq!(
            exit_of(
                "#include <stdlib.h>\n\
                 int main(void) { int *p = malloc(4 * sizeof(int)); for (int i = 0; i < 4; i++) p[i] = i + 10; int s = p[0] + p[3]; free(p); return s; }"
            ),
            23
        );
    }

    #[test]
    fn memcpy_and_memcmp() {
        assert_eq!(
            exit_of(
                "#include <string.h>\n\
                 int main(void) { int a[2] = {1, 2}; int b[2]; memcpy(b, a, sizeof(a)); return memcmp(a, b, sizeof(a)) == 0; }"
            ),
            1
        );
        assert_eq!(
            exit_of("#include <string.h>\nint main(void) { return (int)strlen(\"hello\"); }"),
            5
        );
    }

    #[test]
    fn sizeof_values() {
        assert_eq!(exit_of("int main(void) { return (int)sizeof(int); }"), 4);
        assert_eq!(exit_of("int main(void) { return (int)sizeof(long); }"), 8);
        assert_eq!(exit_of("int main(void) { int a[7]; return (int)sizeof a; }"), 28);
        assert_eq!(
            exit_of("struct s { char c; int i; }; int main(void) { return (int)sizeof(struct s); }"),
            8
        );
    }

    #[test]
    fn enums_and_typedefs() {
        assert_eq!(
            exit_of("enum e { A, B = 10, C }; typedef int myint; int main(void) { myint x = C; return x + A + B; }"),
            21
        );
    }

    #[test]
    fn unions_type_pun_bytes() {
        assert_eq!(
            exit_of(
                "union u { unsigned int i; unsigned char bytes[4]; };\n\
                 int main(void) { union u v; v.i = 0x01020304u; return v.bytes[0]; }"
            ),
            4 // little-endian LP64
        );
    }

    #[test]
    fn null_pointer_dereference_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int *p = 0; return *p; }"),
            UbKind::NullPointerDeref
        );
    }

    #[test]
    fn out_of_bounds_access_is_ub() {
        assert_eq!(
            ub_of("int main(void) { int a[2]; a[0] = 1; a[1] = 2; int *p = a; return *(p + 5); }"),
            UbKind::OutOfBoundsAccess
        );
    }

    #[test]
    fn use_after_free_is_ub() {
        let ub = ub_of(
            "#include <stdlib.h>\nint main(void) { int *p = malloc(sizeof(int)); *p = 3; free(p); return *p; }",
        );
        assert_eq!(ub, UbKind::AccessOutsideLifetime);
    }

    #[test]
    fn uninitialised_read_follows_model() {
        // Under the (default) de facto model an uninitialised read gives an
        // unspecified value; branching on it is then daemonic UB.
        let ub = ub_of("int main(void) { int x; if (x) return 1; return 0; }");
        assert_eq!(ub, UbKind::IndeterminateValueUse);
        // Under the strict-ISO model the read itself is already UB.
        let out = run_with_model(
            "int main(void) { int x; return x; }",
            ModelConfig::strict_iso(),
        )
        .unwrap();
        assert_eq!(out.outcomes[0].result.ub_kind(), Some(UbKind::IndeterminateValueUse));
    }

    #[test]
    fn unsequenced_race_is_detected() {
        // i = i++ + 1: the store of the assignment and the increment's store
        // are unsequenced (6.5p2).
        let out = run("int main(void) { int i = 0; i = i++ + 1; return i; }").unwrap();
        assert!(
            out.outcomes[0].result.ub_kind() == Some(UbKind::UnsequencedRace),
            "expected an unsequenced race, got {:?}",
            out.outcomes[0]
        );
    }

    #[test]
    fn exhaustive_mode_explores_argument_orders() {
        // Calling two functions with side effects in one expression: the
        // order is unspecified, so both results are allowed behaviours.
        let src = "int trace = 0;\n\
                   int f(void) { trace = trace * 10 + 1; return 0; }\n\
                   int g(void) { trace = trace * 10 + 2; return 0; }\n\
                   int add(int a, int b) { return trace; }\n\
                   int main(void) { return add(f(), g()); }";
        let out = Pipeline::new(Config::default().exhaustive(64)).run_source(src).unwrap();
        let values: Vec<i128> = out
            .outcomes
            .iter()
            .filter_map(cerberus_exec::driver::main_return_value)
            .collect();
        assert!(values.contains(&12) && values.contains(&21), "outcomes: {values:?}");
    }

    #[test]
    fn provenance_example_differs_across_models() {
        // The §2.1 DR260 example (globals declared so the one-past pointer of
        // x aliases y under adjacent allocation).
        let src = "#include <stdio.h>\n\
                   #include <string.h>\n\
                   int x = 1, y = 2;\n\
                   int main() {\n\
                     int *p = &x + 1;\n\
                     int *q = &y;\n\
                     if (memcmp(&p, &q, sizeof(p)) == 0) {\n\
                       *p = 11;\n\
                       printf(\"x=%d y=%d *p=%d *q=%d\\n\", x, y, *p, *q);\n\
                     }\n\
                     return 0;\n\
                   }";
        // Concrete semantics: the store hits y.
        let concrete = run_with_model(src, ModelConfig::concrete()).unwrap();
        assert_eq!(concrete.outcomes[0].stdout, "x=1 y=11 *p=11 *q=11\n");
        // Candidate de facto model: the access is undefined behaviour.
        let de_facto = run_with_model(src, ModelConfig::de_facto()).unwrap();
        assert_eq!(de_facto.outcomes[0].result.ub_kind(), Some(UbKind::OutOfBoundsAccess));
        // GCC-like provenance-optimising semantics: y keeps its value.
        let gcc = run_with_model(src, ModelConfig::gcc_like()).unwrap();
        assert_eq!(gcc.outcomes[0].stdout, "x=1 y=2 *p=11 *q=2\n");
    }

    #[test]
    fn relational_comparison_across_objects_follows_model() {
        let src = "int a, b;\nint main(void) { return &a < &b || &a > &b; }";
        assert_eq!(exit_of(src), 1);
        let iso = run_with_model(src, ModelConfig::strict_iso()).unwrap();
        assert_eq!(
            iso.outcomes[0].result.ub_kind(),
            Some(UbKind::RelationalCompareDifferentObjects)
        );
    }

    #[test]
    fn pointer_int_round_trip() {
        let src = "int main(void) { int x = 7; unsigned long a = (unsigned long)&x; int *p = (int*)a; return *p; }";
        assert_eq!(exit_of(src), 7);
        // Under the block model the round-tripped pointer is unusable.
        let blk = run_with_model(src, ModelConfig::block()).unwrap();
        assert!(blk.outcomes[0].result.is_undef());
    }

    #[test]
    fn logical_operators_short_circuit() {
        assert_eq!(
            exit_of(
                "int calls = 0; int boom(void) { calls++; return 1; }\n\
                 int main(void) { int r = 0 && boom(); return calls * 10 + r; }"
            ),
            0
        );
        assert_eq!(
            exit_of(
                "int calls = 0; int boom(void) { calls++; return 0; }\n\
                 int main(void) { int r = 1 || boom(); return calls * 10 + r; }"
            ),
            1
        );
    }

    #[test]
    fn conditional_expression() {
        assert_eq!(exit_of("int main(void) { int x = 5; return x > 3 ? 42 : 7; }"), 42);
        assert_eq!(exit_of("int main(void) { int x = 1; return x > 3 ? 42 : 7; }"), 7);
    }

    #[test]
    fn compound_assignment_and_increments() {
        assert_eq!(
            exit_of("int main(void) { int x = 10; x += 5; x *= 2; x -= 4; x /= 2; return x; }"),
            13
        );
        assert_eq!(
            exit_of("int main(void) { int i = 5; int a = i++; int b = ++i; return a * 10 + b; }"),
            57
        );
    }

    #[test]
    fn string_literals_are_readable_and_immutable() {
        assert_eq!(exit_of("int main(void) { char *s = \"AB\"; return s[0] + s[1]; }"), 131);
        let out = run("int main(void) { char *s = \"AB\"; s[0] = 'x'; return 0; }").unwrap();
        assert_eq!(out.outcomes[0].result.ub_kind(), Some(UbKind::StringLiteralModification));
    }

    #[test]
    fn frontend_errors_are_reported() {
        assert!(matches!(run("int main(void) { return zz; }"), Err(PipelineError::Frontend(_))));
        assert!(matches!(run("int main(void) { return 0 }"), Err(PipelineError::Frontend(_))));
    }

    #[test]
    fn exit_builtin() {
        let out = run("#include <stdlib.h>\nint main(void) { exit(3); return 0; }").unwrap();
        assert_eq!(out.outcomes[0].result, ExecResult::Exit(3));
    }
}
