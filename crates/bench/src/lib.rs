//! Criterion benchmarks and the table/figure reproduction harness (see `benches/` and `src/bin/reproduce.rs`).
