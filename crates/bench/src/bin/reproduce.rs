//! `reproduce`: regenerate every table, figure and quantitative claim of the
//! paper's evaluation (the experiment index E1–E18 of DESIGN.md), printing
//! paper-reported values next to the values measured from this
//! reimplementation.
//!
//! Usage: `cargo run -p cerberus-bench --bin reproduce [--quick]
//! [--models name,name,...] [--fuzz N] [--analyze] [--json] [--serve ADDR]`
//!
//! `--models` restricts the per-model experiments (E11/E17) to the named
//! configurations of `ModelConfig::all_named()` — e.g.
//! `--models concrete,symbolic` is the CI smoke run pitting the concrete
//! byte engine against the symbolic provenance engine.
//!
//! `--fuzz N` skips the experiments and instead runs N generated seeds
//! through the full pipeline under a wall-clock-bounded resource budget (the
//! CI fuzz smoke job): every seed must end in a structured verdict — agree
//! or budget exhaustion — and any disagreement, pipeline failure or
//! contained engine fault makes the run exit nonzero.
//!
//! `--analyze` skips the experiments and instead runs the static UB analyzer
//! over the litmus catalogue, printing per-test Must/May finding counts and
//! the UB kinds reported — the static half of the soundness cross-validation
//! in `tests/analysis_soundness.rs`.
//!
//! `--json` emits the executable experiments (E5, E11/E17, E15/E16) as one
//! JSON document on stdout, using the same encoder the UB-oracle service's
//! API responses use, plus the job-queue statistics of the run.
//!
//! `--serve ADDR` starts the UB-oracle HTTP service on `ADDR` and blocks (a
//! shorthand for the `cerberus-serve` binary).
//!
//! The suite-per-model and differential experiments are routed through the
//! work-stealing [`cerberus_queue::JobQueue`] — the same worker pool the
//! service runs on — with tallies bit-identical to the sequential paths.

use cerberus::core_lang::pretty::expr_to_string;
use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_ast::questions::{Question, QuestionCategory};
use cerberus_gen::{
    diff_one_bounded_in, generate, run_differential_queued, DiffOutcome, DiffSummary, GenConfig,
};
use cerberus_litmus::{catalogue, check, run_suite_queued, Verdict};
use cerberus_memory::cheri;
use cerberus_memory::config::{ModelConfig, ToolProfile};
use cerberus_memory::value::Provenance;
use cerberus_queue::JobQueue;
use cerberus_server::json::Json;
use cerberus_server::render;
use cerberus_survey as survey;

fn heading(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Render every diagnostic of a front-end failure (the desugarer collects all
/// independently diagnosable constraint violations, not just the first) and
/// exit with the usage-error code.
fn frontend_failure(context: &str, e: &cerberus::PipelineError) -> ! {
    eprintln!(
        "error: {context} failed in the front end with {} diagnostic(s):",
        e.diagnostic_count()
    );
    for diagnostic in e.diagnostics() {
        eprintln!("  {diagnostic}");
    }
    std::process::exit(2);
}

/// The models the per-model experiments run under: all of them by default, or
/// the `--models a,b,c` selection. An unknown name, a missing value, or an
/// empty selection is a hard error — a smoke run that silently executed zero
/// models would still exit 0 and turn the CI gate green.
fn selected_models(args: &[String]) -> Vec<ModelConfig> {
    let mut names: Option<String> = None;
    for (i, arg) in args.iter().enumerate() {
        if let Some(list) = arg.strip_prefix("--models=") {
            names = Some(list.to_owned());
        } else if arg == "--models" {
            match args.get(i + 1) {
                Some(value) if !value.starts_with("--") => names = Some(value.clone()),
                _ => {
                    eprintln!("error: --models requires a comma-separated list of model names");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(list) = names else {
        return ModelConfig::all_named();
    };
    let models: Vec<ModelConfig> = list
        .split(',')
        .map(str::trim)
        .filter(|name| !name.is_empty())
        .map(|name| {
            ModelConfig::by_name(name).unwrap_or_else(|| {
                let known: Vec<&str> = ModelConfig::all_named().iter().map(|m| m.name).collect();
                eprintln!(
                    "error: unknown model '{name}' (known models: {})",
                    known.join(", ")
                );
                std::process::exit(2);
            })
        })
        .collect();
    if models.is_empty() {
        eprintln!("error: --models selected no models");
        std::process::exit(2);
    }
    models
}

/// The `--fuzz N` seed count, if the flag is present. A malformed count is a
/// hard error for the same reason an empty `--models` selection is.
fn fuzz_count(args: &[String]) -> Option<usize> {
    for (i, arg) in args.iter().enumerate() {
        let value = match arg.strip_prefix("--fuzz=") {
            Some(value) => Some(value.to_owned()),
            None if arg == "--fuzz" => args.get(i + 1).cloned(),
            None => continue,
        };
        match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(count) if count > 0 => return Some(count),
            _ => {
                eprintln!("error: --fuzz requires a positive seed count");
                std::process::exit(2);
            }
        }
    }
    None
}

/// The CI fuzz smoke run: `count` generated seeds through the full pipeline
/// under a wall-clock-bounded resource budget. Every seed must end in a
/// structured verdict; disagreements, pipeline failures and contained engine
/// faults are reported and make the run exit nonzero.
fn fuzz_smoke(count: usize) -> ! {
    use cerberus::pipeline::Config;
    use cerberus_memory::limits::ResourceLimits;

    let limits = ResourceLimits::default()
        .with_wall_clock_ms(5_000)
        .with_heap_bytes(64 << 20)
        .with_max_live_allocations(1 << 16);
    let session =
        Session::new(Config::with_model(ModelConfig::concrete()).with_limits(limits.clone()));
    let (mut agree, mut timeout, mut bad) = (0usize, 0usize, 0usize);
    for seed in 0..count as u64 {
        let program = generate(seed, GenConfig::small());
        match diff_one_bounded_in(&session, &program, &limits) {
            DiffOutcome::Agree => agree += 1,
            DiffOutcome::Timeout => timeout += 1,
            DiffOutcome::Disagree { expected, observed } => {
                bad += 1;
                eprintln!("seed {seed}: DISAGREE expected {expected}, observed {observed}");
            }
            DiffOutcome::Failure(e) => {
                bad += 1;
                eprintln!("seed {seed}: pipeline failure: {e}");
            }
            DiffOutcome::Fault(payload) => {
                bad += 1;
                eprintln!("seed {seed}: contained engine fault: {payload}");
            }
        }
    }
    println!("fuzz smoke: {count} seeds — {agree} agree, {timeout} budget-exhausted, {bad} bad");
    std::process::exit(if bad > 0 { 1 } else { 0 });
}

/// The `--analyze` mode: run the static UB analyzer (validator + abstract
/// interpretation) over every litmus test and print one row per test — the
/// Must/May finding counts, the abstract step cost, the UB kinds reported
/// and the strongest finding's witness (the satisfying assignment realising
/// a Must finding, or the residual constraint under which a May finding
/// fires). The static column is what the soundness harness
/// (`tests/analysis_soundness.rs`) cross-validates against the dynamic
/// matrices; this mode is the human-readable view of the same pass. An
/// aborted analysis (an interpreter panic downgraded to a structured report)
/// exits nonzero: the analyzer is expected to be total.
fn analyze_corpus() -> ! {
    use cerberus::analysis::FindingSeverity;

    let session = Session::default();
    let suite = catalogue();
    println!(
        "{:<44} {:>4} {:>4} {:>8}  {:<36} ub kinds",
        "test", "must", "may", "steps", "witness"
    );
    let mut aborted = 0usize;
    for test in &suite {
        match session.analyze(&test.source) {
            Ok(report) => {
                if report.aborted.is_some() {
                    aborted += 1;
                }
                let musts = report
                    .findings
                    .iter()
                    .filter(|f| f.severity == FindingSeverity::Must)
                    .count();
                let mays = report.findings.len() - musts;
                let kinds: Vec<&str> = report.ub_kinds().iter().map(|k| k.core_name()).collect();
                // The strongest finding's evidence: Must sorts before May,
                // so this is a realising assignment whenever one exists.
                let witness = report
                    .findings
                    .iter()
                    .min_by_key(|f| f.severity)
                    .map(|f| f.witness.to_string())
                    .unwrap_or_else(|| "-".to_owned());
                println!(
                    "{:<44} {:>4} {:>4} {:>8}{} {:<36} {}",
                    test.name,
                    musts,
                    mays,
                    report.steps_used,
                    if report.budget_exhausted { "!" } else { " " },
                    witness,
                    kinds.join(", ")
                );
            }
            Err(e) => println!(
                "{:<44} front-end rejection ({} diagnostic(s))",
                test.name,
                e.diagnostic_count()
            ),
        }
    }
    let stats = session.cache_stats();
    println!(
        "\n{} tests analyzed ('!' marks an exhausted step budget); {} aborted; \
         solver memo {}/{} hits",
        suite.len(),
        aborted,
        stats.solver_hits,
        stats.solver_lookups(),
    );
    std::process::exit(if aborted > 0 { 1 } else { 0 });
}

/// The `--serve ADDR` target, if the flag is present.
fn serve_addr(args: &[String]) -> Option<String> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(addr) = arg.strip_prefix("--serve=") {
            return Some(addr.to_owned());
        }
        if arg == "--serve" {
            match args.get(i + 1) {
                Some(addr) if !addr.starts_with("--") => return Some(addr.clone()),
                _ => {
                    eprintln!("error: --serve requires a HOST:PORT address");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Run the UB-oracle service in the foreground (the `--serve` mode).
fn serve_forever(addr: &str) -> ! {
    let server = cerberus_server::serve(addr, cerberus_server::ServerConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("error: cannot serve on {addr}: {e}");
            std::process::exit(2);
        });
    println!(
        "reproduce: UB-oracle service on {} ({} workers); POST /api/v0/submit",
        server.local_addr(),
        server.queue().worker_count()
    );
    loop {
        std::thread::park();
    }
}

fn diff_summary_to_json(summary: &DiffSummary) -> Json {
    Json::obj([
        ("agree", Json::Int(summary.agree as i128)),
        ("disagree", Json::Int(summary.disagree as i128)),
        ("timeout", Json::Int(summary.timeout as i128)),
        ("failed", Json::Int(summary.failed as i128)),
        ("faulted", Json::Int(summary.faulted as i128)),
        ("total", Json::Int(summary.total as i128)),
    ])
}

/// The `--json` report: the executable experiments rendered with the same
/// encoder the service's API uses, plus the queue statistics of this run.
/// Returns the document and the number of contained engine faults (the
/// exit-status signal, matching the text mode).
fn json_report(queue: &JobQueue, models: &[ModelConfig], quick: bool) -> (Json, usize) {
    let mut engine_faults = 0usize;
    let suite = catalogue();
    let dr260 = suite
        .iter()
        .find(|t| t.name == "provenance_basic_global_xy")
        .expect("test exists");
    let matrix = DifferentialRunner::new(vec![
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::gcc_like(),
    ])
    .run(&cerberus_litmus::elaborate(dr260));

    let litmus: Vec<Json> = models
        .iter()
        .map(|model| {
            let summary = run_suite_queued(queue, model);
            engine_faults += summary.faulted;
            render::suite_summary_to_json(&summary)
        })
        .collect();

    let (small_n, large_n) = if quick { (25, 5) } else { (200, 40) };
    let small = run_differential_queued(queue, small_n, GenConfig::small(), 2_000_000);
    let large = run_differential_queued(
        queue,
        large_n,
        GenConfig::large(),
        if quick { 200_000 } else { 1_000_000 },
    );
    engine_faults += small.faulted + large.faulted;

    let document = Json::obj([
        ("e5_dr260", render::matrix_to_json(&matrix)),
        ("e11_e17_litmus", Json::Arr(litmus)),
        ("e15_small", diff_summary_to_json(&small)),
        ("e16_large", diff_summary_to_json(&large)),
        ("queue", render::queue_stats_to_json(&queue.stats())),
    ]);
    (document, engine_faults)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(addr) = serve_addr(&args) {
        serve_forever(&addr);
    }
    if let Some(count) = fuzz_count(&args) {
        fuzz_smoke(count);
    }
    if args.iter().any(|a| a == "--analyze") {
        analyze_corpus();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let models = selected_models(&args);
    // The worker pool shared by the queued experiments (E11/E17, E15/E16).
    let queue = JobQueue::start(
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2),
    );

    if args.iter().any(|a| a == "--json") {
        let (document, engine_faults) = json_report(&queue, &models, quick);
        println!("{}", document.encode());
        queue.shutdown();
        std::process::exit(if engine_faults > 0 { 1 } else { 0 });
    }

    // E1 — survey respondent expertise.
    heading("E1", "survey respondent expertise (paper §2 table)");
    for row in survey::respondent_expertise() {
        println!("  {:<42} {}", row.category, row.count);
    }
    println!("  total responses: {}", survey::TOTAL_RESPONSES);

    // E2 — question categories.
    heading("E2", "design-space question categories (paper §2)");
    for &cat in QuestionCategory::all() {
        println!("  {:<55} {}", cat.label(), cat.paper_count());
    }
    println!(
        "  categories: {}, questions: {}",
        QuestionCategory::all().len(),
        QuestionCategory::total_questions()
    );

    // E3 — clarity aggregates.
    heading("E3", "ISO vs de facto clarity (paper: 38 / 28 / 26 of 85)");
    let agg = Question::paper_aggregates();
    println!(
        "  paper:    total {} | ISO unclear {} | de facto unclear {} | differ {}",
        agg.total, agg.iso_unclear, agg.de_facto_unclear, agg.iso_de_facto_differ
    );
    let discussed = Question::discussed();
    let iso_unclear = discussed
        .iter()
        .filter(|q| q.iso == cerberus_ast::questions::Clarity::Unclear)
        .count();
    let differ = discussed.iter().filter(|q| q.differs).count();
    println!(
        "  encoded subset ({} questions discussed in the paper body): ISO unclear {}, differ {}",
        discussed.len(),
        iso_unclear,
        differ
    );

    // E4, E6–E10 — survey splits.
    heading(
        "E4/E6-E10",
        "published survey splits (percentages recomputed from counts)",
    );
    for q in survey::published_questions() {
        println!("  [{}/15] {}", q.index, q.statement);
        for a in &q.answers {
            println!(
                "      {:<45} {:>3}  ({:>2}%)",
                a.answer,
                a.count,
                a.percentage()
            );
        }
    }

    // E5 — the DR260 provenance example under three models.
    heading(
        "E5",
        "provenance_basic_global_xy under concrete / de facto / GCC-like models",
    );
    let suite = catalogue();
    let dr260 = suite
        .iter()
        .find(|t| t.name == "provenance_basic_global_xy")
        .expect("test exists");
    // One elaboration, three models: the differential-runner fast path.
    let matrix = DifferentialRunner::new(vec![
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::gcc_like(),
    ])
    .run(&cerberus_litmus::elaborate(dr260));
    for row in matrix.rows() {
        let first = &row.outcome.outcomes[0];
        println!(
            "  {:<10} -> {} {}",
            row.model,
            first.result,
            if first.stdout.is_empty() {
                String::new()
            } else {
                format!("stdout: {:?}", first.stdout)
            }
        );
    }
    println!("  paper: concrete x=1 y=11 *p=11 *q=11; GCC x=1 y=2 *p=11 *q=2; candidate model: UB");

    // E11 / E17 — the litmus suite under every model and tool profile.
    heading(
        "E11/E17",
        "litmus suite verdicts per memory model / tool profile",
    );
    println!(
        "  {:<16} {:>8} {:>8} {:>14} {:>8} {:>8}",
        "model", "flagged", "passed", "as-expected", "skipped", "faulted"
    );
    let mut engine_faults = 0usize;
    for model in &models {
        // Fanned out over the shared worker pool; tallies bit-identical to
        // the sequential `run_suite`.
        let summary = run_suite_queued(&queue, model);
        engine_faults += summary.faulted;
        println!(
            "  {:<16} {:>8} {:>8} {:>9}/{:<4} {:>8} {:>8}",
            summary.model,
            summary.flagged,
            summary.passed,
            summary.as_expected,
            summary.with_expectation,
            summary.skipped_expectations.len(),
            summary.faulted
        );
        if !summary.skipped_expectations.is_empty() {
            println!(
                "  !! expectation holes under '{}': {}",
                summary.model,
                summary.skipped_expectations.join(", ")
            );
        }
        if summary.faulted > 0 {
            println!(
                "  !! engine fault: {} of {} tests panicked inside model '{}' (contained)",
                summary.faulted, summary.total, summary.model
            );
        }
    }
    println!("  paper (§3): sanitisers flag few unspecified/padding tests; tis-interpreter is strict; KCC mixed");
    let de_facto_expectations = catalogue()
        .iter()
        .map(|t| check(t, &ModelConfig::de_facto()))
        .filter(|v| matches!(v, Verdict::AsExpected))
        .count();
    println!(
        "  candidate de facto model has the intended behaviour on {de_facto_expectations} of {} encoded tests (paper reports 9 of its much larger suite at submission time)",
        catalogue().len()
    );

    // E12 — CHERI findings.
    heading("E12", "CHERI C findings (§4)");
    let a = cheri::Capability {
        base: 0x1_0000,
        length: 4,
        offset: 4,
        tag: true,
        prov: Provenance::Alloc(1),
    };
    let b = cheri::Capability {
        base: 0x1_0004,
        length: 4,
        offset: 0,
        tag: true,
        prov: Provenance::Alloc(2),
    };
    println!(
        "  pointer equality: by-address {} vs exact-equals {} (paper: CHERI added a compare-exactly-equal instruction)",
        cheri::eq_by_address(&a, &b),
        cheri::eq_exact(&a, &b)
    );
    let i = cheri::Capability {
        base: 0x1_0000,
        length: 64,
        offset: 8,
        tag: true,
        prov: Provenance::Alloc(1),
    };
    println!(
        "  (i & 3u) with address semantics = {} ; with CHERI offset semantics = {} (paper: the defensive alignment check fails)",
        cheri::uintptr_bitand_address_semantics(&i, 3),
        cheri::uintptr_bitand_offset_semantics(&i, 3)
    );
    println!(
        "  arithmetic provenance is inherited from the left operand: {:?}",
        cheri::arithmetic_provenance(Provenance::Alloc(1), Provenance::Alloc(2))
    );

    // E13 — architecture LOS counts (Fig. 1 analogue).
    heading(
        "E13",
        "architecture phases (Fig. 1; paper LOS counts vs this repository's crates)",
    );
    let paper = [
        ("parsing", 2600),
        ("Cabs", 600),
        ("Cabs_to_Ail", 2800),
        ("Ail", 1100),
        ("type inference/checking", 2800),
        ("elaboration", 1700),
        ("Core", 1400),
        ("Core-to-Core transformation", 600),
        ("Core operational semantics", 3100),
        ("memory object model", 1500),
    ];
    for (phase, los) in paper {
        println!("  paper {:<32} {:>6} LOS", phase, los);
    }
    println!("  this repository: crates parser / ail / core / elab / exec / memory (see `tokei`-style counts in EXPERIMENTS.md)");

    // E14 — the Fig. 3 left-shift elaboration.
    heading("E14", "elaboration of e1 << e2 (Fig. 3)");
    let program = Session::default()
        .elaborate("int shift(int a, int b) { return a << b; }")
        .unwrap_or_else(|e| frontend_failure("the Fig. 3 shift example", &e));
    let body = expr_to_string(&program.core().proc("shift").expect("proc").body);
    let interesting: Vec<&str> = body
        .lines()
        .filter(|l| l.contains("undef(") || l.contains("let weak") || l.contains("unseq("))
        .collect();
    for line in &interesting {
        println!("  {}", line.trim_start());
    }
    println!("  (full elaboration: {} lines of Core; the undef(Negative_shift) / undef(Shift_too_large) / undef(Exceptional_condition) tests of Fig. 3 are present)", body.lines().count());

    // E15/E16 — differential validation.
    let (small_n, large_n) = if quick { (25, 5) } else { (200, 40) };
    heading(
        "E15",
        "differential validation on small generated programs (§6: 556/561 agree, 5 time out)",
    );
    let small = run_differential_queued(&queue, small_n, GenConfig::small(), 2_000_000);
    println!(
        "  measured: {}/{} agree, {} disagree, {} timeout, {} failed, {} faulted",
        small.agree, small.total, small.disagree, small.timeout, small.failed, small.faulted
    );
    heading("E16", "differential validation on larger generated programs (§6: 316 agree, 56 time out, 6 fail of 400)");
    let large = run_differential_queued(
        &queue,
        large_n,
        GenConfig::large(),
        if quick { 200_000 } else { 1_000_000 },
    );
    println!(
        "  measured: {}/{} agree, {} disagree, {} timeout, {} failed, {} faulted",
        large.agree, large.total, large.disagree, large.timeout, large.failed, large.faulted
    );
    engine_faults += small.faulted + large.faulted;

    // E18 — translation validation.
    heading("E18", "tvc translation validation of trivial programs (§6)");
    let programs = [
        "int main(void) { return 1 + 2 * 3; }",
        "int main(void) { int a = 6; int b = 7; return a * b; }",
        "int main(void) { int a = 10; int b = 4; int c = a - b; return c * c; }",
        "int main(void) { int x = 0; if (x) return 1; return 0; }",
    ];
    let mut validated = 0;
    let mut unsupported = 0;
    for p in programs {
        match cerberus::tvc::validate(p).expect("validator runs") {
            cerberus::tvc::TvcVerdict::Validated { .. } => validated += 1,
            cerberus::tvc::TvcVerdict::Unsupported(_) => unsupported += 1,
            cerberus::tvc::TvcVerdict::Mismatch { .. } => println!("  MISMATCH on {p}"),
        }
    }
    println!("  {validated} validated, {unsupported} outside the supported fragment (paper: tvc supports only extremely simple single-function programs)");

    // Reference the tool profiles so the dependency is exercised even in
    // quick mode.
    let _ = ModelConfig::tool(ToolProfile::Kcc);

    queue.shutdown();
    if engine_faults > 0 {
        println!(
            "\n{engine_faults} contained engine fault(s) across the experiments — the runs \
             completed, but at least one memory model panicked. See the per-suite fault \
             counts above."
        );
        std::process::exit(1);
    }
    println!("\nAll experiments regenerated. See EXPERIMENTS.md for the recorded comparison.");
}
