//! End-to-end drill of `reproduce --analyze`: run the built binary over the
//! litmus corpus and check the rendered static-analysis table.

use std::process::Command;

#[test]
fn reproduce_analyze_renders_the_corpus_table_and_exits_zero() {
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("--analyze")
        .output()
        .expect("reproduce --analyze runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "exit {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );

    // The table header and some known verdicts from the golden corpus.
    assert!(stdout.contains("ub kinds"), "{stdout}");
    assert!(
        stdout.contains("null_pointer_dereference") || stdout.contains("Null_pointer_dereference"),
        "{stdout}"
    );
    let divide = stdout
        .lines()
        .find(|l| l.starts_with("misc_divide_by_zero"))
        .expect("misc_divide_by_zero row");
    assert!(divide.contains("Division_by_zero"), "{divide}");

    // Every fixture analyzed, none aborted.
    assert!(stdout.contains("; 0 aborted"), "{stdout}");
}
