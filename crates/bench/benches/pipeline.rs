//! Benchmarks of the pipeline phases (the Fig. 1 architecture): parsing,
//! desugaring/type-checking, elaboration, and end-to-end execution.

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus::pipeline::{Config, Session};

const QUICKSORT: &str = r#"
int data[64];
void fill(void) { for (int i = 0; i < 64; i++) data[i] = (i * 37 + 11) % 64; }
void sort(int lo, int hi) {
  if (lo >= hi) return;
  int pivot = data[hi]; int i = lo;
  for (int j = lo; j < hi; j++) {
    if (data[j] < pivot) { int t = data[i]; data[i] = data[j]; data[j] = t; i++; }
  }
  int t = data[i]; data[i] = data[hi]; data[hi] = t;
  sort(lo, i - 1); sort(i + 1, hi);
}
int main(void) {
  fill(); sort(0, 63);
  int acc = 0;
  for (int i = 0; i < 64; i++) acc += data[i] * i;
  return acc % 128;
}
"#;

fn bench_pipeline(c: &mut Criterion) {
    let session = Session::new(Config::default());
    let mut group = c.benchmark_group("pipeline_phases");
    group.sample_size(20);
    group.bench_function("parse", |b| {
        b.iter(|| cerberus::parser::parse_translation_unit(QUICKSORT).unwrap())
    });
    group.bench_function("frontend", |b| {
        b.iter(|| session.desugar(QUICKSORT).unwrap())
    });
    group.bench_function("elaborate", |b| {
        b.iter(|| session.elaborate(QUICKSORT).unwrap())
    });
    group.bench_function("execute", |b| {
        let driver = session.driver(QUICKSORT).unwrap();
        b.iter(|| driver.run_random(0))
    });
    group.bench_function("end_to_end_cold", |b| {
        b.iter(|| session.run_source(QUICKSORT).unwrap())
    });
    group.bench_function("end_to_end_reused_artifact", |b| {
        let program = session.elaborate(QUICKSORT).unwrap();
        let config = session.config();
        b.iter(|| program.execute_bounded(&config.model, config.mode, &config.limits))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
