//! Benchmark: the static UB analyzer over the whole litmus corpus.
//!
//! Three timing rows plus a set of counter rows:
//!
//! * `corpus_path_sensitive` is the headline number: analyze every litmus
//!   fixture with a fresh session (cold analysis memo, cold solver memo) in
//!   the default path-sensitive mode — the whole-corpus throughput the
//!   ROADMAP asks to track.
//! * `corpus_flow_baseline` is the same sweep in the flow-join baseline
//!   mode, so the cost of path sensitivity (constraint tracking + solver
//!   calls) is measurable as the delta.
//! * `corpus_memoized` re-analyzes the corpus through a warm session: every
//!   report resolves from the per-source analysis memo.
//!
//! The counter rows (recorded with `samples: 0` via the criterion shim's
//! `record_value`) snapshot one cold whole-corpus pass: fixtures analyzed,
//! paths explored/pruned, solver queries and solver memo hits. The committed
//! `BENCH_analysis.json` checkpoint must show `solver_memo_hits > 0` — the
//! Johnson-style memoization is only worth its table if constraint subgoals
//! actually recur across the corpus (`tests/bench_checkpoints.rs` enforces
//! this).

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus::analysis::AnalysisConfig;
use cerberus::pipeline::Session;

fn bench_analysis(c: &mut Criterion) {
    let suite = cerberus_litmus::catalogue();

    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("corpus_path_sensitive", |b| {
        b.iter(|| {
            let session = Session::default();
            let mut findings = 0usize;
            for test in &suite {
                if let Ok(report) = session.analyze(&test.source) {
                    findings += report.findings.len();
                }
            }
            findings
        })
    });
    group.bench_function("corpus_flow_baseline", |b| {
        b.iter(|| {
            let session = Session::default();
            let mut findings = 0usize;
            for test in &suite {
                if let Ok(report) =
                    session.analyze_with(&test.source, AnalysisConfig::default().flow_baseline())
                {
                    findings += report.findings.len();
                }
            }
            findings
        })
    });
    group.bench_function("corpus_memoized", |b| {
        let session = Session::default();
        for test in &suite {
            let _ = session.analyze(&test.source);
        }
        b.iter(|| {
            let mut findings = 0usize;
            for test in &suite {
                if let Ok(report) = session.analyze(&test.source) {
                    findings += report.findings.len();
                }
            }
            findings
        })
    });
    group.finish();

    // One cold pass, instrumented: the solver memo hit rate and path counts
    // the checkpoint records alongside the timings.
    let session = Session::default();
    let mut analyzed = 0u128;
    let mut paths_explored = 0u128;
    let mut paths_pruned = 0u128;
    for test in &suite {
        if let Ok(report) = session.analyze(&test.source) {
            analyzed += 1;
            paths_explored += report.paths_explored as u128;
            paths_pruned += report.paths_pruned as u128;
        }
    }
    let stats = session.cache_stats();
    println!(
        "analysis counters: {analyzed} fixtures, {paths_explored} paths explored \
         ({paths_pruned} pruned), solver memo {}/{} hits",
        stats.solver_hits,
        stats.solver_lookups()
    );
    criterion::record_value("analysis_counters", "fixtures_analyzed", analyzed);
    criterion::record_value("analysis_counters", "paths_explored", paths_explored);
    criterion::record_value("analysis_counters", "paths_pruned", paths_pruned);
    criterion::record_value(
        "analysis_counters",
        "solver_queries",
        u128::from(stats.solver_lookups()),
    );
    criterion::record_value(
        "analysis_counters",
        "solver_memo_hits",
        u128::from(stats.solver_hits),
    );
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
