//! Benchmark: the de facto litmus suite executed under each memory object
//! model (experiments E5–E12/E17 — the per-model comparison workload).

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus_litmus::{catalogue, run_under};
use cerberus_memory::config::ModelConfig;

fn bench_litmus(c: &mut Criterion) {
    let suite = catalogue();
    let mut group = c.benchmark_group("litmus_suite");
    group.sample_size(10);
    for model in [
        ModelConfig::concrete(),
        ModelConfig::de_facto(),
        ModelConfig::strict_iso(),
    ] {
        group.bench_function(model.name, |b| {
            b.iter(|| {
                for test in &suite {
                    let _ = run_under(test, &model);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_litmus);
criterion_main!(benches);
