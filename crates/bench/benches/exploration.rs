//! Benchmark: exhaustive exploration of all allowed behaviours vs a single
//! pseudorandom path (the §5.1 dual driver modes).

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus::pipeline::{Config, Session};

const NONDET: &str = r#"
int trace = 0;
int f(void) { trace = trace * 10 + 1; return 1; }
int g(void) { trace = trace * 10 + 2; return 2; }
int h(void) { trace = trace * 10 + 3; return 3; }
int sum(int a, int b, int c) { return a + b + c; }
int main(void) { return sum(f(), g(), h()) + trace % 7; }
"#;

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(10);
    group.bench_function("random_single_path", |b| {
        let driver = Session::new(Config::default()).driver(NONDET).unwrap();
        b.iter(|| driver.run_random(1))
    });
    group.bench_function("exhaustive_64", |b| {
        let driver = Session::new(Config::default()).driver(NONDET).unwrap();
        b.iter(|| driver.run_exhaustive(64))
    });
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
