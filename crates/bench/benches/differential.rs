//! Benchmark: the csmith-lite differential validation workload (experiment
//! E15/E16 — Cerberus vs the reference oracle).

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus_gen::{diff_one, generate, GenConfig};

fn bench_differential(c: &mut Criterion) {
    let mut group = c.benchmark_group("differential");
    group.sample_size(10);
    group.bench_function("small_program", |b| {
        let program = generate(1, GenConfig::small());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    group.bench_function("large_program", |b| {
        let program = generate(1, GenConfig::large());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    group.finish();
}

criterion_group!(benches, bench_differential);
criterion_main!(benches);
