//! Benchmark: the csmith-lite differential validation workload (experiment
//! E15/E16 — Cerberus vs the reference oracle), plus the two optimisations
//! layered on the Session/DifferentialRunner pipeline:
//!
//! * `model_matrix_shared_artifact` is the **baseline**: one elaboration,
//!   every named model executed sequentially on the calling thread.
//! * `model_matrix_parallel` runs the same matrix through the parallel
//!   runner (one scoped thread per model) — the win scales with cores.
//! * `elaborate_uncached` vs `elaborate_memoized` measure the Session
//!   artifact cache: the memoized path resolves a repeated source by hash
//!   lookup instead of re-running parse/desugar/elaborate.
//! * `seed_batch_sequential` vs `seed_batch_parallel` measure batching
//!   csmith-lite seeds across threads over one shared session.

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_gen::{
    diff_one, generate, run_differential, run_differential_parallel, to_c_source, GenConfig,
};

fn bench_differential(c: &mut Criterion) {
    let mut group = c.benchmark_group("differential");
    group.sample_size(10);
    group.bench_function("small_program", |b| {
        let program = generate(1, GenConfig::small());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    group.bench_function("large_program", |b| {
        let program = generate(1, GenConfig::large());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    // One elaboration shared across the full model matrix (the Session-API
    // fast path: no per-model re-parse or re-elaboration). Sequential
    // execution — this is the baseline the parallel runner is measured
    // against.
    group.bench_function("model_matrix_shared_artifact", |b| {
        let source = to_c_source(&generate(1, GenConfig::small()));
        let program = Session::default().elaborate(&source).unwrap();
        let runner = DifferentialRunner::all_named();
        b.iter(|| runner.run_sequential(&program))
    });
    // The same matrix with the rows chunked across the available cores
    // (degrades to the sequential path on a single-core host).
    group.bench_function("model_matrix_parallel", |b| {
        let source = to_c_source(&generate(1, GenConfig::small()));
        let program = Session::default().elaborate(&source).unwrap();
        let runner = DifferentialRunner::all_named();
        b.iter(|| runner.run(&program))
    });
    // The exploration workflow end to end: resolve the source to an artifact
    // and run the full matrix, per iteration. The optimised path combines
    // the memo cache (elaboration becomes a hash lookup) with the parallel
    // runner; the baseline re-elaborates and runs sequentially.
    group.bench_function("end_to_end_uncached_sequential", |b| {
        let source = to_c_source(&generate(1, GenConfig::small()));
        let session = Session::default();
        let runner = DifferentialRunner::all_named();
        b.iter(|| runner.run_sequential(&session.elaborate_uncached(&source).unwrap()))
    });
    group.bench_function("end_to_end_memoized_parallel", |b| {
        let source = to_c_source(&generate(1, GenConfig::small()));
        let session = Session::default();
        let runner = DifferentialRunner::all_named();
        b.iter(|| runner.run(&session.elaborate(&source).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("elaboration_cache");
    group.sample_size(10);
    let source = to_c_source(&generate(1, GenConfig::large()));
    // Baseline: the full front end on every call.
    group.bench_function("elaborate_uncached", |b| {
        let session = Session::default();
        b.iter(|| session.elaborate_uncached(&source).unwrap())
    });
    // Memoized: after the warm-up call, every elaboration is a hash lookup.
    group.bench_function("elaborate_memoized", |b| {
        let session = Session::default();
        b.iter(|| session.elaborate(&source).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("seed_batch");
    group.sample_size(10);
    group.bench_function("seed_batch_sequential", |b| {
        b.iter(|| run_differential(16, GenConfig::small(), 2_000_000))
    });
    group.bench_function("seed_batch_parallel_4", |b| {
        b.iter(|| run_differential_parallel(16, GenConfig::small(), 2_000_000, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_differential);
criterion_main!(benches);
