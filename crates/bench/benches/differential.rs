//! Benchmark: the csmith-lite differential validation workload (experiment
//! E15/E16 — Cerberus vs the reference oracle).

use criterion::{criterion_group, criterion_main, Criterion};

use cerberus::pipeline::Session;
use cerberus::DifferentialRunner;
use cerberus_gen::{diff_one, generate, to_c_source, GenConfig};

fn bench_differential(c: &mut Criterion) {
    let mut group = c.benchmark_group("differential");
    group.sample_size(10);
    group.bench_function("small_program", |b| {
        let program = generate(1, GenConfig::small());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    group.bench_function("large_program", |b| {
        let program = generate(1, GenConfig::large());
        b.iter(|| diff_one(&program, 2_000_000))
    });
    // One elaboration shared across the full model matrix (the Session-API
    // fast path: no per-model re-parse or re-elaboration).
    group.bench_function("model_matrix_shared_artifact", |b| {
        let source = to_c_source(&generate(1, GenConfig::small()));
        let program = Session::default().elaborate(&source).unwrap();
        let runner = DifferentialRunner::all_named();
        b.iter(|| runner.run(&program))
    });
    group.finish();
}

criterion_group!(benches, bench_differential);
criterion_main!(benches);
