//! `csmith-lite`: a random well-defined C program generator, a reference
//! evaluator, and the differential-testing harness used to reproduce the §6
//! validation experiments.
//!
//! The paper validates Cerberus by running Csmith-generated programs and
//! comparing against GCC. Neither Csmith nor GCC is available to this
//! reproduction, so (per the substitution policy in DESIGN.md) this crate
//! provides the closest synthetic equivalent: a generator of random programs
//! drawn from a fragment in which every execution is defined (all arithmetic
//! at `unsigned long`, guarded `%`, bounded loops), an independent reference
//! evaluator for that fragment (playing GCC's role as the oracle), and a
//! harness that runs each program through the full Cerberus pipeline and
//! compares the printed checksum and exit status.

use std::collections::HashMap;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cerberus::exec::driver::ExecResult;
use cerberus::memory::config::ModelConfig;
use cerberus::memory::limits::ResourceLimits;
use cerberus::pipeline::Session;

/// Binary operators of the generated fragment (all defined at `unsigned
/// long`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise XOR.
    Xor,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
}

impl GOp {
    fn c_symbol(self) -> &'static str {
        match self {
            GOp::Add => "+",
            GOp::Sub => "-",
            GOp::Mul => "*",
            GOp::Xor => "^",
            GOp::And => "&",
            GOp::Or => "|",
        }
    }

    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            GOp::Add => a.wrapping_add(b),
            GOp::Sub => a.wrapping_sub(b),
            GOp::Mul => a.wrapping_mul(b),
            GOp::Xor => a ^ b,
            GOp::And => a & b,
            GOp::Or => a | b,
        }
    }
}

/// Expressions of the generated fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum GExpr {
    /// An unsigned constant.
    Const(u64),
    /// A variable use.
    Var(String),
    /// A binary operation.
    Bin(GOp, Box<GExpr>, Box<GExpr>),
    /// `expr % k` with a non-zero literal `k` (always defined).
    ModConst(Box<GExpr>, u64),
    /// A call to one of the generated helper functions.
    Call(String, Vec<GExpr>),
}

/// Statements of the generated fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum GStmt {
    /// `var = expr;`.
    Assign(String, GExpr),
    /// `if (expr % 2) { … } else { … }`.
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    /// `for (i = 0; i < n; i++) { … }` over a dedicated counter variable.
    For(u64, Vec<GStmt>),
}

/// A generated helper function: parameters, body, and the returned
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub struct GFunc {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements (assignments to locals mirroring the parameters).
    pub body: Vec<GStmt>,
    /// The returned expression.
    pub ret: GExpr,
}

/// A generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct GenProgram {
    /// Global variables with their initial values.
    pub globals: Vec<(String, u64)>,
    /// Helper functions.
    pub funcs: Vec<GFunc>,
    /// The body of `main` before the checksum is computed.
    pub body: Vec<GStmt>,
    /// The seed it was generated from.
    pub seed: u64,
}

/// Tuning knobs for the generator (the small/large split of §6).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of global variables.
    pub globals: usize,
    /// Number of helper functions.
    pub functions: usize,
    /// Number of top-level statements in `main`.
    pub statements: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Maximum loop trip count.
    pub max_loop: u64,
}

impl GenConfig {
    /// Small programs (the 561-test validation set analogue).
    pub fn small() -> Self {
        GenConfig {
            globals: 4,
            functions: 1,
            statements: 6,
            max_depth: 2,
            max_loop: 4,
        }
    }

    /// Larger programs (the 400-test, 40–600 line analogue).
    pub fn large() -> Self {
        GenConfig {
            globals: 8,
            functions: 3,
            statements: 20,
            max_depth: 3,
            max_loop: 8,
        }
    }
}

struct Generator {
    rng: StdRng,
    config: GenConfig,
    globals: Vec<String>,
    funcs: Vec<(String, usize)>,
}

impl Generator {
    fn expr(&mut self, depth: usize, locals: &[String]) -> GExpr {
        let choice = self.rng.gen_range(0..10);
        if depth == 0 || choice < 3 {
            if self.rng.gen_bool(0.5) || (self.globals.is_empty() && locals.is_empty()) {
                GExpr::Const(self.rng.gen_range(0..1000))
            } else {
                let pool: Vec<&String> = self.globals.iter().chain(locals.iter()).collect();
                let idx = self.rng.gen_range(0..pool.len());
                GExpr::Var(pool[idx].clone())
            }
        } else if choice < 8 {
            let op = match self.rng.gen_range(0..6) {
                0 => GOp::Add,
                1 => GOp::Sub,
                2 => GOp::Mul,
                3 => GOp::Xor,
                4 => GOp::And,
                _ => GOp::Or,
            };
            GExpr::Bin(
                op,
                Box::new(self.expr(depth - 1, locals)),
                Box::new(self.expr(depth - 1, locals)),
            )
        } else if choice == 8 || self.funcs.is_empty() {
            GExpr::ModConst(
                Box::new(self.expr(depth - 1, locals)),
                self.rng.gen_range(1..17),
            )
        } else {
            let idx = self.rng.gen_range(0..self.funcs.len());
            let (name, arity) = self.funcs[idx].clone();
            let args = (0..arity).map(|_| self.expr(depth - 1, locals)).collect();
            GExpr::Call(name, args)
        }
    }

    fn stmt(&mut self, depth: usize) -> GStmt {
        let choice = self.rng.gen_range(0..10);
        if depth == 0 || choice < 6 {
            let idx = self.rng.gen_range(0..self.globals.len());
            let target = self.globals[idx].clone();
            GStmt::Assign(target, self.expr(2, &[]))
        } else if choice < 8 {
            let then_len = self.rng.gen_range(1..3);
            let else_len = self.rng.gen_range(0..2);
            GStmt::If(
                self.expr(1, &[]),
                (0..then_len).map(|_| self.stmt(depth - 1)).collect(),
                (0..else_len).map(|_| self.stmt(depth - 1)).collect(),
            )
        } else {
            let n = self.rng.gen_range(1..=self.config.max_loop);
            let len = self.rng.gen_range(1..3);
            GStmt::For(n, (0..len).map(|_| self.stmt(depth - 1)).collect())
        }
    }
}

/// Generate a random well-defined program from a seed.
pub fn generate(seed: u64, config: GenConfig) -> GenProgram {
    let mut g = Generator {
        rng: StdRng::seed_from_u64(seed),
        config,
        globals: (0..config.globals).map(|i| format!("g{i}")).collect(),
        funcs: Vec::new(),
    };
    let globals: Vec<(String, u64)> = g
        .globals
        .clone()
        .into_iter()
        .map(|name| (name, g.rng.gen_range(0..100)))
        .collect();

    let mut funcs = Vec::new();
    for i in 0..config.functions {
        let name = format!("fn{i}");
        let params: Vec<String> = (0..2).map(|j| format!("p{j}")).collect();
        let ret = g.expr(2, &params);
        funcs.push(GFunc {
            name: name.clone(),
            params,
            body: Vec::new(),
            ret,
        });
        g.funcs.push((name, 2));
    }

    let body: Vec<GStmt> = (0..config.statements)
        .map(|_| g.stmt(config.max_depth))
        .collect();
    GenProgram {
        globals,
        funcs,
        body,
        seed,
    }
}

// ----- C source rendering ---------------------------------------------------

fn expr_to_c(e: &GExpr, out: &mut String) {
    match e {
        GExpr::Const(v) => {
            let _ = write!(out, "{v}ul");
        }
        GExpr::Var(name) => out.push_str(name),
        GExpr::Bin(op, a, b) => {
            out.push('(');
            expr_to_c(a, out);
            let _ = write!(out, " {} ", op.c_symbol());
            expr_to_c(b, out);
            out.push(')');
        }
        GExpr::ModConst(a, k) => {
            out.push('(');
            expr_to_c(a, out);
            let _ = write!(out, " % {k}ul)");
        }
        GExpr::Call(name, args) => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_to_c(a, out);
            }
            out.push(')');
        }
    }
}

fn stmt_to_c(s: &GStmt, indent: usize, counter: &mut usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        GStmt::Assign(target, e) => {
            let _ = write!(out, "{pad}{target} = ");
            expr_to_c(e, out);
            out.push_str(";\n");
        }
        GStmt::If(cond, then, els) => {
            let _ = write!(out, "{pad}if ((");
            expr_to_c(cond, out);
            out.push_str(") % 2ul) {\n");
            for s in then {
                stmt_to_c(s, indent + 1, counter, out);
            }
            if els.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in els {
                    stmt_to_c(s, indent + 1, counter, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        GStmt::For(n, body) => {
            *counter += 1;
            let var = format!("i{counter}");
            let _ = writeln!(
                out,
                "{pad}for (unsigned long {var} = 0ul; {var} < {n}ul; {var}++) {{"
            );
            for s in body {
                stmt_to_c(s, indent + 1, counter, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Render a generated program as C source.
pub fn to_c_source(p: &GenProgram) -> String {
    let mut out = String::new();
    out.push_str("#include <stdio.h>\n\n");
    for (name, value) in &p.globals {
        let _ = writeln!(out, "unsigned long {name} = {value}ul;");
    }
    out.push('\n');
    for f in &p.funcs {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("unsigned long {p}"))
            .collect();
        let _ = writeln!(out, "unsigned long {}({}) {{", f.name, params.join(", "));
        out.push_str("  return ");
        expr_to_c(&f.ret, &mut out);
        out.push_str(";\n}\n\n");
    }
    out.push_str("int main(void) {\n");
    let mut counter = 0usize;
    for s in &p.body {
        stmt_to_c(s, 1, &mut counter, &mut out);
    }
    out.push_str("  unsigned long checksum = 0ul;\n");
    for (name, _) in &p.globals {
        let _ = writeln!(out, "  checksum = (checksum * 31ul) ^ {name};");
    }
    out.push_str("  printf(\"checksum=%lu\\n\", checksum);\n");
    out.push_str("  return (int)(checksum % 128ul);\n}\n");
    out
}

// ----- the reference evaluator (the "GCC oracle" substitute) ------------------

/// The reference evaluation result: the checksum and the process exit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// The checksum `main` prints.
    pub checksum: u64,
    /// The value `main` returns.
    pub exit: i128,
}

fn ref_expr(
    e: &GExpr,
    globals: &HashMap<String, u64>,
    locals: &HashMap<String, u64>,
    funcs: &[GFunc],
) -> u64 {
    match e {
        GExpr::Const(v) => *v,
        GExpr::Var(name) => *locals.get(name).or_else(|| globals.get(name)).unwrap_or(&0),
        GExpr::Bin(op, a, b) => op.apply(
            ref_expr(a, globals, locals, funcs),
            ref_expr(b, globals, locals, funcs),
        ),
        GExpr::ModConst(a, k) => ref_expr(a, globals, locals, funcs) % k,
        GExpr::Call(name, args) => {
            let f = funcs
                .iter()
                .find(|f| &f.name == name)
                .expect("generated call target exists");
            let mut frame = HashMap::new();
            for (p, a) in f.params.iter().zip(args.iter()) {
                frame.insert(p.clone(), ref_expr(a, globals, locals, funcs));
            }
            ref_expr(&f.ret, globals, &frame, funcs)
        }
    }
}

fn ref_stmt(s: &GStmt, globals: &mut HashMap<String, u64>, funcs: &[GFunc]) {
    match s {
        GStmt::Assign(target, e) => {
            let v = ref_expr(e, globals, &HashMap::new(), funcs);
            globals.insert(target.clone(), v);
        }
        GStmt::If(cond, then, els) => {
            let v = ref_expr(cond, globals, &HashMap::new(), funcs);
            let branch = if v % 2 == 1 { then } else { els };
            for s in branch {
                ref_stmt(s, globals, funcs);
            }
        }
        GStmt::For(n, body) => {
            for _ in 0..*n {
                for s in body {
                    ref_stmt(s, globals, funcs);
                }
            }
        }
    }
}

/// Evaluate a generated program with the independent reference semantics.
pub fn reference_eval(p: &GenProgram) -> Reference {
    let mut globals: HashMap<String, u64> = p.globals.iter().cloned().collect();
    for s in &p.body {
        ref_stmt(s, &mut globals, &p.funcs);
    }
    let mut checksum = 0u64;
    for (name, _) in &p.globals {
        checksum = checksum.wrapping_mul(31) ^ globals[name];
    }
    Reference {
        checksum,
        exit: (checksum % 128) as i128,
    }
}

// ----- differential testing ----------------------------------------------------

/// The outcome of differentially testing one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The pipeline agrees with the reference evaluator.
    Agree,
    /// The pipeline produced a different result.
    Disagree {
        /// What the reference computed.
        expected: String,
        /// What the pipeline produced.
        observed: String,
    },
    /// The pipeline exhausted a resource budget — the step or wall-clock
    /// timeout, or an allocation/call-depth bound (the §6-style timeout).
    Timeout,
    /// The pipeline rejected or failed on the program.
    Failure(String),
    /// The engine panicked; the panic was contained and its payload captured.
    Fault(String),
}

/// Aggregate results of a differential run (the §6 validation table shape).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffSummary {
    /// Programs where both sides agree.
    pub agree: usize,
    /// Programs with differing results.
    pub disagree: usize,
    /// Programs that timed out in the pipeline.
    pub timeout: usize,
    /// Programs the pipeline failed on.
    pub failed: usize,
    /// Programs on which the engine panicked (the panic was contained).
    pub faulted: usize,
    /// Total number of programs.
    pub total: usize,
}

/// Differentially test one generated program with a throwaway session.
pub fn diff_one(p: &GenProgram, step_limit: u64) -> DiffOutcome {
    diff_one_in(&Session::with_model(ModelConfig::concrete()), p, step_limit)
}

/// Differentially test one generated program through an existing session,
/// reusing its memoised `Elaborated` artifacts: re-testing a seed already
/// elaborated (by any thread sharing the session) skips the whole front end.
pub fn diff_one_in(session: &Session, p: &GenProgram, step_limit: u64) -> DiffOutcome {
    diff_one_bounded_in(session, p, &ResourceLimits::with_steps(step_limit))
}

/// Differentially test one generated program under a full [`ResourceLimits`]
/// budget (steps, wall-clock watchdog, allocation bounds, call depth) — the
/// shape a fuzz worker runs: any budget exhaustion tallies as
/// [`DiffOutcome::Timeout`], a contained engine panic as
/// [`DiffOutcome::Fault`].
pub fn diff_one_bounded_in(
    session: &Session,
    p: &GenProgram,
    limits: &ResourceLimits,
) -> DiffOutcome {
    let reference = reference_eval(p);
    let source = to_c_source(p);
    let program = match session.elaborate(&source) {
        Ok(program) => program,
        Err(e) => return DiffOutcome::Failure(e.to_string()),
    };
    let config = session.config();
    // The execution runs behind an unwind boundary so an engine defect
    // becomes a `Fault` tally for this program, not an abort of the whole
    // fuzz batch.
    let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        program.execute_bounded(&config.model, config.mode, limits)
    })) {
        Ok(outcome) => outcome,
        Err(panic) => return DiffOutcome::Fault(cerberus::panic_payload(&*panic)),
    };
    classify(&reference, &outcome)
}

/// Compare one observed [`RunOutcome`] against the reference result — the
/// single [`DiffOutcome`] classifier shared by the in-thread harness and the
/// queued harness. Contained engine panics arrive here in two shapes: the
/// in-thread path catches the unwind itself, while the queued path receives
/// them as [`ExecResult::EngineFault`] rows from the differential runner —
/// both tally as [`DiffOutcome::Fault`] with the same payload.
fn classify(reference: &Reference, outcome: &cerberus::RunOutcome) -> DiffOutcome {
    let Some(first) = outcome.outcomes.first() else {
        return DiffOutcome::Failure("no outcome produced".into());
    };
    match &first.result {
        ExecResult::Return(v) => {
            let expected_stdout = format!("checksum={}\n", reference.checksum);
            if *v == reference.exit && first.stdout == expected_stdout {
                DiffOutcome::Agree
            } else {
                DiffOutcome::Disagree {
                    expected: format!("exit {} stdout {expected_stdout:?}", reference.exit),
                    observed: format!("exit {v} stdout {:?}", first.stdout),
                }
            }
        }
        ExecResult::Timeout(_) | ExecResult::ResourceExhausted(_) => DiffOutcome::Timeout,
        ExecResult::EngineFault { payload, .. } => DiffOutcome::Fault(payload.clone()),
        other => DiffOutcome::Failure(other.to_string()),
    }
}

fn tally(summary: &mut DiffSummary, outcome: DiffOutcome) {
    match outcome {
        DiffOutcome::Agree => summary.agree += 1,
        DiffOutcome::Disagree { .. } => summary.disagree += 1,
        DiffOutcome::Timeout => summary.timeout += 1,
        DiffOutcome::Failure(_) => summary.failed += 1,
        DiffOutcome::Fault(_) => summary.faulted += 1,
    }
}

/// Run the differential harness over `count` programs generated from
/// consecutive seeds, on the calling thread.
pub fn run_differential(count: usize, config: GenConfig, step_limit: u64) -> DiffSummary {
    let session = Session::with_model(ModelConfig::concrete());
    let mut summary = DiffSummary {
        total: count,
        ..DiffSummary::default()
    };
    for seed in 0..count as u64 {
        let program = generate(seed, config);
        tally(&mut summary, diff_one_in(&session, &program, step_limit));
    }
    summary
}

/// Run the differential harness over `count` programs generated from
/// consecutive seeds, batching the seeds across up to `threads` worker
/// threads (capped at the machine's available parallelism — a single-core
/// host degrades to one worker rather than paying spawn overhead).
///
/// All workers share one [`Session`], so its memoised `Elaborated` artifacts
/// are shared across seeds and threads (the memoisation-of-shared-subgoals
/// idea); generation, elaboration and both evaluations of each seed happen
/// entirely on its worker. The summary is a sum of per-seed tallies, so the
/// result equals [`run_differential`]'s regardless of scheduling.
pub fn run_differential_parallel(
    count: usize,
    config: GenConfig,
    step_limit: u64,
    threads: usize,
) -> DiffSummary {
    let threads = threads
        .max(1)
        .min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .min(count.max(1));
    if threads <= 1 {
        // One worker: run inline rather than paying a spawn/park round trip.
        return run_differential(count, config, step_limit);
    }
    let session = Session::with_model(ModelConfig::concrete());
    let mut partials: Vec<DiffSummary> = vec![DiffSummary::default(); threads];
    std::thread::scope(|scope| {
        for (worker, partial) in partials.iter_mut().enumerate() {
            let session = &session;
            scope.spawn(move || {
                // Seeds are dealt round-robin: worker w takes w, w+T, w+2T, …
                let mut seed = worker as u64;
                while seed < count as u64 {
                    let program = generate(seed, config);
                    tally(partial, diff_one_in(session, &program, step_limit));
                    seed += threads as u64;
                }
            });
        }
    });
    let mut summary = DiffSummary {
        total: count,
        ..DiffSummary::default()
    };
    for partial in partials {
        summary.agree += partial.agree;
        summary.disagree += partial.disagree;
        summary.timeout += partial.timeout;
        summary.failed += partial.failed;
        summary.faulted += partial.faulted;
    }
    summary
}

/// Differentially test one generated program as a queued job, and `count`
/// programs as a fanned-out batch: the §6 fuzz harness routed through a
/// [`cerberus_queue::JobQueue`] instead of ad-hoc scoped threads.
///
/// Each seed becomes one (program × concrete-model) job under exactly the
/// mode and budget [`diff_one_in`] uses, so the per-seed [`DiffOutcome`]s —
/// and therefore the [`DiffSummary`] — are bit-identical to
/// [`run_differential`]'s. Engine panics arrive as contained
/// [`ExecResult::EngineFault`] rows and tally as [`DiffSummary::faulted`];
/// front-end rejections (impossible for the generated fragment, possible for
/// hand-fed programs) tally as [`DiffSummary::failed`].
pub fn run_differential_queued(
    queue: &cerberus_queue::JobQueue,
    count: usize,
    config: GenConfig,
    step_limit: u64,
) -> DiffSummary {
    use cerberus_queue::{Job, JobOutcome};
    let programs: Vec<GenProgram> = (0..count as u64).map(|s| generate(s, config)).collect();
    let ids = queue.submit_batch(programs.iter().map(|p| {
        Job::new(to_c_source(p), vec![ModelConfig::concrete()])
            .with_limits(ResourceLimits::with_steps(step_limit))
    }));
    let mut summary = DiffSummary {
        total: count,
        ..DiffSummary::default()
    };
    for (program, outcome) in programs.iter().zip(queue.wait_all(&ids)) {
        let reference = reference_eval(program);
        let diff = match outcome {
            JobOutcome::Matrix(matrix) => {
                let row = matrix.rows().first().expect("one model per job");
                classify(&reference, &row.outcome)
            }
            JobOutcome::Rejected(e) => DiffOutcome::Failure(e.to_string()),
            JobOutcome::FrontendFault(payload) => DiffOutcome::Fault(payload),
        };
        tally(&mut summary, diff);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(7, GenConfig::small());
        let b = generate(7, GenConfig::small());
        let c = generate(8, GenConfig::small());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_source_parses_and_runs() {
        let p = generate(1, GenConfig::small());
        let src = to_c_source(&p);
        assert!(src.contains("int main(void)"));
        let out = cerberus::pipeline::run_with_model(&src, ModelConfig::concrete()).unwrap();
        assert!(
            matches!(out.outcomes[0].result, ExecResult::Return(_)),
            "{:?}",
            out.outcomes[0]
        );
    }

    #[test]
    fn reference_and_pipeline_agree_on_small_programs() {
        for seed in 0..8 {
            let p = generate(seed, GenConfig::small());
            let outcome = diff_one(&p, 2_000_000);
            assert_eq!(outcome, DiffOutcome::Agree, "seed {seed}: {outcome:?}");
        }
    }

    #[test]
    fn differential_summary_counts_add_up() {
        let summary = run_differential(6, GenConfig::small(), 2_000_000);
        assert_eq!(summary.total, 6);
        assert_eq!(
            summary.agree + summary.disagree + summary.timeout + summary.failed + summary.faulted,
            summary.total
        );
        assert!(summary.agree >= summary.total - 1, "{summary:?}");
    }

    #[test]
    fn tiny_step_limits_register_as_timeouts() {
        let p = generate(3, GenConfig::large());
        let outcome = diff_one(&p, 50);
        assert_eq!(outcome, DiffOutcome::Timeout);
    }

    #[test]
    fn reference_eval_is_pure() {
        let p = generate(5, GenConfig::small());
        assert_eq!(reference_eval(&p), reference_eval(&p));
    }

    #[test]
    fn parallel_batching_matches_the_sequential_summary() {
        let sequential = run_differential(12, GenConfig::small(), 2_000_000);
        for threads in [1, 3, 8] {
            let parallel = run_differential_parallel(12, GenConfig::small(), 2_000_000, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn queued_batches_match_the_sequential_summary() {
        let sequential = run_differential(12, GenConfig::small(), 2_000_000);
        let queue = cerberus_queue::JobQueue::start(4);
        let queued = run_differential_queued(&queue, 12, GenConfig::small(), 2_000_000);
        assert_eq!(queued, sequential);
        // Tiny budgets classify as timeouts through the queue as well.
        let starved = run_differential_queued(&queue, 4, GenConfig::large(), 50);
        assert_eq!(
            starved,
            run_differential(4, GenConfig::large(), 50),
            "starved batches must tally identically"
        );
        assert!(starved.timeout > 0, "{starved:?}");
        queue.shutdown();
    }

    #[test]
    fn a_shared_session_memoises_repeated_seeds() {
        let session = Session::with_model(ModelConfig::concrete());
        let p = generate(2, GenConfig::small());
        assert_eq!(diff_one_in(&session, &p, 2_000_000), DiffOutcome::Agree);
        assert_eq!(session.cached_artifacts(), 1);
        // The second run of the same seed is a cache hit, not a new artifact.
        assert_eq!(diff_one_in(&session, &p, 2_000_000), DiffOutcome::Agree);
        assert_eq!(session.cached_artifacts(), 1);
    }
}
