//! The wire shape of a static analysis report — the `analysis` member of the
//! HTTP service's submit acknowledgement and the `reproduce --analyze --json`
//! document render the same object produced here.

use crate::json::Json;
use cerberus_analysis::{AnalysisReport, StaticFinding, Witness};

/// One static finding as a tagged object:
/// `{"ub": ..., "severity": "must"|"may", "proc": ..., "clause": ...,
///   "detail": ..., "witness": ...}`.
///
/// The witness member is itself tagged by kind: a `Must` finding carries
/// `{"kind": "assignment", "bindings": [{"var": ..., "value": ...}, ...]}`
/// (a satisfying assignment of the path constraints, empty when the UB is
/// unconditional); a `May` finding carries
/// `{"kind": "residual", "constraints": [...]}` (the rendered residual
/// constraint set under which the UB fires).
pub fn static_finding_to_json(finding: &StaticFinding) -> Json {
    Json::obj([
        ("ub", Json::str(finding.ub.core_name())),
        ("severity", Json::str(finding.severity.to_string())),
        ("proc", Json::str(&finding.proc)),
        ("clause", Json::str(finding.iso_clause)),
        ("detail", Json::str(&finding.detail)),
        ("witness", witness_to_json(&finding.witness)),
    ])
}

/// The witness of one finding (see [`static_finding_to_json`]).
pub fn witness_to_json(witness: &Witness) -> Json {
    match witness {
        Witness::Assignment(bindings) => Json::obj([
            ("kind", Json::str("assignment")),
            (
                "bindings",
                Json::Arr(
                    bindings
                        .iter()
                        .map(|(var, value)| {
                            Json::obj([("var", Json::str(var)), ("value", Json::Int(*value))])
                        })
                        .collect(),
                ),
            ),
        ]),
        Witness::Residual(constraints) => Json::obj([
            ("kind", Json::str("residual")),
            (
                "constraints",
                Json::Arr(constraints.iter().map(Json::str).collect()),
            ),
        ]),
    }
}

/// The whole report: validator violations, interpreter findings and the
/// budget accounting, in a deterministic shape.
pub fn analysis_report_to_json(report: &AnalysisReport) -> Json {
    Json::obj([
        (
            "violations",
            Json::Arr(
                report
                    .violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("message", Json::str(v.message())),
                            ("clause", Json::str(v.iso_clause())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "findings",
            Json::Arr(report.findings.iter().map(static_finding_to_json).collect()),
        ),
        ("procs_analyzed", Json::Int(report.procs_analyzed as i128)),
        ("steps_used", Json::Int(report.steps_used as i128)),
        ("budget_exhausted", Json::Bool(report.budget_exhausted)),
        ("paths_explored", Json::Int(report.paths_explored as i128)),
        ("paths_pruned", Json::Int(report.paths_pruned as i128)),
        (
            "solver_queries",
            Json::Int(i128::from(report.solver_queries)),
        ),
        (
            "solver_memo_hits",
            Json::Int(i128::from(report.solver_memo_hits)),
        ),
        (
            "aborted",
            match &report.aborted {
                Some(message) => Json::str(message),
                None => Json::Null,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_analysis::{FindingSeverity, StaticFinding};
    use cerberus_ast::loc::Span;
    use cerberus_ast::ub::UbKind;

    fn sample_report() -> AnalysisReport {
        AnalysisReport {
            findings: vec![StaticFinding {
                ub: UbKind::NullPointerDeref,
                severity: FindingSeverity::Must,
                span: Span::synthetic(),
                iso_clause: UbKind::NullPointerDeref.iso_reference(),
                proc: "main".into(),
                detail: "store through a definitely-null pointer".into(),
                witness: Witness::Assignment(vec![("load(n)".into(), 3)]),
            }],
            procs_analyzed: 1,
            steps_used: 12,
            solver_queries: 4,
            solver_memo_hits: 1,
            ..AnalysisReport::default()
        }
    }

    #[test]
    fn findings_render_the_core_name_and_severity() {
        let json = analysis_report_to_json(&sample_report());
        let findings = match json.get("findings") {
            Some(Json::Arr(items)) => items,
            other => panic!("findings missing: {other:?}"),
        };
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("ub").and_then(Json::as_str),
            Some("Null_pointer_dereference")
        );
        assert_eq!(
            findings[0].get("severity").and_then(Json::as_str),
            Some("must")
        );
        assert_eq!(findings[0].get("proc").and_then(Json::as_str), Some("main"));
        let witness = findings[0].get("witness").expect("witness member");
        assert_eq!(
            witness.get("kind").and_then(Json::as_str),
            Some("assignment")
        );
        let bindings = match witness.get("bindings") {
            Some(Json::Arr(items)) => items,
            other => panic!("bindings missing: {other:?}"),
        };
        assert_eq!(
            bindings[0].get("var").and_then(Json::as_str),
            Some("load(n)")
        );
        assert_eq!(bindings[0].get("value"), Some(&Json::Int(3)));
    }

    #[test]
    fn residual_witnesses_render_their_constraints() {
        let witness = Witness::Residual(vec!["load(n) != 0".into()]);
        let json = witness_to_json(&witness);
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("residual"));
        assert_eq!(
            json.get("constraints"),
            Some(&Json::Arr(vec![Json::str("load(n) != 0")]))
        );
    }

    #[test]
    fn a_clean_report_is_all_empty_and_null() {
        let json = analysis_report_to_json(&AnalysisReport::default());
        assert_eq!(json.get("aborted"), Some(&Json::Null));
        assert_eq!(json.get("findings"), Some(&Json::Arr(Vec::new())));
        assert_eq!(json.get("violations"), Some(&Json::Arr(Vec::new())));
        assert_eq!(json.get("budget_exhausted"), Some(&Json::Bool(false)));
    }

    #[test]
    fn the_encoding_is_deterministic() {
        let report = sample_report();
        let first = analysis_report_to_json(&report).encode();
        let second = analysis_report_to_json(&report).encode();
        assert_eq!(first, second);
        assert!(first.contains("\"steps_used\":12"), "{first}");
    }
}
