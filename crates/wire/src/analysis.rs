//! The wire shape of a static analysis report — the `analysis` member of the
//! HTTP service's submit acknowledgement and the `reproduce --analyze --json`
//! document render the same object produced here.

use crate::json::Json;
use cerberus_analysis::{AnalysisReport, StaticFinding};

/// One static finding as a tagged object:
/// `{"ub": ..., "severity": "must"|"may", "proc": ..., "clause": ..., "detail": ...}`.
pub fn static_finding_to_json(finding: &StaticFinding) -> Json {
    Json::obj([
        ("ub", Json::str(finding.ub.core_name())),
        ("severity", Json::str(finding.severity.to_string())),
        ("proc", Json::str(&finding.proc)),
        ("clause", Json::str(finding.iso_clause)),
        ("detail", Json::str(&finding.detail)),
    ])
}

/// The whole report: validator violations, interpreter findings and the
/// budget accounting, in a deterministic shape.
pub fn analysis_report_to_json(report: &AnalysisReport) -> Json {
    Json::obj([
        (
            "violations",
            Json::Arr(
                report
                    .violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("message", Json::str(v.message())),
                            ("clause", Json::str(v.iso_clause())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "findings",
            Json::Arr(report.findings.iter().map(static_finding_to_json).collect()),
        ),
        ("procs_analyzed", Json::Int(report.procs_analyzed as i128)),
        ("steps_used", Json::Int(report.steps_used as i128)),
        ("budget_exhausted", Json::Bool(report.budget_exhausted)),
        (
            "aborted",
            match &report.aborted {
                Some(message) => Json::str(message),
                None => Json::Null,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_analysis::{FindingSeverity, StaticFinding};
    use cerberus_ast::loc::Span;
    use cerberus_ast::ub::UbKind;

    fn sample_report() -> AnalysisReport {
        AnalysisReport {
            findings: vec![StaticFinding {
                ub: UbKind::NullPointerDeref,
                severity: FindingSeverity::Must,
                span: Span::synthetic(),
                iso_clause: UbKind::NullPointerDeref.iso_reference(),
                proc: "main".into(),
                detail: "store through a definitely-null pointer".into(),
            }],
            procs_analyzed: 1,
            steps_used: 12,
            ..AnalysisReport::default()
        }
    }

    #[test]
    fn findings_render_the_core_name_and_severity() {
        let json = analysis_report_to_json(&sample_report());
        let findings = match json.get("findings") {
            Some(Json::Arr(items)) => items,
            other => panic!("findings missing: {other:?}"),
        };
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("ub").and_then(Json::as_str),
            Some("Null_pointer_dereference")
        );
        assert_eq!(
            findings[0].get("severity").and_then(Json::as_str),
            Some("must")
        );
        assert_eq!(findings[0].get("proc").and_then(Json::as_str), Some("main"));
    }

    #[test]
    fn a_clean_report_is_all_empty_and_null() {
        let json = analysis_report_to_json(&AnalysisReport::default());
        assert_eq!(json.get("aborted"), Some(&Json::Null));
        assert_eq!(json.get("findings"), Some(&Json::Arr(Vec::new())));
        assert_eq!(json.get("violations"), Some(&Json::Arr(Vec::new())));
        assert_eq!(json.get("budget_exhausted"), Some(&Json::Bool(false)));
    }

    #[test]
    fn the_encoding_is_deterministic() {
        let report = sample_report();
        let first = analysis_report_to_json(&report).encode();
        let second = analysis_report_to_json(&report).encode();
        assert_eq!(first, second);
        assert!(first.contains("\"steps_used\":12"), "{first}");
    }
}
