//! The deterministic JSON wire layer shared by every surface that reads or
//! writes pipeline results as data: the HTTP service (`cerberus-server`), the
//! `reproduce --json` CLI document, and the golden-file litmus fixtures
//! (`cerberus-litmus`), whose `.expect` files are exactly the per-model
//! outcome objects rendered here.
//!
//! Three modules:
//!
//! * [`json`] — a std-only JSON value, encoder (compact and pretty, object
//!   keys always sorted) and decoder;
//! * [`outcome`] — the one place that decides the wire shape of a single
//!   execution result ([`outcome::exec_result_to_json`],
//!   [`outcome::program_outcome_to_json`]);
//! * [`analysis`] — the wire shape of a static analysis report
//!   ([`analysis::analysis_report_to_json`]), the `analysis` member of the
//!   service's submit acknowledgement.
//!
//! Keeping this below both `cerberus-litmus` and `cerberus-server` in the
//! crate graph is what lets the fixture corpus and the service speak the same
//! format without a dependency cycle: the service renders matrices with it,
//! and the litmus loader parses expectation files with it.

pub mod analysis;
pub mod json;
pub mod outcome;

pub use analysis::{analysis_report_to_json, static_finding_to_json};
pub use json::{Json, JsonError};
pub use outcome::{exec_result_kind, exec_result_to_json, program_outcome_to_json};
