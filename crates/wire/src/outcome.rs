//! The wire shape of a single execution result — shared by the HTTP
//! service's matrix renderer and the litmus fixture expectation files, so a
//! `.expect` cell and a `/api/v0/jobs/{id}` row are byte-identical for the
//! same behaviour.

use crate::json::Json;
use cerberus_exec::driver::{ExecResult, ProgramOutcome};

/// The `kind` discriminant tag an [`ExecResult`] renders under — the wire
/// vocabulary: `return`, `exit`, `undef`, `error`, `timeout`,
/// `resource-exhausted`, `engine-fault`.
pub fn exec_result_kind(result: &ExecResult) -> &'static str {
    match result {
        ExecResult::Return(_) => "return",
        ExecResult::Exit(_) => "exit",
        ExecResult::Undef(..) => "undef",
        ExecResult::Error(_) => "error",
        ExecResult::Timeout(_) => "timeout",
        ExecResult::ResourceExhausted(_) => "resource-exhausted",
        ExecResult::EngineFault { .. } => "engine-fault",
    }
}

/// One execution result as a tagged object: `{"kind": ..., ...}`.
pub fn exec_result_to_json(result: &ExecResult) -> Json {
    let kind = ("kind", Json::str(exec_result_kind(result)));
    match result {
        ExecResult::Return(value) | ExecResult::Exit(value) => {
            Json::obj([kind, ("value", Json::Int(*value))])
        }
        ExecResult::Undef(ub, detail) => Json::obj([
            kind,
            ("ub", Json::str(ub.core_name())),
            ("clause", Json::str(ub.iso_reference())),
            ("detail", Json::str(detail)),
        ]),
        ExecResult::Error(detail) => Json::obj([kind, ("detail", Json::str(detail))]),
        ExecResult::Timeout(budget) => Json::obj([kind, ("budget", Json::str(budget.to_string()))]),
        ExecResult::ResourceExhausted(budget) => {
            Json::obj([kind, ("budget", Json::str(budget.to_string()))])
        }
        ExecResult::EngineFault { model, payload } => Json::obj([
            kind,
            ("model", Json::str(model)),
            ("payload", Json::str(payload)),
        ]),
    }
}

/// One program outcome: the execution result plus the captured stdout.
pub fn program_outcome_to_json(outcome: &ProgramOutcome) -> Json {
    let mut object = exec_result_to_json(&outcome.result);
    if let Json::Obj(fields) = &mut object {
        fields.insert("stdout".to_owned(), Json::str(&outcome.stdout));
    }
    object
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerberus_ast::ub::UbKind;

    #[test]
    fn every_kind_tag_matches_its_rendered_object() {
        let results = [
            ExecResult::Return(3),
            ExecResult::Exit(1),
            ExecResult::Undef(UbKind::NullPointerDeref, "p".into()),
            ExecResult::Error("unsupported".into()),
            ExecResult::EngineFault {
                model: "panicking".into(),
                payload: "boom".into(),
            },
        ];
        for result in &results {
            let json = exec_result_to_json(result);
            assert_eq!(
                json.get("kind").and_then(Json::as_str),
                Some(exec_result_kind(result))
            );
        }
    }

    #[test]
    fn undef_cells_carry_kind_clause_and_detail() {
        let json = exec_result_to_json(&ExecResult::Undef(
            UbKind::OutOfBoundsAccess,
            "alloc 3".into(),
        ));
        assert_eq!(
            json.get("ub").and_then(Json::as_str),
            Some("Out_of_bounds_access")
        );
        assert_eq!(json.get("clause").and_then(Json::as_str), Some("DR260"));
        assert_eq!(json.get("detail").and_then(Json::as_str), Some("alloc 3"));
    }

    #[test]
    fn program_outcomes_append_stdout() {
        let outcome = ProgramOutcome {
            result: ExecResult::Return(0),
            stdout: "hi\n".into(),
        };
        let json = program_outcome_to_json(&outcome);
        assert_eq!(json.get("stdout").and_then(Json::as_str), Some("hi\n"));
        assert_eq!(json.get("value").and_then(Json::as_int), Some(0));
    }
}
