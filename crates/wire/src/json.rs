//! A minimal JSON value, encoder and decoder — std-only, because the build
//! environment is offline and the service's wire format is small and fully
//! under our control.
//!
//! The encoder emits RFC 8259-conformant text (string escapes, `\u00XX` for
//! control characters). The decoder accepts the full JSON grammar the
//! service's clients need: all value kinds, nested containers, string escape
//! sequences including `\uXXXX` (surrogate pairs handled), and integer or
//! floating-point numbers. Integers are kept exact in an `i128` (job ids and
//! counters never round-trip through a float); anything with a fraction or
//! exponent parses as `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (encoded without fraction or exponent).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`), so encoding is
    /// deterministic — handy for tests and for diffable `--json` output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(elements) => Some(elements),
            _ => None,
        }
    }

    /// Encode to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                // JSON has no NaN/Infinity; encode them as null like
                // browsers' JSON.stringify does.
                if x.is_finite() {
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    // `{}` on an integral f64 prints no decimal point; add
                    // one so the value round-trips as a float.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(elements) => {
                out.push('[');
                for (i, element) in elements.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    element.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Encode to human-readable JSON text (two-space indent, sorted keys, a
    /// trailing newline) — the format of committed golden files, chosen so
    /// `git diff` over a fixture expectation reads one cell per line.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.encode_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn encode_pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(elements) if !elements.is_empty() => {
                out.push_str("[\n");
                for (i, element) in elements.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    element.encode_pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    encode_string(key, out);
                    out.push_str(": ");
                    value.encode_pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.encode_into(out),
        }
    }

    /// Decode JSON text. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Containers deeper than this are rejected (a hostile request must not be
/// able to overflow the parser's stack).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("value nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elements));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the digits; the outer
                            // loop advance below is skipped for this arm.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe via char_indices).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked byte implies a char");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.error("malformed number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.error("malformed number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(value.encode(), text);
        }
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn containers_round_trip_deterministically() {
        let value = Json::obj([
            ("b", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("a", Json::str("x")),
        ]);
        let text = value.encode();
        // Object keys encode sorted.
        assert_eq!(text, "{\"a\":\"x\",\"b\":[1,null]}");
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{1}f — π 🦀";
        let encoded = Json::str(tricky).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::str(tricky));
        // Standard escapes and surrogate pairs decode.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83e\\udd80\\/\"").unwrap(),
            Json::str("Aé🦀/")
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_with_an_offset() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, ?]").unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn pretty_encoding_round_trips_and_is_line_oriented() {
        let value = Json::obj([
            ("matrix", Json::obj([("concrete", Json::Int(1))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj::<String>([])),
            ("list", Json::Arr(vec![Json::Int(1), Json::str("x")])),
        ]);
        let pretty = value.encode_pretty();
        assert!(pretty.ends_with("}\n"));
        assert!(pretty.contains("\"concrete\": 1"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.contains("\"empty_obj\": {}"));
        assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn accessors_select_members() {
        let value = Json::parse("{\"job\": 3, \"ok\": true, \"models\": [\"a\"]}").unwrap();
        assert_eq!(value.get("job").and_then(Json::as_int), Some(3));
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        let models = value.get("models").and_then(Json::as_array).unwrap();
        assert_eq!(models[0].as_str(), Some("a"));
        assert!(value.get("missing").is_none());
        assert!(Json::Int(1).get("x").is_none());
    }
}
