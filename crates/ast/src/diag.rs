//! Diagnostics: constraint violations and other front-end errors.
//!
//! The paper emphasises that the Cabs-to-Ail desugaring and the type checker
//! "identify exactly what part of the standard is violated" when they reject a
//! program (§5.1). Diagnostics therefore carry an ISO clause citation next to
//! the message.

use std::fmt;

use crate::loc::Span;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A constraint violation or other error: the translation unit is
    /// rejected.
    Error,
    /// A warning: the program is accepted but dubious.
    Warning,
}

/// A front-end diagnostic: a message, the ISO C11 clause it appeals to, and a
/// source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// The ISO C11 clause this diagnostic appeals to, e.g. `"6.5.7p2"`.
    pub iso_clause: &'static str,
    /// Source location.
    pub span: Span,
}

impl Diagnostic {
    /// A constraint-violation error.
    pub fn error(message: impl Into<String>, iso_clause: &'static str, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            iso_clause,
            span,
        }
    }

    /// A warning.
    pub fn warning(message: impl Into<String>, iso_clause: &'static str, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            iso_clause,
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{}: {} [ISO C11 {}] at {}",
            sev, self.message, self.iso_clause, self.span
        )
    }
}

impl std::error::Error for Diagnostic {}

/// A constraint violation as defined by ISO C11 clause 4: a diagnostic that
/// obliges the implementation to reject or at least diagnose the program.
/// This is the error type returned by the desugaring and type-checking passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintViolation {
    /// The underlying diagnostic.
    pub diagnostic: Diagnostic,
}

impl ConstraintViolation {
    /// Construct a constraint violation citing the given clause.
    pub fn new(message: impl Into<String>, iso_clause: &'static str, span: Span) -> Self {
        ConstraintViolation {
            diagnostic: Diagnostic::error(message, iso_clause, span),
        }
    }

    /// The ISO clause violated.
    pub fn iso_clause(&self) -> &'static str {
        self.diagnostic.iso_clause
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.diagnostic.message
    }
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.diagnostic)
    }
}

impl std::error::Error for ConstraintViolation {}

impl From<Diagnostic> for ConstraintViolation {
    fn from(diagnostic: Diagnostic) -> Self {
        ConstraintViolation { diagnostic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, Span};

    #[test]
    fn display_cites_clause() {
        let d = Diagnostic::error(
            "operands of << shall have integer type",
            "6.5.7p2",
            Span::point(Loc::new(3, 7, 20)),
        );
        let s = d.to_string();
        assert!(s.contains("6.5.7p2"));
        assert!(s.contains("3:7"));
        assert!(s.starts_with("error:"));
    }

    #[test]
    fn violation_wraps_diagnostic() {
        let v = ConstraintViolation::new("redefinition of x", "6.7p3", Span::synthetic());
        assert_eq!(v.iso_clause(), "6.7p3");
        assert_eq!(v.message(), "redefinition of x");
    }

    #[test]
    fn warning_display() {
        let d = Diagnostic::warning(
            "implicit conversion changes value",
            "6.3.1.3",
            Span::synthetic(),
        );
        assert!(d.to_string().starts_with("warning:"));
    }
}
