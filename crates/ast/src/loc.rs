//! Source locations and spans.
//!
//! Every AST node carries a [`Span`] so diagnostics and undefined-behaviour
//! reports can point at the originating C source text, mirroring the paper's
//! requirement that the tool report "which undefined behaviour has been
//! violated (together with the C source location)" (§5.4).

use std::fmt;

/// A single position in a source file: 1-based line and column plus the byte
/// offset into the original text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
    /// Byte offset into the translation unit text.
    pub offset: u32,
}

impl Loc {
    /// The start of the translation unit.
    pub const fn start() -> Self {
        Loc {
            line: 1,
            column: 1,
            offset: 0,
        }
    }

    /// Construct a location from explicit coordinates.
    pub const fn new(line: u32, column: u32, offset: u32) -> Self {
        Loc {
            line,
            column,
            offset,
        }
    }

    /// Advance this location over a character of the source text.
    pub fn advance(&mut self, c: char) {
        self.offset += c.len_utf8() as u32;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }
}

impl Default for Loc {
    fn default() -> Self {
        Loc::start()
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A contiguous region of source text, from `start` (inclusive) to `end`
/// (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First position covered by the span.
    pub start: Loc,
    /// Position one past the last covered character.
    pub end: Loc,
}

impl Span {
    /// A span covering a single point.
    pub const fn point(loc: Loc) -> Self {
        Span {
            start: loc,
            end: loc,
        }
    }

    /// A span with explicit endpoints.
    pub const fn new(start: Loc, end: Loc) -> Self {
        Span { start, end }
    }

    /// The span produced for synthesised nodes that have no source text, e.g.
    /// implicit conversions inserted by the type checker.
    pub const fn synthetic() -> Self {
        Span::point(Loc::start())
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start <= other.start {
                self.start
            } else {
                other.start
            },
            end: if self.end >= other.end {
                self.end
            } else {
                other.end
            },
        }
    }

    /// Whether the span covers zero characters.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start.line == self.end.line {
            write!(
                f,
                "{}:{}-{}",
                self.start.line, self.start.column, self.end.column
            )
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_tracks_lines_and_columns() {
        let mut loc = Loc::start();
        for c in "ab\ncd".chars() {
            loc.advance(c);
        }
        assert_eq!(loc.line, 2);
        assert_eq!(loc.column, 3);
        assert_eq!(loc.offset, 5);
    }

    #[test]
    fn merge_produces_covering_span() {
        let a = Span::new(Loc::new(1, 1, 0), Loc::new(1, 5, 4));
        let b = Span::new(Loc::new(1, 3, 2), Loc::new(2, 1, 8));
        let m = a.merge(b);
        assert_eq!(m.start, Loc::new(1, 1, 0));
        assert_eq!(m.end, Loc::new(2, 1, 8));
    }

    #[test]
    fn display_single_line() {
        let s = Span::new(Loc::new(3, 2, 10), Loc::new(3, 9, 17));
        assert_eq!(s.to_string(), "3:2-9");
    }

    #[test]
    fn point_span_is_empty() {
        assert!(Span::point(Loc::new(4, 4, 12)).is_empty());
        assert!(!Span::new(Loc::new(1, 1, 0), Loc::new(1, 2, 1)).is_empty());
    }
}
