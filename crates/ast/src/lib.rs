//! Foundational definitions shared by every stage of the Cerberus-rs pipeline.
//!
//! This crate contains the pieces of the semantics that are independent of any
//! particular phase: source locations, identifiers, the C type grammar,
//! implementation-defined environments (object sizes, alignments, signedness of
//! plain `char`, …), storage layout computation, the catalogue of undefined
//! behaviours the semantics can report, and the design-space question catalogue
//! from §2 of the paper.
//!
//! # Example
//!
//! ```
//! use cerberus_ast::ctype::{Ctype, IntegerType};
//! use cerberus_ast::env::ImplEnv;
//!
//! let env = ImplEnv::lp64();
//! let ty = Ctype::pointer(Ctype::integer(IntegerType::Int));
//! assert_eq!(env.size_of_basic(&ty).unwrap(), 8);
//! ```

pub mod ctype;
pub mod diag;
pub mod env;
pub mod ident;
pub mod layout;
pub mod loc;
pub mod questions;
pub mod ub;

pub use ctype::{Ctype, IntegerType, Qualifiers, TagId};
pub use diag::{ConstraintViolation, Diagnostic};
pub use env::ImplEnv;
pub use ident::Ident;
pub use layout::{Layout, TagDefinition, TagRegistry};
pub use loc::{Loc, Span};
pub use questions::{Clarity, Question, QuestionCategory};
pub use ub::UbKind;
