//! Implementation-defined environments.
//!
//! The ISO standard leaves many properties to the implementation: the widths
//! and alignments of the integer types, the signedness of plain `char`, the
//! representation of null pointers, and so on. Cerberus resolves these through
//! an explicit environment so that the same semantics can be instantiated for
//! different ABIs (the paper's elaboration consults "implementation-defined
//! constants"; this type plays that role).

use crate::ctype::{Ctype, IntegerType};

/// Byte order used when serialising integer and pointer values into
/// representation bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Least-significant byte first (mainstream x86-64 / AArch64 default).
    Little,
    /// Most-significant byte first.
    Big,
}

/// An implementation-defined environment: the sizes, alignments and signedness
/// choices the semantics needs to evaluate programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplEnv {
    /// Human-readable name (e.g. `"lp64"`).
    pub name: &'static str,
    /// Whether plain `char` behaves as a signed type.
    pub char_is_signed: bool,
    /// Byte order of object representations.
    pub endianness: Endianness,
    /// `sizeof(short)` in bytes.
    pub short_size: u64,
    /// `sizeof(int)` in bytes.
    pub int_size: u64,
    /// `sizeof(long)` in bytes.
    pub long_size: u64,
    /// `sizeof(long long)` in bytes.
    pub long_long_size: u64,
    /// `sizeof(void *)` in bytes.
    pub pointer_size: u64,
    /// Maximum alignment used for `malloc`-style allocations.
    pub max_align: u64,
}

impl ImplEnv {
    /// The mainstream LP64 environment (Linux/BSD on x86-64 and AArch64): the
    /// environment the paper's de facto discussion targets.
    pub const fn lp64() -> Self {
        ImplEnv {
            name: "lp64",
            char_is_signed: true,
            endianness: Endianness::Little,
            short_size: 2,
            int_size: 4,
            long_size: 8,
            long_long_size: 8,
            pointer_size: 8,
            max_align: 16,
        }
    }

    /// The ILP32 environment (32-bit x86): useful for exercising
    /// implementation-defined divergence in tests.
    pub const fn ilp32() -> Self {
        ImplEnv {
            name: "ilp32",
            char_is_signed: true,
            endianness: Endianness::Little,
            short_size: 2,
            int_size: 4,
            long_size: 4,
            long_long_size: 8,
            pointer_size: 4,
            max_align: 8,
        }
    }

    /// A CHERI-style environment where pointers occupy 16 bytes of address
    /// space-visible representation (capability with bounds metadata), used by
    /// the CHERI memory model experiments of §4.
    pub const fn cheri128() -> Self {
        ImplEnv {
            name: "cheri128",
            char_is_signed: true,
            endianness: Endianness::Little,
            short_size: 2,
            int_size: 4,
            long_size: 8,
            long_long_size: 8,
            pointer_size: 16,
            max_align: 16,
        }
    }

    /// Size in bytes of an integer type.
    pub fn integer_size(&self, it: IntegerType) -> u64 {
        use IntegerType::*;
        match it {
            Bool | Char | SChar | UChar => 1,
            Short | UShort => self.short_size,
            Int | UInt | Enum => self.int_size,
            Long | ULong => self.long_size,
            LongLong | ULongLong => self.long_long_size,
            SizeT | PtrdiffT | IntptrT | UintptrT => self.pointer_size,
        }
    }

    /// Alignment in bytes of an integer type (natural alignment).
    pub fn integer_align(&self, it: IntegerType) -> u64 {
        self.integer_size(it)
    }

    /// Width in bits of an integer type.
    pub fn integer_width(&self, it: IntegerType) -> u32 {
        (self.integer_size(it) * 8) as u32
    }

    /// Whether an integer type is signed in this environment.
    pub fn is_signed(&self, it: IntegerType) -> bool {
        it.is_signed(self.char_is_signed)
    }

    /// Minimum representable value of an integer type (two's complement is
    /// assumed, as the paper observes mainstream hardware now guarantees).
    pub fn int_min(&self, it: IntegerType) -> i128 {
        if self.is_signed(it) {
            let w = self.integer_width(it);
            -(1i128 << (w - 1))
        } else {
            0
        }
    }

    /// Maximum representable value of an integer type.
    pub fn int_max(&self, it: IntegerType) -> i128 {
        if it == IntegerType::Bool {
            return 1;
        }
        let w = self.integer_width(it);
        if self.is_signed(it) {
            (1i128 << (w - 1)) - 1
        } else {
            (1i128 << w) - 1
        }
    }

    /// Whether `v` is representable in integer type `it`.
    pub fn representable(&self, v: i128, it: IntegerType) -> bool {
        v >= self.int_min(it) && v <= self.int_max(it)
    }

    /// Reduce `v` modulo one more than the maximum representable value of the
    /// unsigned type `it` (the conversion rule of 6.3.1.3p2).
    pub fn wrap_unsigned(&self, v: i128, it: IntegerType) -> i128 {
        let modulus = self.int_max(it) + 1;
        v.rem_euclid(modulus)
    }

    /// Convert `v` to integer type `it` following 6.3.1.3: identity when
    /// representable, modular reduction for unsigned targets, and the
    /// implementation-defined (here: two's-complement wrap) result for signed
    /// targets.
    pub fn convert_int(&self, v: i128, it: IntegerType) -> i128 {
        if it == IntegerType::Bool {
            return i128::from(v != 0);
        }
        if self.representable(v, it) {
            return v;
        }
        if self.is_signed(it) {
            // Implementation-defined: wrap as two's complement.
            let w = self.integer_width(it);
            let modulus = 1i128 << w;
            let wrapped = v.rem_euclid(modulus);
            if wrapped > self.int_max(it) {
                wrapped - modulus
            } else {
                wrapped
            }
        } else {
            self.wrap_unsigned(v, it)
        }
    }

    /// Size of a *basic* (non-struct/union) type. Struct and union sizes need
    /// a [`crate::layout::TagRegistry`]; see [`crate::layout`].
    ///
    /// Returns `None` for incomplete or function types.
    pub fn size_of_basic(&self, ty: &Ctype) -> Option<u64> {
        match ty {
            Ctype::Void | Ctype::Function(..) => None,
            Ctype::Integer(it) => Some(self.integer_size(*it)),
            Ctype::Floating => Some(8),
            Ctype::Pointer(..) => Some(self.pointer_size),
            Ctype::Array(elem, Some(n)) => Some(self.size_of_basic(elem)? * n),
            Ctype::Array(_, None) => None,
            Ctype::Struct(_) | Ctype::Union(_) => None,
        }
    }

    /// The integer promotion of a type (6.3.1.1p2): types with rank below
    /// `int` promote to `int` (all their values fit in `int` in the supported
    /// environments); other types are unchanged.
    pub fn integer_promotion(&self, it: IntegerType) -> IntegerType {
        if it.rank() < IntegerType::Int.rank() {
            IntegerType::Int
        } else {
            it
        }
    }

    /// The usual arithmetic conversions (6.3.1.8) restricted to integer types:
    /// returns the common type of a binary arithmetic operation.
    pub fn usual_arithmetic_conversion(&self, a: IntegerType, b: IntegerType) -> IntegerType {
        let a = self.integer_promotion(a);
        let b = self.integer_promotion(b);
        if a == b {
            return a;
        }
        let (sa, sb) = (self.is_signed(a), self.is_signed(b));
        if sa == sb {
            return if a.rank() >= b.rank() { a } else { b };
        }
        // One signed, one unsigned.
        let (signed, unsigned) = if sa { (a, b) } else { (b, a) };
        if unsigned.rank() >= signed.rank() {
            unsigned
        } else if self.int_max(signed) >= self.int_max(unsigned) {
            // The signed type can represent all values of the unsigned type.
            signed
        } else {
            signed.to_unsigned()
        }
    }
}

impl Default for ImplEnv {
    fn default() -> Self {
        ImplEnv::lp64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp64_sizes() {
        let env = ImplEnv::lp64();
        assert_eq!(env.integer_size(IntegerType::Int), 4);
        assert_eq!(env.integer_size(IntegerType::Long), 8);
        assert_eq!(env.pointer_size, 8);
        assert_eq!(env.size_of_basic(&Ctype::pointer(Ctype::Void)), Some(8));
    }

    #[test]
    fn ilp32_long_is_narrow() {
        let env = ImplEnv::ilp32();
        assert_eq!(env.integer_size(IntegerType::Long), 4);
        assert_eq!(env.pointer_size, 4);
    }

    #[test]
    fn int_ranges() {
        let env = ImplEnv::lp64();
        assert_eq!(env.int_max(IntegerType::Int), i32::MAX as i128);
        assert_eq!(env.int_min(IntegerType::Int), i32::MIN as i128);
        assert_eq!(env.int_max(IntegerType::UInt), u32::MAX as i128);
        assert_eq!(env.int_min(IntegerType::UInt), 0);
        assert_eq!(env.int_max(IntegerType::Bool), 1);
    }

    #[test]
    fn unsigned_conversion_wraps() {
        let env = ImplEnv::lp64();
        assert_eq!(env.convert_int(-1, IntegerType::UInt), u32::MAX as i128);
        assert_eq!(env.convert_int(1i128 << 33, IntegerType::UInt), 0);
    }

    #[test]
    fn signed_conversion_wraps_twos_complement() {
        let env = ImplEnv::lp64();
        assert_eq!(env.convert_int(u32::MAX as i128, IntegerType::Int), -1);
        assert_eq!(
            env.convert_int(i32::MAX as i128 + 1, IntegerType::Int),
            i32::MIN as i128
        );
    }

    #[test]
    fn bool_conversion_is_zero_one() {
        let env = ImplEnv::lp64();
        assert_eq!(env.convert_int(42, IntegerType::Bool), 1);
        assert_eq!(env.convert_int(0, IntegerType::Bool), 0);
    }

    #[test]
    fn promotions_reach_int() {
        let env = ImplEnv::lp64();
        assert_eq!(env.integer_promotion(IntegerType::Char), IntegerType::Int);
        assert_eq!(env.integer_promotion(IntegerType::UShort), IntegerType::Int);
        assert_eq!(env.integer_promotion(IntegerType::UInt), IntegerType::UInt);
        assert_eq!(env.integer_promotion(IntegerType::Long), IntegerType::Long);
    }

    #[test]
    fn usual_arithmetic_conversion_mixed_signs() {
        let env = ImplEnv::lp64();
        // -1 < (unsigned int)0: the common type is unsigned int (the paper's
        // §5.5 example), so -1 converts to UINT_MAX.
        assert_eq!(
            env.usual_arithmetic_conversion(IntegerType::Int, IntegerType::UInt),
            IntegerType::UInt
        );
        // long can represent all unsigned int values on lp64.
        assert_eq!(
            env.usual_arithmetic_conversion(IntegerType::Long, IntegerType::UInt),
            IntegerType::Long
        );
        // but not on ilp32: the result is unsigned long.
        assert_eq!(
            ImplEnv::ilp32().usual_arithmetic_conversion(IntegerType::Long, IntegerType::UInt),
            IntegerType::ULong
        );
    }

    #[test]
    fn representable_is_consistent_with_bounds() {
        let env = ImplEnv::lp64();
        for &it in IntegerType::all() {
            assert!(env.representable(env.int_max(it), it));
            assert!(env.representable(env.int_min(it), it));
            assert!(!env.representable(env.int_max(it) + 1, it));
        }
    }
}
