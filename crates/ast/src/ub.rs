//! The catalogue of undefined behaviours the semantics can report.
//!
//! Undefined behaviour arises in two ways (§5.4 of the paper): from primitive
//! C arithmetic operations on bad argument values — these are introduced
//! explicitly into the elaborated Core as `undef(ub-name)` tests — and from
//! memory accesses, detected by the memory object model or the concurrency
//! model. Each variant records the ISO clause (or DR) that makes the behaviour
//! undefined, so reports can cite the standard the way Cerberus does.

use std::fmt;

/// An undefined behaviour, annotated with the ISO C11 clause that defines it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UbKind {
    /// An exceptional condition during the evaluation of an expression —
    /// signed overflow, division overflow, and similar (6.5p5).
    ExceptionalCondition,
    /// Division or remainder by zero (6.5.5p5).
    DivisionByZero,
    /// Shift by a negative amount (6.5.7p3).
    NegativeShift,
    /// Shift by an amount greater than or equal to the width of the promoted
    /// left operand (6.5.7p3).
    ShiftTooLarge,
    /// Left shift of a negative value (6.5.7p4).
    ShiftOfNegative,
    /// An lvalue read of an object outside its lifetime (6.2.4p2).
    AccessOutsideLifetime,
    /// An access through a pointer whose address is not within the footprint
    /// of the allocation its provenance refers to (DR260 / the candidate de
    /// facto model of §5.9).
    OutOfBoundsAccess,
    /// A load or store through a null pointer (6.5.3.2p4).
    NullPointerDeref,
    /// A load or store through a pointer with empty provenance (for example a
    /// pointer manufactured from an arbitrary integer under the strict
    /// models).
    AccessWithoutProvenance,
    /// An access with misaligned address for the accessed type (6.3.2.3p7).
    MisalignedAccess,
    /// Construction of a pointer more than one past the end of its object by
    /// pointer arithmetic (6.5.6p8), under models that forbid it.
    OutOfBoundsPointerArithmetic,
    /// Subtraction of pointers into different objects (6.5.6p9).
    PointerSubtractionDifferentObjects,
    /// Relational comparison of pointers into different objects (6.5.8p5),
    /// under models that follow ISO strictly.
    RelationalCompareDifferentObjects,
    /// Use of an indeterminate (uninitialised) value where the model treats it
    /// as undefined behaviour (6.3.2.1p2 and the §2.4 discussion).
    IndeterminateValueUse,
    /// Reading a trap representation (6.2.6.1p5).
    TrapRepresentation,
    /// An access violating the effective-type (strict aliasing) rules
    /// (6.5p6-7), under models that enforce them.
    EffectiveTypeViolation,
    /// Modifying an object defined with a `const`-qualified type (6.7.3p6).
    ConstModification,
    /// Two unsequenced conflicting accesses to the same object (6.5p2).
    UnsequencedRace,
    /// A data race between threads (5.1.2.4p25).
    DataRace,
    /// `free` of a pointer not obtained from an allocation function, or double
    /// free (7.22.3.3p2).
    InvalidFree,
    /// Use of a pointer value after the end of the lifetime of the object it
    /// pointed to (6.2.4p2, the "zap" semantics of Q41-Q42).
    UseOfDanglingPointer,
    /// Calling a function through an incompatible function pointer type
    /// (6.3.2.3p8).
    IncompatibleFunctionCall,
    /// Reaching the end of a value-returning function without a `return` and
    /// then using the call's value (6.9.1p12).
    MissingReturnValueUsed,
    /// An array subscript or member access applied to an unsuitable value
    /// detected dynamically.
    InvalidLvalue,
    /// Signed integer overflow in a conversion context where the model
    /// chooses to treat it as undefined rather than implementation-defined.
    ConversionOverflow,
    /// Modification of a string literal (6.4.5p7).
    StringLiteralModification,
}

impl UbKind {
    /// The ISO C11 clause (or committee document) that makes the behaviour
    /// undefined.
    pub fn iso_reference(self) -> &'static str {
        use UbKind::*;
        match self {
            ExceptionalCondition => "6.5p5",
            DivisionByZero => "6.5.5p5",
            NegativeShift | ShiftTooLarge => "6.5.7p3",
            ShiftOfNegative => "6.5.7p4",
            AccessOutsideLifetime => "6.2.4p2",
            OutOfBoundsAccess => "DR260",
            NullPointerDeref => "6.5.3.2p4",
            AccessWithoutProvenance => "DR260",
            MisalignedAccess => "6.3.2.3p7",
            OutOfBoundsPointerArithmetic => "6.5.6p8",
            PointerSubtractionDifferentObjects => "6.5.6p9",
            RelationalCompareDifferentObjects => "6.5.8p5",
            IndeterminateValueUse => "6.3.2.1p2",
            TrapRepresentation => "6.2.6.1p5",
            EffectiveTypeViolation => "6.5p6",
            ConstModification => "6.7.3p6",
            UnsequencedRace => "6.5p2",
            DataRace => "5.1.2.4p25",
            InvalidFree => "7.22.3.3p2",
            UseOfDanglingPointer => "6.2.4p2",
            IncompatibleFunctionCall => "6.3.2.3p8",
            MissingReturnValueUsed => "6.9.1p12",
            InvalidLvalue => "6.3.2.1p1",
            ConversionOverflow => "6.3.1.3p3",
            StringLiteralModification => "6.4.5p7",
        }
    }

    /// A short, stable name matching the `undef(ub-name)` identifiers of the
    /// paper's Core syntax (Fig. 2 / Fig. 3).
    pub fn core_name(self) -> &'static str {
        use UbKind::*;
        match self {
            ExceptionalCondition => "Exceptional_condition",
            DivisionByZero => "Division_by_zero",
            NegativeShift => "Negative_shift",
            ShiftTooLarge => "Shift_too_large",
            ShiftOfNegative => "Shift_of_negative",
            AccessOutsideLifetime => "Access_outside_lifetime",
            OutOfBoundsAccess => "Out_of_bounds_access",
            NullPointerDeref => "Null_pointer_dereference",
            AccessWithoutProvenance => "Access_without_provenance",
            MisalignedAccess => "Misaligned_access",
            OutOfBoundsPointerArithmetic => "Out_of_bounds_pointer_arithmetic",
            PointerSubtractionDifferentObjects => "Pointer_subtraction_different_objects",
            RelationalCompareDifferentObjects => "Relational_compare_different_objects",
            IndeterminateValueUse => "Indeterminate_value_use",
            TrapRepresentation => "Trap_representation",
            EffectiveTypeViolation => "Effective_type_violation",
            ConstModification => "Const_modification",
            UnsequencedRace => "Unsequenced_race",
            DataRace => "Data_race",
            InvalidFree => "Invalid_free",
            UseOfDanglingPointer => "Use_of_dangling_pointer",
            IncompatibleFunctionCall => "Incompatible_function_call",
            MissingReturnValueUsed => "Missing_return_value_used",
            InvalidLvalue => "Invalid_lvalue",
            ConversionOverflow => "Conversion_overflow",
            StringLiteralModification => "String_literal_modification",
        }
    }

    /// Whether this undefined behaviour is memory-model-detected (as opposed
    /// to being introduced by the elaboration as an explicit `undef` test).
    pub fn is_memory_ub(self) -> bool {
        use UbKind::*;
        matches!(
            self,
            AccessOutsideLifetime
                | OutOfBoundsAccess
                | NullPointerDeref
                | AccessWithoutProvenance
                | MisalignedAccess
                | OutOfBoundsPointerArithmetic
                | PointerSubtractionDifferentObjects
                | RelationalCompareDifferentObjects
                | TrapRepresentation
                | EffectiveTypeViolation
                | ConstModification
                | DataRace
                | InvalidFree
                | UseOfDanglingPointer
                | StringLiteralModification
                | IndeterminateValueUse
        )
    }

    /// The undefined behaviour for a [`core_name`](Self::core_name), if any —
    /// the inverse used when parsing litmus fixture expectation files.
    pub fn from_core_name(name: &str) -> Option<UbKind> {
        UbKind::all()
            .iter()
            .copied()
            .find(|u| u.core_name() == name)
    }

    /// All catalogued undefined behaviours.
    pub fn all() -> &'static [UbKind] {
        use UbKind::*;
        &[
            ExceptionalCondition,
            DivisionByZero,
            NegativeShift,
            ShiftTooLarge,
            ShiftOfNegative,
            AccessOutsideLifetime,
            OutOfBoundsAccess,
            NullPointerDeref,
            AccessWithoutProvenance,
            MisalignedAccess,
            OutOfBoundsPointerArithmetic,
            PointerSubtractionDifferentObjects,
            RelationalCompareDifferentObjects,
            IndeterminateValueUse,
            TrapRepresentation,
            EffectiveTypeViolation,
            ConstModification,
            UnsequencedRace,
            DataRace,
            InvalidFree,
            UseOfDanglingPointer,
            IncompatibleFunctionCall,
            MissingReturnValueUsed,
            InvalidLvalue,
            ConversionOverflow,
            StringLiteralModification,
        ]
    }
}

impl fmt::Display for UbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.core_name(), self.iso_reference())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ub_has_reference_and_name() {
        for &ub in UbKind::all() {
            assert!(!ub.iso_reference().is_empty());
            assert!(!ub.core_name().is_empty());
        }
    }

    #[test]
    fn core_names_round_trip_through_from_core_name() {
        for &ub in UbKind::all() {
            assert_eq!(UbKind::from_core_name(ub.core_name()), Some(ub));
        }
        assert_eq!(UbKind::from_core_name("No_such_ub"), None);
    }

    #[test]
    fn core_names_are_unique() {
        let mut names: Vec<_> = UbKind::all().iter().map(|u| u.core_name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn shift_ubs_cite_6_5_7() {
        assert_eq!(UbKind::NegativeShift.iso_reference(), "6.5.7p3");
        assert_eq!(UbKind::ShiftTooLarge.iso_reference(), "6.5.7p3");
        assert_eq!(UbKind::ShiftOfNegative.iso_reference(), "6.5.7p4");
    }

    #[test]
    fn memory_ub_classification() {
        assert!(UbKind::OutOfBoundsAccess.is_memory_ub());
        assert!(UbKind::DataRace.is_memory_ub());
        assert!(!UbKind::DivisionByZero.is_memory_ub());
        assert!(!UbKind::NegativeShift.is_memory_ub());
    }

    #[test]
    fn display_mentions_clause() {
        let s = UbKind::DivisionByZero.to_string();
        assert!(s.contains("6.5.5p5"));
        assert!(s.contains("Division_by_zero"));
    }
}
