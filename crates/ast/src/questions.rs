//! The design-space question catalogue of §2.
//!
//! The paper identifies 85 questions about the C memory object model, grouped
//! into the categories listed in §2 (with the per-category counts reproduced
//! here), and classifies them by whether the ISO standard is clear, whether the
//! de facto standards are clear, and whether the two differ: "for 38 the ISO
//! standard is unclear; for 28 the de facto standards are unclear …; and for 26
//! there are significant differences between the ISO and the de facto
//! standards".
//!
//! This module encodes the categories and a question table with those
//! aggregate properties, used by the survey-analysis crate and by the litmus
//! test suite to organise its tests.

use std::fmt;

/// The question categories of §2, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuestionCategory {
    /// Pointer provenance basics.
    ProvenanceBasics,
    /// Pointer provenance via integer types.
    ProvenanceViaIntegers,
    /// Pointers involving multiple provenances.
    MultipleProvenance,
    /// Pointer provenance via pointer representation copying.
    ProvenanceViaRepresentation,
    /// Pointer provenance and union type punning.
    ProvenanceUnionPunning,
    /// Pointer provenance via IO.
    ProvenanceViaIo,
    /// Stability of pointer values.
    PointerStability,
    /// Pointer equality comparison (with == or !=).
    PointerEquality,
    /// Pointer relational comparison (with <, >, <=, or >=).
    PointerRelational,
    /// Null pointers.
    NullPointers,
    /// Pointer arithmetic.
    PointerArithmetic,
    /// Casts between pointer types.
    PointerCasts,
    /// Accesses to related structure and union types.
    RelatedStructUnion,
    /// Pointer lifetime end.
    PointerLifetimeEnd,
    /// Invalid accesses.
    InvalidAccesses,
    /// Trap representations.
    TrapRepresentations,
    /// Unspecified values.
    UnspecifiedValues,
    /// Structure and union padding.
    Padding,
    /// Basic effective types.
    EffectiveTypesBasic,
    /// Effective types and character arrays.
    EffectiveTypesCharArrays,
    /// Effective types and subobjects.
    EffectiveTypesSubobjects,
    /// Other questions.
    Other,
}

impl QuestionCategory {
    /// The number of questions the paper places in this category (§2's
    /// category table; the counts sum to 85).
    pub fn paper_count(self) -> usize {
        use QuestionCategory::*;
        match self {
            ProvenanceBasics => 3,
            ProvenanceViaIntegers => 5,
            MultipleProvenance => 5,
            ProvenanceViaRepresentation => 4,
            ProvenanceUnionPunning => 2,
            ProvenanceViaIo => 1,
            PointerStability => 1,
            PointerEquality => 3,
            PointerRelational => 3,
            NullPointers => 3,
            PointerArithmetic => 6,
            PointerCasts => 2,
            RelatedStructUnion => 4,
            PointerLifetimeEnd => 2,
            InvalidAccesses => 2,
            TrapRepresentations => 2,
            UnspecifiedValues => 11,
            Padding => 13,
            EffectiveTypesBasic => 2,
            EffectiveTypesCharArrays => 1,
            EffectiveTypesSubobjects => 6,
            Other => 5,
        }
    }

    /// The paper's name for the category.
    pub fn label(self) -> &'static str {
        use QuestionCategory::*;
        match self {
            ProvenanceBasics => "Pointer provenance basics",
            ProvenanceViaIntegers => "Pointer provenance via integer types",
            MultipleProvenance => "Pointers involving multiple provenances",
            ProvenanceViaRepresentation => "Pointer provenance via pointer representation copying",
            ProvenanceUnionPunning => "Pointer provenance and union type punning",
            ProvenanceViaIo => "Pointer provenance via IO",
            PointerStability => "Stability of pointer values",
            PointerEquality => "Pointer equality comparison (with == or !=)",
            PointerRelational => "Pointer relational comparison (with <, >, <=, or >=)",
            NullPointers => "Null pointers",
            PointerArithmetic => "Pointer arithmetic",
            PointerCasts => "Casts between pointer types",
            RelatedStructUnion => "Accesses to related structure and union types",
            PointerLifetimeEnd => "Pointer lifetime end",
            InvalidAccesses => "Invalid accesses",
            TrapRepresentations => "Trap representations",
            UnspecifiedValues => "Unspecified values",
            Padding => "Structure and union padding",
            EffectiveTypesBasic => "Basic effective types",
            EffectiveTypesCharArrays => "Effective types and character arrays",
            EffectiveTypesSubobjects => "Effective types and subobjects",
            Other => "Other questions",
        }
    }

    /// A short, stable, file-friendly identifier — the vocabulary of the
    /// litmus fixture metadata headers (`// @category: <slug>`) and fixture
    /// group directories.
    pub fn slug(self) -> &'static str {
        use QuestionCategory::*;
        match self {
            ProvenanceBasics => "provenance-basics",
            ProvenanceViaIntegers => "provenance-via-integers",
            MultipleProvenance => "multiple-provenance",
            ProvenanceViaRepresentation => "provenance-via-representation",
            ProvenanceUnionPunning => "provenance-union-punning",
            ProvenanceViaIo => "provenance-via-io",
            PointerStability => "pointer-stability",
            PointerEquality => "pointer-equality",
            PointerRelational => "pointer-relational",
            NullPointers => "null-pointers",
            PointerArithmetic => "pointer-arithmetic",
            PointerCasts => "pointer-casts",
            RelatedStructUnion => "related-struct-union",
            PointerLifetimeEnd => "pointer-lifetime-end",
            InvalidAccesses => "invalid-accesses",
            TrapRepresentations => "trap-representations",
            UnspecifiedValues => "unspecified-values",
            Padding => "padding",
            EffectiveTypesBasic => "effective-types-basic",
            EffectiveTypesCharArrays => "effective-types-char-arrays",
            EffectiveTypesSubobjects => "effective-types-subobjects",
            Other => "other",
        }
    }

    /// The category for a [`slug`](Self::slug), if any.
    pub fn from_slug(slug: &str) -> Option<QuestionCategory> {
        QuestionCategory::all()
            .iter()
            .copied()
            .find(|c| c.slug() == slug)
    }

    /// All categories, in the paper's order.
    pub fn all() -> &'static [QuestionCategory] {
        use QuestionCategory::*;
        &[
            ProvenanceBasics,
            ProvenanceViaIntegers,
            MultipleProvenance,
            ProvenanceViaRepresentation,
            ProvenanceUnionPunning,
            ProvenanceViaIo,
            PointerStability,
            PointerEquality,
            PointerRelational,
            NullPointers,
            PointerArithmetic,
            PointerCasts,
            RelatedStructUnion,
            PointerLifetimeEnd,
            InvalidAccesses,
            TrapRepresentations,
            UnspecifiedValues,
            Padding,
            EffectiveTypesBasic,
            EffectiveTypesCharArrays,
            EffectiveTypesSubobjects,
            Other,
        ]
    }

    /// Total number of questions across all categories (the paper's 85).
    pub fn total_questions() -> usize {
        Self::all().iter().map(|c| c.paper_count()).sum()
    }
}

impl fmt::Display for QuestionCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a standard (ISO or de facto) gives a clear answer to a question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clarity {
    /// The standard gives a clear answer.
    Clear,
    /// The standard is unclear or silent.
    Unclear,
}

/// A design-space question: its number (Qnn in the paper), category, short
/// statement, and the aggregate clarity/divergence classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The question number, e.g. 25 for Q25.
    pub number: u32,
    /// The category it belongs to.
    pub category: QuestionCategory,
    /// A one-line statement of the question.
    pub statement: &'static str,
    /// Whether the ISO standard gives a clear answer.
    pub iso: Clarity,
    /// Whether the de facto standards give a clear answer.
    pub de_facto: Clarity,
    /// Whether the ISO and de facto standards differ significantly.
    pub differs: bool,
    /// The simplified-survey question index ([n/15]) if the question appeared
    /// in the 2015 survey.
    pub survey_15: Option<u8>,
}

impl Question {
    /// The questions discussed individually in the body of §2 of the paper,
    /// with their classifications. (The full 85-question catalogue lives in
    /// the 80+ page design-space document; this table carries the ones the
    /// paper itself works through, which are the ones the litmus suite and the
    /// reproduction experiments exercise.)
    pub fn discussed() -> Vec<Question> {
        use Clarity::*;
        use QuestionCategory::*;
        vec![
            Question {
                number: 2,
                category: PointerEquality,
                statement: "Can equality testing on pointers be affected by pointer provenance information?",
                iso: Unclear,
                de_facto: Unclear,
                differs: true,
                survey_15: None,
            },
            Question {
                number: 5,
                category: ProvenanceViaIntegers,
                statement: "Must provenance information be tracked via casts to integer types and integer arithmetic?",
                iso: Unclear,
                de_facto: Clear,
                differs: false,
                survey_15: None,
            },
            Question {
                number: 9,
                category: MultipleProvenance,
                statement: "Can one make a usable offset between two separately allocated objects by inter-object subtraction?",
                iso: Clear,
                de_facto: Unclear,
                differs: true,
                survey_15: None,
            },
            Question {
                number: 13,
                category: ProvenanceViaRepresentation,
                statement: "Can one make a usable copy of a pointer by copying its representation bytes with user code?",
                iso: Unclear,
                de_facto: Clear,
                differs: false,
                survey_15: Some(5),
            },
            Question {
                number: 25,
                category: PointerRelational,
                statement: "Can one do relational comparison of two pointers to separately allocated objects?",
                iso: Clear,
                de_facto: Clear,
                differs: true,
                survey_15: Some(7),
            },
            Question {
                number: 31,
                category: PointerArithmetic,
                statement: "Can one transiently construct out-of-bounds pointer values that are brought back in bounds before use?",
                iso: Clear,
                de_facto: Unclear,
                differs: true,
                survey_15: Some(9),
            },
            Question {
                number: 43,
                category: UnspecifiedValues,
                statement: "What is the semantics of reading an uninitialised variable or struct member?",
                iso: Unclear,
                de_facto: Unclear,
                differs: true,
                survey_15: Some(2),
            },
            Question {
                number: 49,
                category: UnspecifiedValues,
                statement: "Can an unspecified value be passed to a library function without undefined behaviour?",
                iso: Unclear,
                de_facto: Unclear,
                differs: false,
                survey_15: None,
            },
            Question {
                number: 50,
                category: UnspecifiedValues,
                statement: "Can a control-flow choice be made on an unspecified value?",
                iso: Unclear,
                de_facto: Unclear,
                differs: false,
                survey_15: None,
            },
            Question {
                number: 52,
                category: UnspecifiedValues,
                statement: "Are unspecified values propagated through arithmetic?",
                iso: Unclear,
                de_facto: Unclear,
                differs: false,
                survey_15: None,
            },
            Question {
                number: 59,
                category: Padding,
                statement: "Do structure member writes also write unspecified values over subsequent padding?",
                iso: Unclear,
                de_facto: Unclear,
                differs: true,
                survey_15: Some(1),
            },
            Question {
                number: 75,
                category: EffectiveTypesCharArrays,
                statement: "Can an unsigned character array with static or automatic storage duration hold values of other types?",
                iso: Clear,
                de_facto: Clear,
                differs: true,
                survey_15: Some(11),
            },
        ]
    }

    /// The paper's aggregate counts over the full 85-question catalogue.
    pub fn paper_aggregates() -> QuestionAggregates {
        QuestionAggregates {
            total: 85,
            iso_unclear: 38,
            de_facto_unclear: 28,
            iso_de_facto_differ: 26,
        }
    }
}

/// Aggregate clarity statistics over the question catalogue (the §2 bullet
/// list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuestionAggregates {
    /// Total number of questions.
    pub total: usize,
    /// Questions where the ISO standard is unclear.
    pub iso_unclear: usize,
    /// Questions where the de facto standards are unclear.
    pub de_facto_unclear: usize,
    /// Questions where ISO and de facto standards differ significantly.
    pub iso_de_facto_differ: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_counts_sum_to_paper_table() {
        // The per-category counts printed in §2 sum to 86 even though the
        // headline number of questions is 85; we encode the table as printed
        // and keep the headline figure in `paper_aggregates`.
        assert_eq!(QuestionCategory::total_questions(), 86);
    }

    #[test]
    fn paper_aggregates_match_text() {
        let a = Question::paper_aggregates();
        assert_eq!(a.total, 85);
        assert_eq!(a.iso_unclear, 38);
        assert_eq!(a.de_facto_unclear, 28);
        assert_eq!(a.iso_de_facto_differ, 26);
    }

    #[test]
    fn discussed_questions_have_unique_numbers() {
        let qs = Question::discussed();
        let mut numbers: Vec<_> = qs.iter().map(|q| q.number).collect();
        numbers.sort_unstable();
        let before = numbers.len();
        numbers.dedup();
        assert_eq!(before, numbers.len());
    }

    #[test]
    fn q25_is_a_conflict_between_iso_and_de_facto() {
        let qs = Question::discussed();
        let q25 = qs.iter().find(|q| q.number == 25).unwrap();
        assert_eq!(q25.iso, Clarity::Clear);
        assert!(q25.differs);
        assert_eq!(q25.survey_15, Some(7));
    }

    #[test]
    fn all_categories_have_labels() {
        for &c in QuestionCategory::all() {
            assert!(!c.label().is_empty());
            assert!(c.paper_count() > 0);
        }
        assert_eq!(QuestionCategory::all().len(), 22);
    }

    #[test]
    fn slugs_are_unique_and_round_trip() {
        let mut slugs: Vec<_> = QuestionCategory::all().iter().map(|c| c.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), QuestionCategory::all().len());
        for &c in QuestionCategory::all() {
            assert_eq!(QuestionCategory::from_slug(c.slug()), Some(c));
        }
        assert_eq!(QuestionCategory::from_slug("no-such-category"), None);
    }

    #[test]
    fn padding_is_the_largest_category() {
        let max = QuestionCategory::all()
            .iter()
            .max_by_key(|c| c.paper_count())
            .unwrap();
        assert_eq!(*max, QuestionCategory::Padding);
        assert_eq!(max.paper_count(), 13);
    }
}
